//! Hybrid variational workflow: Maximum Independent Set with SPSA.
//!
//! The fine-grained quantum-classical loop (Table 1, pattern C): the QPU (or
//! emulator — the runtime decides) prepares independent sets with an
//! adiabatic sweep, a classical optimizer tunes the sweep parameters to
//! maximize the set size, and the result is compared against the exact MIS
//! from a classical branch-and-bound.
//!
//! Run: `cargo run --release --example mis_optimization`

use hpcqc::core::Runtime;
use hpcqc::program::Register;
use hpcqc::qrmi::{QrmiConfig, ResourceFactory};
use hpcqc::workloads::{mis_program, mis_score, Graph, MisSweep, Spsa};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Laptop development setup: the default local emulator.
    let registry = ResourceFactory::new(9).build_registry(&QrmiConfig::development_default())?;
    let runtime = Runtime::new(registry);

    // Problem: 7-atom ring — unit-disk MIS with exact answer 3.
    let register = Register::ring(7, 6.0)?;
    let graph = Graph::unit_disk(&register, 8.7);
    let exact = graph.exact_mis_size();
    println!(
        "7-atom ring, {} blockade edges, exact MIS = {exact}\n",
        graph.edges.len()
    );

    // Variational parameters: [duration, omega_max, delta_end].
    let evaluations = RefCell::new(0u32);
    let objective = |params: &[f64]| -> f64 {
        *evaluations.borrow_mut() += 1;
        let sweep = MisSweep {
            duration: params[0].clamp(0.5, 6.0),
            omega_max: params[1].clamp(1.0, 12.0),
            delta_start: -12.0,
            delta_end: params[2].clamp(1.0, 38.0),
        };
        let ir = mis_program(&register, &sweep, 300);
        match runtime.run(&ir) {
            Ok(report) => -mis_score(&graph, &report.result).mean_set_size,
            Err(e) => {
                eprintln!("evaluation failed: {e}");
                0.0
            }
        }
    };

    let spsa = Spsa {
        iterations: 15,
        a: 0.4,
        c: 0.15,
        ..Spsa::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let start = [2.0, 4.0, 6.0];
    let result = spsa.minimize(objective, &start, &mut rng);

    println!(
        "SPSA finished: {} cost evaluations ({} quantum jobs)",
        result.evaluations,
        evaluations.borrow()
    );
    println!(
        "best sweep: duration={:.2} µs, Ω={:.2} rad/µs, δ_end={:.2} rad/µs",
        result.best_params[0], result.best_params[1], result.best_params[2]
    );

    // Final high-shot run at the optimum.
    let best_sweep = MisSweep {
        duration: result.best_params[0].clamp(0.5, 6.0),
        omega_max: result.best_params[1].clamp(1.0, 12.0),
        delta_start: -12.0,
        delta_end: result.best_params[2].clamp(1.0, 38.0),
    };
    let final_run = runtime.run(&mis_program(&register, &best_sweep, 2000))?;
    let score = mis_score(&graph, &final_run.result);
    println!("\nfinal run (2000 shots on {}):", final_run.resource_id);
    println!("  mean repaired set size : {:.3}", score.mean_set_size);
    println!(
        "  best set found         : {} (exact MIS {exact})",
        score.best_set_size
    );
    println!(
        "  already-valid shots    : {:.1}%",
        100.0 * score.valid_fraction
    );
    println!(
        "  best set bitmask       : {}",
        final_run.result.format_bitstring(score.best_set)
    );
    assert!(graph.is_independent(score.best_set));
    if score.best_set_size == exact {
        println!("\nthe hybrid loop found a maximum independent set ✓");
    }
    Ok(())
}
