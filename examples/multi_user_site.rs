//! A multi-user HPC site in one process: REST daemon, virtual QPU, three
//! user classes, preemption and observability.
//!
//! The Figure-2 architecture live: the middleware daemon runs as a real HTTP
//! service on localhost; a production team, a QA team and a student submit
//! concurrently; production preempts the student's shot-sliced development
//! job; the site operator scrapes /metrics and inspects telemetry.
//!
//! Run: `cargo run --release --example multi_user_site`

use hpcqc::core::DaemonClient;
use hpcqc::middleware::rest::serve;
use hpcqc::middleware::{DaemonConfig, MiddlewareService, PriorityClass};
use hpcqc::program::{ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc::qpu::VirtualQpu;
use hpcqc::qrmi::QpuDirectResource;
use hpcqc::scheduler::PatternHint;
use std::sync::Arc;

fn job(shots: u32) -> ProgramIr {
    let reg = Register::linear(4, 6.0).expect("valid chain");
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.8, 6.0, -3.0, 0.0).expect("valid pulse"));
    ProgramIr::new(b.build().expect("non-empty"), shots, "site-example")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- the quantum access node: device + daemon + REST -----------------
    let qpu = VirtualQpu::new("fresnel-1", 1234);
    let resource = Arc::new(QpuDirectResource::new("fresnel-1", qpu.clone(), 7));
    let service = Arc::new(
        MiddlewareService::new(
            resource,
            DaemonConfig {
                dev_shot_cap: 50,        // §3.3: development runs are shot-capped
                preempt_chunk_shots: 10, // and unbatched → preemptible
                ..DaemonConfig::default()
            },
        )
        .with_qpu_admin(qpu.clone()),
    );
    let server = serve(service)?;
    println!("middleware daemon listening on http://{}\n", server.addr());

    // --- three users, three classes, concurrent sessions -----------------
    let mut workers = Vec::new();
    for (user, class, shots, jobs) in [
        ("prod-team", PriorityClass::Production, 100u32, 2usize),
        ("qa-team", PriorityClass::Test, 60, 2),
        ("student", PriorityClass::Development, 500, 2), // capped to 50
    ] {
        let addr = server.addr();
        workers.push(std::thread::spawn(move || {
            let session = DaemonClient::new(addr)
                .open_session(user, class)
                .expect("session opens");
            for k in 0..jobs {
                let result = session
                    .run(&job(shots), PatternHint::QcHeavy)
                    .expect("task completes");
                println!(
                    "  [{user}/{}] job {k}: {} shots done, backend {}",
                    class.as_str(),
                    result.shots,
                    result.backend
                );
            }
            session.close().expect("session closes");
        }));
    }
    for w in workers {
        w.join().expect("worker finishes");
    }

    // --- the operator's view ---------------------------------------------
    let client = DaemonClient::new(server.addr());
    let metrics = client.metrics()?;
    println!("\n--- operator: /metrics excerpt ---");
    for line in metrics.lines().filter(|l| {
        l.starts_with("daemon_tasks_completed_total")
            || l.starts_with("daemon_preemptions_total")
            || l.starts_with("qpu_busy_seconds_total")
            || l.starts_with("qpu_rabi_scale ")
    }) {
        println!("  {line}");
    }
    let (jobs_done, shots_done) = qpu.stats();
    println!("\ndevice totals: {jobs_done} executions, {shots_done} shots");
    println!("device utilization since boot: {:.2}", qpu.utilization());
    println!("\nnote: the student's 500-shot request ran as 50 shots (dev cap) in");
    println!("10-shot slices, yielding to production whenever it queued — the §3.3");
    println!("preemption model, visible in daemon_preemptions_total above.");
    Ok(())
}
