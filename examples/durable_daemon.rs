//! Durable daemon state: kill the daemon mid-flight, recover, lose nothing.
//!
//! Boots a journaled [`MiddlewareService`] with
//! [`MiddlewareService::recover`], submits a batch of tasks (every one
//! carrying a client idempotency key), dispatches some of them, and then
//! "crashes" — drops the daemon with no drain and no snapshot, exactly what
//! a power cut leaves behind. A second daemon recovers from the same journal
//! directory and the example shows:
//!
//! * completed work survives with its results intact,
//! * queued work is restored and finishes (no task lost, none run twice),
//! * a retried submit with a journaled idempotency key returns the original
//!   task id instead of double-enqueueing,
//! * the whole durability story in the Prometheus exposition
//!   (`journal_*` / `daemon_recovered_*` counters).
//!
//! Run: `cargo run --release --example durable_daemon`

use hpcqc::emulator::SvBackend;
use hpcqc::middleware::{DaemonConfig, DaemonTaskStatus, MiddlewareService, PriorityClass};
use hpcqc::program::{ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc::qrmi::{LocalEmulatorResource, QuantumResource};
use hpcqc::scheduler::PatternHint;
use std::sync::Arc;

fn resource() -> Arc<dyn QuantumResource> {
    Arc::new(LocalEmulatorResource::new(
        "emu",
        Arc::new(SvBackend::default()),
        1,
    ))
}

fn program(shots: u32) -> Result<ProgramIr, Box<dyn std::error::Error>> {
    let reg = Register::linear(3, 6.0)?;
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.5, 5.0, -1.0, 0.0)?);
    Ok(ProgramIr::new(b.build()?, shots, "durable-demo"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/durable-daemon-demo");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    // ---- first life -----------------------------------------------------
    // recover() on an empty directory is also the first-boot constructor
    let daemon = MiddlewareService::recover(&dir, resource(), DaemonConfig::default())?;
    let session = daemon.open_session("ada", PriorityClass::Production)?;

    let mut ids = Vec::new();
    for i in 0..6u32 {
        let key = format!("vqe-iteration-{i}");
        let id =
            daemon.submit_with_key(&session, program(50 + i)?, PatternHint::QcHeavy, Some(&key))?;
        ids.push((key, id));
    }
    // dispatch only half the batch, then die mid-flight
    for _ in 0..3 {
        daemon.pump_once();
    }
    let done_before: Vec<u64> = ids
        .iter()
        .filter(|(_, id)| daemon.task_status(*id).unwrap() == DaemonTaskStatus::Completed)
        .map(|(_, id)| *id)
        .collect();
    println!(
        "first life:  {} submitted, {} completed",
        ids.len(),
        done_before.len()
    );
    println!("*** crash (no drain, no snapshot) ***\n");
    drop(daemon);

    // ---- second life ----------------------------------------------------
    let daemon = MiddlewareService::recover(&dir, resource(), DaemonConfig::default())?;
    println!(
        "recovered:   {} tasks queued, {} sessions alive",
        daemon.queue_depth(),
        daemon.list_sessions().len()
    );

    // a client that never heard the first daemon's reply retries its submit;
    // the journaled key returns the original id instead of a duplicate task
    let (key0, id0) = &ids[0];
    let retried =
        daemon.submit_with_key(&session, program(50)?, PatternHint::QcHeavy, Some(key0))?;
    assert_eq!(retried, *id0);
    println!("idempotent:  retry of '{key0}' returned the original task id {id0}");

    daemon.pump();
    for (key, id) in &ids {
        let status = daemon.task_status(*id)?;
        let origin = if done_before.contains(id) {
            "finished before the crash"
        } else {
            "recovered and re-run"
        };
        println!("  task {id} ({key}): {status:?} — {origin}");
        assert_eq!(status, DaemonTaskStatus::Completed);
    }

    // graceful exit: drain, snapshot, fsync — the journal is now a clean
    // snapshot a future daemon warm-boots from instantly
    let report = daemon.shutdown(std::time::Duration::from_secs(5));
    println!(
        "\ndrained:     {} dispatched, {} left for the next life",
        report.dispatched, report.pending
    );

    println!("\n-- durability telemetry --");
    for line in daemon.metrics_text().lines() {
        if (line.starts_with("journal_") || line.starts_with("daemon_recover"))
            && !line.starts_with('#')
        {
            println!("{line}");
        }
    }
    Ok(())
}
