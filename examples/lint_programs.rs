//! Static-analysis linting over analog programs.
//!
//! Two modes:
//!
//! * default — analyze a deliberately flawed sequence and print every
//!   diagnostic, first human-readable, then as the JSON a CI tool or IDE
//!   would consume;
//! * `--corpus` — lint a corpus of clean SDK-built programs against the
//!   production spec and exit non-zero if any Error-level diagnostic
//!   appears (this is the CI gate).
//!
//! Run: `cargo run --example lint_programs`
//!      `cargo run --example lint_programs -- --corpus`

use hpcqc::analysis::{analyze, Severity};
use hpcqc::program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc::sdk::AnalogProgram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--corpus") {
        lint_corpus()
    } else {
        demo_flawed_program()
    }
}

/// Build a program that trips lints at every severity, then show the report.
fn demo_flawed_program() -> Result<(), Box<dyn std::error::Error>> {
    // 3 µm spacing violates the 5 µm minimum (HQ0102, Error);
    let register = Register::linear(3, 3.0)?;
    let mut b = SequenceBuilder::new(register);
    // Ω = 99 rad/µs is far beyond the channel limit (HQ0106, Error) and the
    // square turn-on/turn-off is a >2π discontinuity (HQ0202, Warning);
    b.add_global_pulse(Pulse::constant(0.5, 99.0, 0.0, 0.0)?);
    // zero amplitude with non-zero detuning drives nothing (HQ0203, Warning);
    b.add_global_pulse(Pulse::constant(0.5, 0.0, 5.0, 0.0)?);
    // a trailing delay only stretches the sequence (HQ0403, Hint);
    b.add_delay("rydberg_global", 1.0);
    // 5000 shots exceed the production range (HQ0108, Error); the program
    // also never went through client-side validation (HQ0702, Hint).
    let ir = ProgramIr::new(b.build()?, 5000, "lint-demo");

    let spec = DeviceSpec::analog_production();
    let report = analyze(&ir, Some(&spec));

    println!(
        "== human-readable ({} diagnostics) ==",
        report.diagnostics.len()
    );
    println!("{}", report.render());
    println!();
    println!(
        "facts: est. QPU drive {:.3} s, wall-clock {:.1} s",
        report.facts.est_qpu_secs, report.facts.est_wallclock_secs
    );
    println!();
    println!("== JSON (for CI / IDE tooling) ==");
    println!("{}", report.to_json());
    Ok(())
}

/// Lint every program in the corpus; any Error fails the process (CI gate).
fn lint_corpus() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DeviceSpec::analog_production();
    let corpus: Vec<(&str, ProgramIr)> = vec![
        (
            "adiabatic-ring",
            AnalogProgram::on(Register::ring(6, 6.0)?)
                .adiabatic_sweep(3.0, 6.0, -10.0, 10.0)
                .to_ir(500)?,
        ),
        (
            "resonant-line",
            AnalogProgram::on(Register::linear(4, 6.0)?)
                .resonant_pulse(0.5, 4.0)
                .to_ir(200)?,
        ),
        (
            "blackman-pi",
            AnalogProgram::on(Register::linear(2, 6.0)?)
                .blackman_pulse(1.0, std::f64::consts::PI)
                .to_ir(100)?,
        ),
    ];

    let mut total_errors = 0usize;
    for (name, ir) in corpus {
        // the corpus is validated here, against this spec revision
        let ir = ir.with_validation_revision(spec.revision);
        let report = analyze(&ir, Some(&spec));
        let errors = report.errors().len();
        total_errors += errors;
        println!(
            "{name}: {} diagnostics, {} errors",
            report.diagnostics.len(),
            errors
        );
        for d in &report.diagnostics {
            if d.severity != Severity::Hint {
                println!("  {}", d.render());
            }
        }
    }
    if total_errors > 0 {
        eprintln!("corpus lint FAILED: {total_errors} error(s)");
        std::process::exit(1);
    }
    println!("corpus lint passed: no Error-level diagnostics");
    Ok(())
}
