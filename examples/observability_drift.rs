//! Observability walkthrough: calibration drift, detection, alerting,
//! recalibration — the §2.5/§3.6 operations story.
//!
//! A week of simulated device operation: healthy wander, then a laser-power
//! degradation. The time-series database records everything, a CUSUM
//! detector flags the drift, a Prometheus-style alert fires and resolves
//! after the operator recalibrates through the admin surface.
//!
//! Run: `cargo run --example observability_drift`

use hpcqc::qpu::{run_qa, VirtualQpu};
use hpcqc::telemetry::{Agg, AlertManager, AlertRule, AlertState, Cmp, CusumDetector, Detection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qpu = VirtualQpu::new("fresnel-1", 2026);
    let mut detector = CusumDetector::new(48, 3e-3, 2e-2);
    let mut alerts = AlertManager::new(qpu.tsdb().clone());
    alerts.add_rule(AlertRule {
        name: "rabi_scale_low".into(),
        series: "qpu_rabi_scale".into(),
        window_secs: 3600.0,
        cmp: Cmp::LessThan,
        threshold: 0.97,
        for_secs: 7200.0,
    });

    let tick = 1800.0; // operator samples every 30 min
    let mut detected_at: Option<f64> = None;
    let mut recalibrations = 0u32;
    println!("simulating 7 days of operation, fault injected on day 3...\n");
    for step in 0..336 {
        // day 3: the laser loses ~10% power over 12 hours
        if (144..168).contains(&step) {
            qpu.inject_rabi_fault(0.0042);
        }
        qpu.advance_time(tick);
        let now = qpu.now();
        let rabi = qpu.tsdb().last("qpu_rabi_scale").expect("telemetry").value;

        if detected_at.is_none() {
            if let Detection::Drift { score } = detector.update(rabi) {
                detected_at = Some(now);
                println!(
                    "day {:.1}: CUSUM drift detected (score {score:.3}, rabi_scale {rabi:.4})",
                    now / 86_400.0
                );
            }
        }
        for ev in alerts.evaluate(now) {
            println!(
                "day {:.1}: alert {} -> {:?} (windowed mean {:.4})",
                now / 86_400.0,
                ev.rule,
                ev.state,
                ev.value
            );
            // operator responds to every firing alert with a recalibration
            if ev.state == AlertState::Firing {
                let before = run_qa(&qpu, 500, 0.03, 77)?;
                qpu.recalibrate(1800.0);
                detector.reset();
                recalibrations += 1;
                let after = run_qa(&qpu, 500, 0.03, 78)?;
                println!(
                    "day {:.1}: recalibrated (QA health {:.3} -> {:.3}, spec rev {} -> {})",
                    qpu.now() / 86_400.0,
                    before.health,
                    after.health,
                    before.calibration_revision,
                    after.calibration_revision,
                );
            }
        }
    }

    // --- the historical record, downsampled like a dashboard panel -------
    println!("\nqpu_rabi_scale, 12h means (what the Grafana panel would plot):");
    let series = qpu
        .tsdb()
        .downsample("qpu_rabi_scale", 0.0, qpu.now(), 43_200.0, Agg::Mean);
    for p in series {
        let bar = "#".repeat(((p.value - 0.90).max(0.0) * 400.0) as usize);
        println!("  day {:>4.1}  {:.4}  {bar}", p.ts / 86_400.0, p.value);
    }

    assert!(detected_at.is_some(), "the drift must be detected");
    assert!(
        recalibrations >= 1,
        "the alert must fire and trigger recalibration"
    );
    assert_eq!(alerts.state("rabi_scale_low"), Some(AlertState::Inactive));
    println!("\ndrift detected, alert fired, recalibration restored nominal — resolved.");
    Ok(())
}
