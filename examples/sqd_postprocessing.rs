//! Pattern-B workload: quantum sampling + heavy classical post-processing
//! (SQD-style subspace diagonalization).
//!
//! The paper's §2.4 motivates classical-resource awareness with SQD, where a
//! short quantum sampling phase seeds a large parallel classical
//! diagonalization. This example runs that exact shape: one emulated
//! quantum job, then a rayon-parallel configuration-recovery + subspace
//! ground-state solve, and compares the subspace energy against the
//! variational bound from the raw samples.
//!
//! Run: `cargo run --release --example sqd_postprocessing`

use hpcqc::core::Runtime;
use hpcqc::program::units::C6_COEFF;
use hpcqc::program::Register;
use hpcqc::qrmi::{QrmiConfig, ResourceFactory};
use hpcqc::workloads::{mis_program, sqd_pipeline, IsingProblem, MisSweep};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = ResourceFactory::new(3).build_registry(&QrmiConfig::development_default())?;
    let runtime = Runtime::new(registry);

    // --- quantum phase: sample low-energy configurations -----------------
    let register = Register::linear(10, 7.0)?;
    let sweep = MisSweep {
        duration: 3.0,
        omega_max: 5.0,
        delta_start: -10.0,
        delta_end: 8.0,
    };
    let t0 = Instant::now();
    let report = runtime.run(&mis_program(&register, &sweep, 1500))?;
    let q_time = t0.elapsed();
    println!(
        "quantum phase: 1500 shots on {} in {q_time:.2?} ({} distinct configurations)",
        report.resource_id,
        report.result.counts.len()
    );

    // --- classical phase: recovery + subspace diagonalization ------------
    // The problem Hamiltonian matches the final sweep drive values.
    let problem =
        IsingProblem::from_register(&register, C6_COEFF, sweep.delta_end, sweep.omega_max);
    let t1 = Instant::now();
    let sqd = sqd_pipeline(&problem, &report.result, 20);
    let c_time = t1.elapsed();
    println!(
        "classical phase: {}-dim subspace diagonalized in {c_time:.2?} ({} iterations)",
        sqd.subspace_dim, sqd.solver_iterations
    );

    // the raw-sample variational energy (best single configuration)
    let best_raw = report
        .result
        .counts
        .keys()
        .map(|&c| problem.diagonal_energy(c))
        .fold(f64::INFINITY, f64::min);
    println!("\nenergies (rad/µs):");
    println!("  best raw sampled configuration : {best_raw:.4}");
    println!("  SQD subspace ground state      : {:.4}", sqd.energy);
    println!(
        "  dominant configuration         : {}",
        report.result.format_bitstring(sqd.dominant_config)
    );
    assert!(
        sqd.energy <= best_raw + 1e-9,
        "subspace diagonalization can only improve on raw samples"
    );

    let ratio = c_time.as_secs_f64() / q_time.as_secs_f64().max(1e-9);
    println!(
        "\nclassical/quantum wall-time ratio here: {ratio:.1}x — on hardware the \
         quantum phase is minutes (1 Hz shots) while the classical phase scales \
         with subspace size: the Low-QC/High-CC pattern B the middleware \
         interleaves around (Table 1)."
    );
    Ok(())
}
