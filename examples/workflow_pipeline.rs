//! A hybrid workflow DAG with retries on a flaky simulated device.
//!
//! The §4 future-work "workflow engine integration" in action: a
//! calibration-probe → analysis → production-sweep → post-processing
//! pipeline expressed as a dependency graph, executed by the runtime on an
//! *instrumented* resource that injects task failures and simulates 1 Hz
//! hardware timing — so the retry logic and the simulated device-time
//! profile are both exercised on a laptop.
//!
//! Run: `cargo run --release --example workflow_pipeline`

use hpcqc::core::{Runtime, Value, Workflow};
use hpcqc::emulator::SvBackend;
use hpcqc::program::{ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc::qrmi::{
    FaultConfig, InstrumentedResource, LocalEmulatorResource, ResourceRegistry, TimingModel,
};
use std::sync::Arc;

fn pulse_program(duration: f64, shots: u32) -> ProgramIr {
    let reg = Register::linear(4, 6.0).expect("valid chain");
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(duration, 4.0, -2.0, 0.0).expect("valid pulse"));
    ProgramIr::new(b.build().expect("non-empty"), shots, "workflow-example")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // an emulator dressed up as flaky 1 Hz hardware (§4: fault injection +
    // simulated QPU timing for realistic development)
    let flaky = Arc::new(InstrumentedResource::new(
        Arc::new(LocalEmulatorResource::new(
            "dev-qpu",
            Arc::new(SvBackend::default()),
            3,
        )),
        TimingModel::production_1hz(),
        FaultConfig {
            task_failure_prob: 0.3,
            acquire_denial_prob: 0.0,
        },
        2026,
    ));
    let profile_handle = Arc::clone(&flaky);
    let mut registry = ResourceRegistry::new();
    registry.register(flaky);
    registry.default_resource = Some("dev-qpu".into());
    let runtime = Runtime::new(registry);

    // --- the DAG ----------------------------------------------------------
    let mut wf = Workflow::new();
    wf.quantum("probe", &[], 8, |_| pulse_program(0.4, 200))?;
    wf.classical("analyze", &["probe"], |o| {
        let occ = o.samples("probe").mean_excitations();
        Ok(Value::Number(occ))
    })?;
    wf.quantum("sweep-lo", &["analyze"], 8, |o| {
        let base = o.number("analyze").clamp(0.1, 2.0);
        pulse_program(0.3 * base, 300)
    })?;
    wf.quantum("sweep-hi", &["analyze"], 8, |o| {
        let base = o.number("analyze").clamp(0.1, 2.0);
        pulse_program(0.6 * base, 300)
    })?;
    wf.classical("report", &["sweep-lo", "sweep-hi"], |o| {
        let lo = o.samples("sweep-lo").mean_excitations();
        let hi = o.samples("sweep-hi").mean_excitations();
        Ok(Value::Text(format!(
            "excitation response: {lo:.3} -> {hi:.3} ({:+.1}%)",
            100.0 * (hi - lo) / lo.max(1e-9)
        )))
    })?;

    let (outputs, trace) = wf.run(&runtime)?;

    println!("workflow trace (step, attempts, simulated device seconds):");
    let mut total_attempts = 0;
    for t in &trace {
        println!(
            "  {:<10} attempts={} device={:.0}s",
            t.step, t.attempts, t.device_secs
        );
        total_attempts += t.attempts;
    }
    if let Value::Text(report) = outputs.get("report") {
        println!("\nfinal report: {report}");
    }
    println!(
        "\nretries absorbed {} injected failures; simulated hardware time {:.0}s \
         (30% task-loss rate, 1 Hz device) — the pipeline is robust to the \
         faults the instrumented resource injects.",
        total_attempts - trace.len() as u32,
        profile_handle.simulated_device_secs()
    );
    Ok(())
}
