//! Fault tolerance: a flaky QRMI resource, and the stack riding through it.
//!
//! Wraps a cloud resource in a [`FaultInjector`] so that acquisitions are
//! denied, tasks fail in transit, and results refuse to materialise — then
//! shows the two recovery layers the runtime offers:
//!
//! 1. retries with decorrelated-jitter backoff under a per-priority-class
//!    [`RetryPolicy`] budget, and
//! 2. graceful degradation to the local emulator once the budget runs dry.
//!
//! Everything the injector does and the runtime pays is visible in the
//! Prometheus exposition printed at the end.
//!
//! Run: `cargo run --release --example fault_tolerance`

use hpcqc::core::{AttemptBudget, RetryPolicy, Runtime};
use hpcqc::emulator::SvBackend;
use hpcqc::middleware::PriorityClass;
use hpcqc::program::Register;
use hpcqc::qrmi::{
    CloudEngine, CloudResource, FaultInjector, FaultProfile, LocalEmulatorResource,
    ResourceRegistry,
};
use hpcqc::sdk::AnalogProgram;
use hpcqc::telemetry::FaultMetrics;
use std::sync::Arc;

fn registry(profile: FaultProfile, metrics: &FaultMetrics) -> ResourceRegistry {
    let backend = Arc::new(SvBackend::default());
    let cloud = Arc::new(CloudResource::new(
        "flaky-cloud",
        CloudEngine::Emulator(backend.clone()),
        2,
        7,
    ));
    let mut reg = ResourceRegistry::new();
    reg.register(Arc::new(
        FaultInjector::new(cloud, profile, 1234).with_metrics(metrics.clone()),
    ));
    reg.register(Arc::new(LocalEmulatorResource::new(
        "emu-local",
        backend,
        3,
    )));
    reg.default_resource = Some("flaky-cloud".into());
    reg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = AnalogProgram::on(Register::ring(4, 6.0)?)
        .adiabatic_sweep(2.0, 5.0, -8.0, 8.0)
        .to_ir(100)?;

    // --- 1. a ~25%-failure resource, production-class retry budget -------
    let metrics = FaultMetrics::default();
    let profile = FaultProfile::flaky();
    println!(
        "flaky profile: {:.0}% acquire denials, {:.0}% task failures, \
         {:.0}% result-fetch errors",
        profile.acquire_denial_rate * 100.0,
        profile.task_failure_rate * 100.0,
        profile.result_fetch_failure_rate * 100.0
    );
    let rt = Runtime::new(registry(profile, &metrics))
        .with_retry_policy(RetryPolicy::default())
        .with_priority_class(PriorityClass::Production)
        .with_fault_metrics(metrics.clone());

    let mut attempts = 0;
    let mut backoff = 0.0;
    for i in 0..10 {
        let run = rt.run_recovered(&program)?;
        attempts += run.attempts;
        backoff += run.backoff_secs;
        println!(
            "run {i}: {} shots on {} after {} attempt(s), {:.2}s simulated backoff",
            run.report.result.shots, run.report.resource_id, run.attempts, run.backoff_secs
        );
    }
    println!("\n10/10 runs completed: {attempts} attempts, {backoff:.2}s total backoff\n");

    // --- 2. a dead resource: budget exhausts, runtime degrades ----------
    let dead = FaultProfile {
        acquire_denial_rate: 1.0,
        ..FaultProfile::none()
    };
    let rt = Runtime::new(registry(dead, &metrics))
        .with_retry_policy(RetryPolicy::default().with_budget(
            PriorityClass::Development,
            AttemptBudget {
                max_attempts: 3,
                max_backoff_secs: 60.0,
            },
        ))
        .with_fallback(true)
        .with_fault_metrics(metrics.clone());
    let run = rt.run_recovered(&program)?;
    println!(
        "dead cloud: degraded to {} after exhausting the flaky-cloud budget \
         ({} total attempts)",
        run.fallback_resource.as_deref().unwrap_or("?"),
        run.attempts,
    );

    // --- 3. the whole story, as Prometheus would scrape it ---------------
    println!("\n# telemetry");
    for line in metrics.registry().expose().lines() {
        if ["fault", "retr", "backoff", "fallback"]
            .iter()
            .any(|k| line.contains(k))
        {
            println!("{line}");
        }
    }
    Ok(())
}
