//! Quickstart: write one hybrid program, run it in three environments.
//!
//! Demonstrates the paper's core promise (Figure 1): the program below is
//! built once and then executed on the laptop state-vector emulator, on the
//! product-state mock that enforces *production* device limits, and on the
//! virtual QPU — changing only the `--qpu` selection, never the program.
//!
//! Run: `cargo run --example quickstart`

use hpcqc::core::{Runtime, RuntimeConfig};
use hpcqc::program::Register;
use hpcqc::qpu::VirtualQpu;
use hpcqc::sdk::AnalogProgram;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. configuration comes from the environment, not from code -----
    // (the QRMI variables below would normally be set by the site or IDE;
    //  with none present the runtime falls back to a local-emulator default)
    let mut env: BTreeMap<String, String> = std::env::vars().collect();
    for (k, v) in [
        ("QRMI_RESOURCES", "emu-local,mock,fresnel-1"),
        ("QRMI_DEFAULT_RESOURCE", "emu-local"),
        ("QRMI_RESOURCE_EMU_LOCAL_TYPE", "emulator:local"),
        ("QRMI_RESOURCE_MOCK_TYPE", "emulator:local"),
        ("QRMI_RESOURCE_MOCK_BACKEND", "emu-mps-mock"),
        ("QRMI_RESOURCE_FRESNEL_1_TYPE", "qpu:direct"),
    ] {
        env.entry(k.to_string()).or_insert_with(|| v.to_string());
    }
    let config = RuntimeConfig::from_map(&env)?;
    let runtime: Runtime = config.build_runtime(
        42,
        vec![("fresnel-1".into(), VirtualQpu::new("fresnel-1", 7))],
    )?;
    println!("available resources: {:?}\n", runtime.available_resources());

    // --- 2. one program, written once with the analog SDK ---------------
    let register = Register::ring(6, 6.0)?;
    let program = AnalogProgram::on(register)
        .adiabatic_sweep(3.0, 6.0, -10.0, 10.0)
        .to_ir(500)?;
    println!("program fingerprint: {:#018x}", program.fingerprint());

    // --- 3. pre-flight static analysis against the live target spec ------
    let report = runtime.analyze(&program)?;
    println!(
        "pre-flight: {} diagnostics, errors: {}",
        report.diagnostics.len(),
        report.has_errors()
    );
    for d in &report.diagnostics {
        println!("  {}", d.render());
    }

    // --- 4. run it everywhere; only --qpu changes ------------------------
    let runs = runtime.run_everywhere(&program, &["emu-local", "mock", "fresnel-1"]);
    let mut reference = None;
    for (resource, run) in &runs {
        match run {
            Ok(report) => {
                let res = &report.result;
                println!(
                    "\n--qpu={resource}  (spec rev {}, backend {})",
                    report.spec_revision, res.backend
                );
                println!(
                    "  mean Rydberg excitations/shot: {:.3}",
                    res.mean_excitations()
                );
                print!("  top outcomes:");
                for (bits, count) in res.top_k(3) {
                    print!("  {}x{}", res.format_bitstring(bits), count);
                }
                println!();
                if resource == "emu-local" {
                    reference = Some(res.clone());
                } else if let Some(r) = &reference {
                    println!(
                        "  total-variation distance vs emu-local: {:.4}",
                        r.total_variation_distance(res)
                    );
                }
            }
            Err(e) => println!("\n--qpu={resource}  FAILED: {e}"),
        }
    }

    println!("\nSame program, three environments, zero source changes.");
    Ok(())
}
