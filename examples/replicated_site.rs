//! The replicated control plane in one run: two shards behind the
//! consistent-hash gateway, a real HTTP workload over localhost sockets,
//! then shard 0's leader dies — the prober notices, the shipped follower is
//! promoted onto the shard's failover address, and the dead shard's session
//! tokens keep working because their opens were replicated before the kill.
//!
//! Run: `cargo run --release --example replicated_site`

use hpcqc::emulator::SvBackend;
use hpcqc::middleware::{
    http_request, DaemonConfig, FollowerReplica, Gateway, GatewayConfig, MiddlewareService,
    ShardConfig,
};
use hpcqc::qrmi::LocalEmulatorResource;
use std::sync::Arc;
use std::time::Duration;

fn resource() -> Arc<LocalEmulatorResource> {
    Arc::new(LocalEmulatorResource::new(
        "emu",
        Arc::new(SvBackend::default()),
        1,
    ))
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    http_request(addr, "POST", path, Some(body)).expect("http request")
}

fn get(addr: &str, path: &str) -> (u16, String) {
    http_request(addr, "GET", path, None).expect("http request")
}

fn main() {
    // Shard 0: leader with a shipping follower. Shard 1: plain leader.
    let dir_l = std::env::temp_dir().join(format!("verify-gw-leader-{}", std::process::id()));
    let dir_f = std::env::temp_dir().join(format!("verify-gw-follower-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_l);
    let _ = std::fs::remove_dir_all(&dir_f);

    let svc_a = Arc::new(
        MiddlewareService::recover(&dir_l, resource(), DaemonConfig::default())
            .expect("leader recovers"),
    );
    svc_a.enable_shipping().expect("shipping enables");
    let pump = svc_a.spawn_shipper(
        FollowerReplica::open(&dir_f).expect("replica opens"),
        "standby",
        Duration::from_millis(2),
    );
    let server_a = hpcqc::middleware::rest::serve(Arc::clone(&svc_a)).expect("shard 0 serves");

    let (svc_b, server_b) = {
        let svc = Arc::new(MiddlewareService::new(resource(), DaemonConfig::default()));
        let server = hpcqc::middleware::rest::serve(Arc::clone(&svc)).expect("shard 1 serves");
        (svc, server)
    };
    let _ = svc_b;

    // Reserve the port the promoted follower will come up on.
    let reserved = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let follower_addr = reserved.local_addr().expect("addr").to_string();

    let gw = Arc::new(Gateway::new(GatewayConfig {
        shards: vec![
            ShardConfig {
                name: "s0".into(),
                primary: server_a.addr(),
                follower: Some(follower_addr.clone()),
            },
            ShardConfig {
                name: "s1".into(),
                primary: server_b.addr(),
                follower: None,
            },
        ],
        ..GatewayConfig::default()
    }));
    let gw_server = gw.serve(0).expect("gateway serves");
    let gw_addr = gw_server.addr();
    println!(
        "gateway on {gw_addr}, shards s0={} s1={}",
        server_a.addr(),
        server_b.addr()
    );

    // A real workload through the gateway: open sessions, submit, wait.
    let mut tokens = Vec::new();
    for u in 0..8 {
        let (status, body) = post(
            &gw_addr,
            "/v1/sessions",
            &format!(r#"{{"user":"user-{u}","class":"test"}}"#),
        );
        assert_eq!(status, 201, "session opens via gateway: {body}");
        let token = body
            .split("\"token\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("token in body")
            .to_string();
        tokens.push(token);
    }
    println!("PASS: 8 sessions opened through the gateway");

    let (status, body) = get(&gw_addr, "/v1/sessions");
    assert_eq!(status, 200);
    assert_eq!(
        body.matches("\"user\":").count(),
        8,
        "aggregated view: {body}"
    );
    println!("PASS: cross-shard session aggregation sees all 8");

    let (status, body) = get(&gw_addr, "/metrics");
    assert!(status == 200 && body.contains("# shard: s0") && body.contains("# shard: s1"));
    println!("PASS: /metrics aggregates both shards");

    // Pick a token the ring placed on shard 0 — that's the one whose route
    // must flip to the promoted follower.
    let (_, s0_sessions) = get(&server_a.addr(), "/v1/sessions");
    let s0_token = tokens
        .iter()
        .find(|t| s0_sessions.contains(t.as_str()))
        .expect("at least one session landed on shard 0")
        .clone();

    // Kill shard 0's leader abruptly; its sessions dangle until failover.
    let report = svc_a.shutdown(Duration::from_millis(200));
    println!(
        "shard 0 leader down (dispatched {} on the way out)",
        report.dispatched
    );
    drop(pump.stop());
    let last_acked = svc_a.last_acked();
    drop(server_a);

    let probes = gw.probe_once();
    let (status, _) = get(&gw_addr, "/v1/readyz");
    println!("after kill: {probes}/2 shards ready, gateway readyz {status}");
    assert_eq!(probes, 1);

    // Promote the shipped follower onto the reserved address and reprobe.
    drop(reserved);
    let port = follower_addr.rsplit(':').next().unwrap().parse().unwrap();
    let promoted =
        MiddlewareService::promote(&dir_f, resource(), DaemonConfig::default(), last_acked)
            .expect("promotion succeeds");
    let _server_f =
        hpcqc::middleware::rest::serve_on(Arc::new(promoted), port).expect("promoted serves");
    assert_eq!(gw.probe_once(), 2);
    println!("PASS: follower promoted, prober flipped s0 to {follower_addr}");

    // The shard 0 session token still routes — closed on the replica, which
    // only knows it because the open was shipped before the kill.
    let (status, body) = http_request(
        &gw_addr,
        "DELETE",
        &format!("/v1/sessions/{s0_token}"),
        None,
    )
    .expect("http request");
    assert_eq!(status, 200, "session survives failover: {body}");
    let (status, _) = post(
        &gw_addr,
        "/v1/sessions",
        r#"{"user":"late-user","class":"test"}"#,
    );
    assert_eq!(status, 201);
    println!("PASS: pre-kill session token served by the promoted replica; new sessions admitted");

    let _ = std::fs::remove_dir_all(&dir_l);
    let _ = std::fs::remove_dir_all(&dir_f);
    println!("replicated_site: all checks passed");
}
