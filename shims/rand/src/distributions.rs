//! Distributions: `Standard`, uniform range sampling, and `WeightedIndex`.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform over the domain (floats over
/// `[0, 1)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be sampled uniformly from a closed range.
pub trait UniformSample: Copy + PartialOrd {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self;
}

impl UniformSample for f64 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u: f64 = Standard.sample(rng);
        lo + u * (hi - lo)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by `Rng::gen_range` — half-open and inclusive.
pub trait IntoUniformRange<T: UniformSample> {
    /// Returns `(lo, hi_inclusive)`.
    fn bounds(self) -> (T, T);
}

impl IntoUniformRange<f64> for std::ops::Range<f64> {
    fn bounds(self) -> (f64, f64) {
        (self.start, self.end) // float upper bound treated as open measure-zero
    }
}

impl IntoUniformRange<f64> for std::ops::RangeInclusive<f64> {
    fn bounds(self) -> (f64, f64) {
        (*self.start(), *self.end())
    }
}

macro_rules! into_uniform_int {
    ($($t:ty),*) => {$(
        impl IntoUniformRange<$t> for std::ops::Range<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "gen_range: empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoUniformRange<$t> for std::ops::RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}
into_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Error from `WeightedIndex::new`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    NoItem,
    InvalidWeight,
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no items in weighted index"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Sample indices proportionally to a weight vector (f64 weights).
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<f64>,
    {
        use std::borrow::Borrow;
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = Standard.sample(rng);
        let target = u * self.total;
        // first index whose cumulative weight exceeds the target
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}
