//! Minimal offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Provides the trait layer the workspace uses — `RngCore`, `Rng::gen`,
//! `SeedableRng::seed_from_u64` — plus the `distributions` module with
//! `Distribution`, `Standard`, `Uniform`-free `gen_range`, and
//! `WeightedIndex`. Streams are deterministic per seed but are NOT
//! bit-compatible with the real crate; workspace tests only rely on
//! same-seed reproducibility and statistical properties.

pub mod distributions;

pub use distributions::Distribution;

pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented over any `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
        Self: Sized,
    {
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::UniformSample,
        R: distributions::IntoUniformRange<T>,
        Self: Sized,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample_in(self, lo, hi_inclusive)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds; `seed_from_u64` expands via SplitMix64 exactly
/// like rand 0.8's default implementation shape (a u64 stretched into the
/// full seed), keeping per-seed determinism.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast PRNG (SplitMix64 core) standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                state = state.rotate_left(17) ^ u64::from_le_bytes(word);
            }
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&x));
            let n: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&n));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = WeightedIndex::new([0.0, 1.0, 0.0]).unwrap();
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut rng), 1);
        }
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(std::iter::empty::<f64>()).is_err());
    }
}
