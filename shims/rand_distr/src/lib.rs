//! Minimal offline stand-in for the `rand_distr` crate.
//!
//! Provides the `Normal` distribution (Box–Muller) over the `rand` shim's
//! `Distribution` trait — the only piece the workspace uses.

pub use rand::distributions::Distribution;
use rand::Rng;

/// Error from `Normal::new`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// Standard deviation was negative or non-finite.
    BadVariance,
    /// Mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std_dev })
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 shifted into (0, 1] so ln() stays finite
        let u1 = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.std_dev * r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn moments_are_close() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let dist = Normal::new(3.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }
}
