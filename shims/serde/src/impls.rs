//! `Serialize`/`Deserialize` implementations for standard-library types,
//! matching serde_json's conventions (maps → objects with stringified keys,
//! tuples → arrays, `Option` → value-or-null).

use crate::value::{Map, Number, Value};
use crate::{DeError, Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

// ---- booleans and strings -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError("expected bool".into()))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError("expected string".into()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError("expected char".into()))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError("expected single-character string".into())),
        }
    }
}

// ---- numbers --------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError(concat!("expected ", stringify!($t)).into())
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError(format!("{} out of range for {}", n, stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::U64(n as u64))
                } else {
                    Value::Number(Number::I64(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError(concat!("expected ", stringify!($t)).into())
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError(format!("{} out of range for {}", n, stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError("expected number".into()))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError("expected number".into()))
    }
}

// ---- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError("expected array".into()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError("expected array".into()))?;
                if arr.len() != $len {
                    return Err(DeError(format!("expected {}-tuple, got {} elements", $len, arr.len())));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0) => 1;
    (A: 0, B: 1) => 2;
    (A: 0, B: 1, C: 2) => 3;
    (A: 0, B: 1, C: 2, D: 3) => 4;
}

// ---- maps -----------------------------------------------------------------

/// JSON object keys must be strings; serde_json stringifies integer keys.
pub trait MapKey: Ord + std::hash::Hash + Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError(format!("invalid {} map key: {key:?}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_key(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError("expected object".into()))?;
        let mut out = BTreeMap::new();
        for (k, item) in obj.iter() {
            out.insert(K::from_key(k)?, V::from_value(item)?);
        }
        Ok(out)
    }
}

impl<K: MapKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // sort for deterministic output, like a BTreeMap would give
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k.to_key(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError("expected object".into()))?;
        let mut out = HashMap::new();
        for (k, item) in obj.iter() {
            out.insert(K::from_key(k)?, V::from_value(item)?);
        }
        Ok(out)
    }
}

// ---- Value itself ---------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(())
        } else {
            Err(DeError("expected null".into()))
        }
    }
}
