//! The JSON-shaped value tree shared by the `serde` and `serde_json` shims.
//!
//! Lives here (not in `serde_json`) so derived trait impls can reference it
//! without inverting the crate dependency; `serde_json` re-exports it.

use std::fmt;

/// Object representation. Insertion-ordered so struct field order survives a
/// serialize → print cycle like real serde_json's default behavior.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON number. Integers keep full 64-bit precision (histogram counts are
/// u64 fingerprints); anything with a fraction or exponent is an f64.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(x) => {
                if x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 {
                    Some(x as u64)
                } else {
                    None
                }
            }
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(x) => {
                if x.is_finite() && x.fract() == 0.0 && x.abs() <= i64::MAX as f64 {
                    Some(x as i64)
                } else {
                    None
                }
            }
        }
    }

    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(x) => x,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                // one side is negative or fractional; fall through to f64
            }
        }
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {}
        }
        self.as_f64() == other.as_f64()
    }
}

/// A parsed/serializable JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Compact JSON text; non-finite floats render as `null` like serde_json.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty JSON text with two-space indentation (serde_json's default).
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_spaces(out, indent + STEP);
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_spaces(out, indent);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_spaces(out, indent + STEP);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_spaces(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_spaces(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

fn write_number(n: Number, out: &mut String) {
    use std::fmt::Write;
    match n {
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(x) => {
            if x.is_finite() {
                // Rust's Display prints the shortest round-trip decimal and
                // never uses exponent notation — valid JSON, exact round-trip.
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact JSON, so `json!({...}).to_string()` works like serde_json.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

/// `v["key"]` — returns `Null` for missing keys/non-objects like serde_json.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `v[i]` — returns `Null` out of bounds like serde_json.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}
