//! Minimal offline stand-in for the `serde` crate.
//!
//! The real serde is a zero-copy visitor framework; this shim replaces it
//! with a simple value-tree model: `Serialize` renders to a [`value::Value`]
//! tree and `Deserialize` rebuilds from one. `serde_json` (also shimmed)
//! parses/prints that tree. Semantics intentionally mirror real
//! serde+serde_json for the constructs the workspace uses:
//!
//! * structs → JSON objects, field order preserved;
//! * `Option` fields → `null` when `None`, implicitly `None` when missing;
//! * `#[serde(default)]` fields → `Default::default()` when missing;
//! * enums → externally tagged (`"Unit"`, `{"Newtype": v}`,
//!   `{"Tuple": [..]}`, `{"Struct": {..}}`);
//! * newtype structs serialize transparently;
//! * unknown object keys are ignored on deserialize.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Error produced while rebuilding a typed value from a [`Value`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Hook for struct fields absent from the input object. `Option<T>`
    /// overrides this to yield `None`, mirroring serde's implicit-optional
    /// behavior; everything else errors.
    fn from_missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field `{field}`")))
    }
}

mod impls;

/// Support items referenced by `serde_derive`-generated code. Not a stable
/// API — only the derive macro should use this.
pub mod __private {
    pub use crate::value::{Map, Number, Value};
    use crate::{DeError, Deserialize};

    pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v Map, DeError> {
        v.as_object()
            .ok_or_else(|| DeError(format!("expected object for `{ty}`")))
    }

    pub fn expect_array<'v>(v: &'v Value, ty: &str, len: usize) -> Result<&'v [Value], DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError(format!("expected array for `{ty}`")))?;
        if arr.len() != len {
            return Err(DeError(format!(
                "expected {len} elements for `{ty}`, got {}",
                arr.len()
            )));
        }
        Ok(arr)
    }

    /// Fetch and decode a named struct field, honoring the missing-field hook.
    pub fn field<T: Deserialize>(obj: &Map, name: &str) -> Result<T, DeError> {
        match obj.get(name) {
            Some(v) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
            None => T::from_missing_field(name),
        }
    }

    /// Fetch and decode a field that falls back to `Default` when absent
    /// (`#[serde(default)]`).
    pub fn field_or_default<T: Deserialize + Default>(obj: &Map, name: &str) -> Result<T, DeError> {
        match obj.get(name) {
            Some(v) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
            None => Ok(T::default()),
        }
    }

    /// Decode a positional element of a tuple struct/variant.
    pub fn element<T: Deserialize>(arr: &[Value], idx: usize) -> Result<T, DeError> {
        T::from_value(&arr[idx]).map_err(|e| DeError(format!("element {idx}: {e}")))
    }
}
