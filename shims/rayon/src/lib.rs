//! Minimal offline stand-in for the `rayon` crate.
//!
//! `par_iter`/`into_par_iter` degrade to ordinary sequential iterators. The
//! emulator kernels that call them stay correct (and deterministic); they
//! simply don't get data parallelism until the real crate is restored. The
//! adapter traits mirror rayon's so call sites compile unchanged.

pub mod prelude {
    /// `into_par_iter()` on any owned collection — sequential here.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<T: IntoIterator> IntoParallelIterator for T {}

    /// `par_iter()` on any collection with a by-ref iterator — sequential.
    pub trait IntoParallelRefIterator<'a> {
        type Iter;
        fn par_iter(&'a self) -> Self::Iter;
    }
    impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` on any collection with a by-mut-ref iterator.
    pub trait IntoParallelRefMutIterator<'a> {
        type Iter;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }
    impl<'a, C: ?Sized + 'a> IntoParallelRefMutIterator<'a> for C
    where
        &'a mut C: IntoIterator,
    {
        type Iter = <&'a mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_adapters_behave_like_iterators() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let squares: Vec<usize> = (0..4usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9]);
        let mut m = vec![1, 2];
        m.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(m, vec![2, 3]);
    }
}
