//! Minimal offline stand-in for the `rayon` crate.
//!
//! The iterator adapters (`par_iter`/`into_par_iter`) degrade to ordinary
//! sequential iterators: call sites compile unchanged and stay correct, they
//! just don't fan out. The slice splitter [`slice::ParallelSliceMut`] is the
//! exception — `par_chunks_mut` runs chunks on real scoped OS threads when
//! the machine has more than one core (`RAYON_NUM_THREADS` overrides the
//! count), because the emulator hot kernels are written against it. Chunk
//! boundaries depend only on the requested chunk size and every chunk is
//! computed independently, so results are bit-identical for any thread
//! count, including the sequential fallback.

pub mod prelude {
    pub use crate::slice::ParallelSliceMut;

    /// `into_par_iter()` on any owned collection — sequential here.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<T: IntoIterator> IntoParallelIterator for T {}

    /// `par_iter()` on any collection with a by-ref iterator — sequential.
    pub trait IntoParallelRefIterator<'a> {
        type Iter;
        fn par_iter(&'a self) -> Self::Iter;
    }
    impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` on any collection with a by-mut-ref iterator.
    pub trait IntoParallelRefMutIterator<'a> {
        type Iter;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }
    impl<'a, C: ?Sized + 'a> IntoParallelRefMutIterator<'a> for C
    where
        &'a mut C: IntoIterator,
    {
        type Iter = <&'a mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

pub mod slice {
    /// Worker count: `RAYON_NUM_THREADS` when set and positive, otherwise
    /// the machine's available parallelism.
    fn thread_count() -> usize {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    }

    /// Run `f(chunk_index, chunk)` over `chunk_size`-sized chunks of
    /// `slice`, on scoped threads when both the machine and the chunk count
    /// allow it. The chunk partition (and therefore every floating-point
    /// operation inside `f`) is independent of the worker count.
    fn run_chunked<T, F>(slice: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_size > 0, "par_chunks_mut requires chunk_size > 0");
        let nchunks = slice.len().div_ceil(chunk_size).max(1);
        let workers = thread_count().min(nchunks);
        if workers <= 1 {
            for (i, chunk) in slice.chunks_mut(chunk_size).enumerate() {
                f(i, chunk);
            }
            return;
        }
        let mut chunks: Vec<(usize, &mut [T])> = slice.chunks_mut(chunk_size).enumerate().collect();
        let per_worker = chunks.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|s| {
            for group in chunks.chunks_mut(per_worker) {
                s.spawn(move || {
                    for (i, chunk) in group.iter_mut() {
                        f(*i, chunk);
                    }
                });
            }
        });
    }

    /// Mutable chunked parallel iteration over slices — the subset of
    /// rayon's `ParallelSliceMut` the emulator kernels use.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }

    /// Pending chunked traversal returned by `par_chunks_mut`.
    pub struct ParChunksMut<'a, T: Send> {
        slice: &'a mut [T],
        chunk_size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pair each chunk with its index, rayon-style.
        pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
            ParChunksMutEnumerate(self)
        }

        /// Apply `f` to every chunk.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            run_chunked(self.slice, self.chunk_size, |_i, c| f(c));
        }
    }

    /// Enumerated variant of [`ParChunksMut`].
    pub struct ParChunksMutEnumerate<'a, T: Send>(ParChunksMut<'a, T>);

    impl<T: Send> ParChunksMutEnumerate<'_, T> {
        /// Apply `f((index, chunk))` to every chunk.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            run_chunked(self.0.slice, self.0.chunk_size, |i, c| f((i, c)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_adapters_behave_like_iterators() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let squares: Vec<usize> = (0..4usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9]);
        let mut m = vec![1, 2];
        m.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(m, vec![2, 3]);
    }

    #[test]
    fn par_chunks_mut_covers_every_element_once() {
        let mut v = vec![0u64; 1000];
        v.par_chunks_mut(64).enumerate().for_each(|(ci, chunk)| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x += (ci * 64 + k) as u64 + 1;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 + 1, "element {i} written exactly once");
        }
    }

    #[test]
    fn par_chunks_mut_without_enumerate() {
        let mut v = vec![1i32; 257]; // non-divisible tail chunk
        v.par_chunks_mut(32).for_each(|chunk| {
            for x in chunk.iter_mut() {
                *x *= 3;
            }
        });
        assert!(v.iter().all(|&x| x == 3));
    }

    #[test]
    fn par_chunks_mut_matches_serial_chunks_mut() {
        let mut par = (0..10_000u64).collect::<Vec<_>>();
        let mut ser = par.clone();
        par.par_chunks_mut(100).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x = x.wrapping_mul(ci as u64 + 7);
            }
        });
        for (ci, chunk) in ser.chunks_mut(100).enumerate() {
            for x in chunk.iter_mut() {
                *x = x.wrapping_mul(ci as u64 + 7);
            }
        }
        assert_eq!(par, ser);
    }
}
