//! Model-aware `std::thread` mirror: `spawn`, `JoinHandle`, `yield_now`.

use crate::rt;
use std::sync::{Arc, Mutex};

/// Handle to a model thread, joinable like `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    exec: Arc<rt::Execution>,
    id: usize,
    slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
}

impl<T> JoinHandle<T> {
    /// Block (in model time) until the thread finishes and take its result.
    ///
    /// A child that panicked aborts the whole model run with a failure, so in
    /// practice this only ever returns `Ok` — the `Result` mirrors std's API.
    pub fn join(self) -> std::thread::Result<T> {
        let (_, me) = rt::require_ctx("JoinHandle::join");
        self.exec.join_thread(self.id, me);
        self.slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("loom: joined thread left no result")
    }
}

/// Spawn a model thread. Must be called inside `loom::model`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, me) = rt::require_ctx("thread::spawn");
    let (id, slot) = rt::spawn_child(&exec, me, f);
    JoinHandle { exec, id, slot }
}

/// A pure schedule point: lets the checker preempt here.
pub fn yield_now() {
    if let Some((exec, me)) = rt::ctx() {
        exec.switch(me, None);
    }
}
