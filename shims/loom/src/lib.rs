//! Minimal offline stand-in for the `loom` concurrency model checker.
//!
//! The workspace builds without network access, so external dependencies are
//! vendored as small API-compatible shims. This one implements the core loom
//! workflow: [`model`] runs a closure repeatedly under a deterministic
//! cooperative scheduler, exhaustively exploring thread interleavings
//! (depth-first over scheduling decision points) under a configurable
//! preemption bound. Failures — assertion panics in any model thread, and
//! deadlocks (no runnable thread) — abort the search and report a replayable
//! schedule seed.
//!
//! Scope versus real loom (also listed in shims/README):
//! * **Sequential consistency only.** Atomics take an `Ordering` but execute
//!   SeqCst; weak-memory reorderings are not explored.
//! * **No spurious condvar wakeups**; notify order is FIFO.
//! * `cell::UnsafeCell` inserts schedule points but does not detect races —
//!   exclusion must come from model locks/atomics.
//!
//! Usage matches loom:
//!
//! ```ignore
//! loom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let h = loom::thread::spawn({ let n = n.clone(); move || n.fetch_add(1, SeqCst) });
//!     n.fetch_add(1, SeqCst);
//!     h.join().unwrap();
//!     assert_eq!(n.load(SeqCst), 2);
//! });
//! ```

pub mod cell;
mod rt;
pub mod sync;
pub mod thread;

pub mod hint {
    /// A pure schedule point, like `std::hint::spin_loop` in a retry loop.
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}

pub mod model {
    //! Exploration driver: [`Builder`] configures bounds and replay.

    use crate::rt::{self, Decision};
    use std::sync::Arc;

    /// Configures a model run. Mirrors loom's `model::Builder`: construct,
    /// tweak public fields, then [`Builder::check`].
    pub struct Builder {
        /// Max involuntary context switches per execution. `None` = unbounded
        /// (full exploration — exponential; keep models tiny). Default 3, or
        /// `LOOM_MAX_PREEMPTIONS`.
        pub preemption_bound: Option<usize>,
        /// Abort if the schedule space is larger than this many executions.
        pub max_iterations: usize,
        /// Per-execution schedule-step cap (catches livelocking models).
        pub max_steps: usize,
        /// Replay a failing schedule seed (the `LOOM_REPLAY` string printed
        /// on failure) instead of exploring.
        pub replay: Option<String>,
    }

    impl Default for Builder {
        fn default() -> Self {
            Self::new()
        }
    }

    fn env_usize(name: &str) -> Option<usize> {
        std::env::var(name).ok().and_then(|v| v.parse().ok())
    }

    impl Builder {
        pub fn new() -> Self {
            Builder {
                preemption_bound: Some(env_usize("LOOM_MAX_PREEMPTIONS").unwrap_or(3)),
                max_iterations: env_usize("LOOM_MAX_ITERATIONS").unwrap_or(200_000),
                max_steps: 1_000_000,
                replay: std::env::var("LOOM_REPLAY").ok(),
            }
        }

        /// Explore every schedule of `f` under the configured bounds.
        /// Panics (with a replay seed) on the first failing schedule.
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Send + Sync + 'static,
        {
            rt::install_quiet_abort_hook();
            let f = Arc::new(f);
            let mut path: Vec<Decision> = match &self.replay {
                Some(seed) => decode_seed(seed),
                None => Vec::new(),
            };
            let mut iterations = 0usize;
            loop {
                iterations += 1;
                let exec = Arc::new(rt::Execution::new(
                    path.clone(),
                    self.preemption_bound,
                    self.max_steps,
                ));
                rt::spawn_root(&exec, Arc::clone(&f));
                exec.wait_done();
                let handles =
                    std::mem::take(&mut *exec.handles.lock().unwrap_or_else(|e| e.into_inner()));
                for h in handles {
                    let _ = h.join();
                }
                let st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(fail) = &st.failure {
                    let seed = encode_seed(&st.path);
                    panic!(
                        "loom: model failed after {iterations} iteration(s): {fail}\n  \
                         replay with LOOM_REPLAY=\"{seed}\""
                    );
                }
                path = st.path.clone();
                drop(st);
                if !backtrack(&mut path) {
                    break; // schedule space exhausted, model holds
                }
                assert!(
                    iterations < self.max_iterations,
                    "loom: schedule space exceeds max_iterations ({}); \
                     raise the cap or lower preemption_bound",
                    self.max_iterations
                );
            }
        }
    }

    /// Advance the deepest decision that still has unexplored options,
    /// truncating everything after it. Returns false when the DFS is done.
    fn backtrack(path: &mut Vec<Decision>) -> bool {
        while let Some(d) = path.last_mut() {
            if d.chosen + 1 < d.options.len() {
                d.chosen += 1;
                return true;
            }
            path.pop();
        }
        false
    }

    fn encode_seed(path: &[Decision]) -> String {
        path.iter()
            .map(|d| d.chosen.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }

    fn decode_seed(seed: &str) -> Vec<Decision> {
        seed.split('.')
            .filter(|s| !s.is_empty())
            .map(|s| Decision {
                chosen: s.parse().expect("malformed LOOM_REPLAY seed"),
                options: Vec::new(),
            })
            .collect()
    }
}

/// Explore every schedule of `f` with default bounds. See [`model::Builder`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model::Builder::new().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex, RwLock};
    use super::thread;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn failure_message(f: impl Fn() + Send + Sync + 'static) -> String {
        let err = catch_unwind(AssertUnwindSafe(move || super::model(f)))
            .expect_err("model should have failed");
        err.downcast_ref::<String>()
            .cloned()
            .expect("string panic payload")
    }

    #[test]
    fn mutex_increments_never_lose_updates() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || *m.lock().unwrap() += 1)
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    fn explores_more_than_one_schedule() {
        let runs = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let runs2 = std::sync::Arc::clone(&runs);
        super::model(move || {
            runs2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let h = thread::spawn(move || a2.fetch_add(1, Ordering::SeqCst));
            a.fetch_add(1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
        assert!(
            runs.load(std::sync::atomic::Ordering::SeqCst) > 1,
            "expected multiple interleavings to be explored"
        );
    }

    /// Unsynchronized read-modify-write: the checker must find the lost
    /// update (this is the "deliberately injected bug is caught" shape).
    #[test]
    fn lost_update_is_caught_with_replay_seed() {
        let msg = failure_message(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let h = thread::spawn(move || {
                let v = a2.load(Ordering::SeqCst);
                a2.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(msg.contains("lost update"), "unexpected failure: {msg}");
        assert!(msg.contains("LOOM_REPLAY"), "missing replay seed: {msg}");
    }

    #[test]
    fn replay_seed_reproduces_the_failure_first_try() {
        let buggy = || {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let h = thread::spawn(move || {
                let v = a2.load(Ordering::SeqCst);
                a2.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        };
        let msg = failure_message(buggy);
        let seed = msg
            .split("LOOM_REPLAY=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("seed in message")
            .to_string();

        let mut b = super::model::Builder::new();
        b.replay = Some(seed);
        let err =
            catch_unwind(AssertUnwindSafe(move || b.check(buggy))).expect_err("replay should fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(
            msg.contains("after 1 iteration(s)"),
            "replay should reproduce immediately: {msg}"
        );
    }

    #[test]
    fn lock_order_inversion_deadlock_is_caught() {
        let msg = failure_message(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _gb = b2.lock().unwrap();
                let _ga = a2.lock().unwrap();
            });
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
            drop((_ga, _gb));
            h.join().unwrap();
        });
        assert!(msg.contains("deadlock"), "expected deadlock report: {msg}");
    }

    #[test]
    fn condvar_handoff_completes_under_all_schedules() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let h = thread::spawn(move || {
                let (m, cv) = &*pair2;
                *m.lock().unwrap() = true;
                cv.notify_one();
            });
            let (m, cv) = &*pair;
            let mut g = m.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            h.join().unwrap();
        });
    }

    #[test]
    fn rwlock_writes_are_exclusive() {
        super::model(|| {
            let l = Arc::new(RwLock::new(0i64));
            let l2 = Arc::clone(&l);
            let h = thread::spawn(move || {
                let mut w = l2.write().unwrap();
                // A reader or writer interleaved here would observe the
                // torn intermediate value.
                *w = -1;
                *w = 7;
            });
            {
                let r = l.read().unwrap();
                assert_ne!(*r, -1, "observed torn write");
            }
            h.join().unwrap();
            assert_eq!(*l.read().unwrap(), 7);
        });
    }

    /// The preemption bound is a real knob: a race that needs one preemption
    /// is invisible at bound 0 and caught at bound 2.
    #[test]
    fn preemption_bound_gates_exploration() {
        let racy = || {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let h = thread::spawn(move || f2.store(true, Ordering::SeqCst));
            assert!(!flag.load(Ordering::SeqCst), "child ran early");
            h.join().unwrap();
        };

        let mut sequential = super::model::Builder::new();
        sequential.preemption_bound = Some(0);
        sequential.check(racy); // run-to-completion schedules never trip it

        let mut bounded = super::model::Builder::new();
        bounded.preemption_bound = Some(2);
        let err = catch_unwind(AssertUnwindSafe(move || bounded.check(racy)))
            .expect_err("bound 2 must find the preemption");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("child ran early"), "unexpected failure: {msg}");
    }

    #[test]
    fn try_lock_contention_is_modeled() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0));
            let g = m.lock().unwrap();
            assert!(m.try_lock().is_err());
            drop(g);
            assert!(m.try_lock().is_ok());
        });
    }
}
