//! Minimal `loom::cell` mirror.
//!
//! Real loom instruments `UnsafeCell` accesses to detect data races; this
//! shim only inserts schedule points around accesses — exclusion must come
//! from the model's own locks/atomics (as it does in the protocols modeled
//! in this repo, which keep shared data behind `loom::sync` primitives).

/// An `UnsafeCell` whose accesses are schedule points.
#[derive(Debug, Default)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub fn new(value: T) -> Self {
        UnsafeCell(std::cell::UnsafeCell::new(value))
    }

    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        crate::thread::yield_now();
        f(self.0.get())
    }

    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        crate::thread::yield_now();
        f(self.0.get())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}
