//! The deterministic scheduler behind `loom::model`.
//!
//! One OS thread exists per model thread, but exactly one is ever runnable:
//! every synchronization operation calls back into [`Execution::switch`],
//! which picks the next thread to run at a *decision point* and parks the
//! caller until it is chosen again. The sequence of decisions forms a path in
//! a tree; [`crate::model::Builder::check`] re-executes the closure once per
//! path, depth-first, until every schedule (under the preemption bound) has
//! been explored.
//!
//! Because only one model thread runs at a time, the object table needs no
//! synchronization beyond the scheduler's own mutex — model `Mutex`es are a
//! `locked` bit, not a real lock.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload used to unwind parked threads when an iteration is torn
/// down early (failure or deadlock). Caught and swallowed at thread top.
pub(crate) struct AbortToken;

/// Why a model thread cannot currently run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wait {
    /// Waiting for a model mutex to unlock.
    Mutex(usize),
    /// Waiting for an rwlock to admit a reader.
    RwRead(usize),
    /// Waiting for an rwlock to admit a writer.
    RwWrite(usize),
    /// Parked on a condvar (not yet notified).
    Condvar(usize),
    /// Waiting for another model thread to finish.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    Blocked(Wait),
    Finished,
}

/// Shared state of one model object. Mutual exclusion is enforced by the
/// scheduler, so these are plain flags.
pub(crate) enum Object {
    Mutex { locked: bool },
    RwLock { readers: usize, writer: bool },
    Condvar { waiters: Vec<usize> },
}

/// One branch point in the schedule tree: which runnable thread ran, out of
/// which options. `options` is recomputed on replay and must match — the
/// model closure is required to be deterministic apart from scheduling.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    pub(crate) chosen: usize,
    pub(crate) options: Vec<usize>,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    current: usize,
    /// DFS path: prefix (< `seeded`) is replayed, the rest is extended greedily.
    pub(crate) path: Vec<Decision>,
    seeded: usize,
    depth: usize,
    preemptions: usize,
    bound: Option<usize>,
    pub(crate) abort: bool,
    pub(crate) done: bool,
    pub(crate) failure: Option<String>,
    objects: Vec<Object>,
    steps: usize,
    max_steps: usize,
    /// Thread id chosen at each step — printed with failures.
    trace: Vec<usize>,
}

pub(crate) struct Execution {
    pub(crate) state: Mutex<ExecState>,
    cv: Condvar,
    pub(crate) handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static TLS: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The calling OS thread's execution context, if it is a model thread.
pub(crate) fn ctx() -> Option<(Arc<Execution>, usize)> {
    TLS.with(|t| t.borrow().clone())
}

pub(crate) fn require_ctx(what: &str) -> (Arc<Execution>, usize) {
    ctx().unwrap_or_else(|| {
        panic!("loom: {what} may only be used inside loom::model / Builder::check")
    })
}

pub(crate) fn set_ctx(exec: Arc<Execution>, id: usize) {
    TLS.with(|t| *t.borrow_mut() = Some((exec, id)));
}

fn clear_ctx() {
    TLS.with(|t| *t.borrow_mut() = None);
}

fn panic_abort() -> ! {
    std::panic::panic_any(AbortToken)
}

impl Execution {
    pub(crate) fn new(seed: Vec<Decision>, bound: Option<usize>, max_steps: usize) -> Self {
        let seeded = seed.len();
        Execution {
            state: Mutex::new(ExecState {
                threads: vec![ThreadState::Runnable],
                current: 0,
                path: seed,
                seeded,
                depth: 0,
                preemptions: 0,
                bound,
                abort: false,
                done: false,
                failure: None,
                objects: Vec::new(),
                steps: 0,
                max_steps,
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn new_object(&self, obj: Object) -> usize {
        let mut g = self.lock();
        g.objects.push(obj);
        g.objects.len() - 1
    }

    fn fail(g: &mut ExecState, msg: String) {
        if g.failure.is_none() {
            g.failure = Some(msg);
        }
        g.abort = true;
        g.done = true;
    }

    /// Pick the next thread to run. Called with `me` still marked as the
    /// current thread (possibly just blocked or finished). Returns the chosen
    /// thread, or None when the iteration is over (all finished / deadlock).
    fn pick_next(g: &mut ExecState, me: usize) -> Option<usize> {
        let enabled: Vec<usize> = (0..g.threads.len())
            .filter(|&t| g.threads[t] == ThreadState::Runnable)
            .collect();
        if enabled.is_empty() {
            let blocked: Vec<(usize, Wait)> = g
                .threads
                .iter()
                .enumerate()
                .filter_map(|(t, st)| match st {
                    ThreadState::Blocked(w) => Some((t, *w)),
                    _ => None,
                })
                .collect();
            if !blocked.is_empty() {
                Self::fail(
                    g,
                    format!(
                        "deadlock: no runnable threads; blocked: {blocked:?}; \
                         schedule so far: {:?}",
                        g.trace
                    ),
                );
            } else {
                g.done = true;
            }
            return None;
        }

        let me_enabled = enabled.contains(&me);
        // Option ordering: the current thread first (running on is never a
        // preemption), then the rest by id. Deterministic across replays.
        let options: Vec<usize> = if me_enabled {
            if g.bound.is_some_and(|b| g.preemptions >= b) {
                vec![me]
            } else {
                std::iter::once(me)
                    .chain(enabled.iter().copied().filter(|&t| t != me))
                    .collect()
            }
        } else {
            enabled
        };

        let chosen_thread = if g.depth < g.seeded {
            let d = &mut g.path[g.depth];
            if d.options.is_empty() {
                // Replaying from an encoded seed: options were not recorded.
                d.options = options.clone();
            } else if d.options != options {
                let msg = format!(
                    "nondeterministic model: at step {} the replayed schedule \
                     offered {:?} but this run offers {options:?}",
                    g.depth, d.options
                );
                Self::fail(g, msg);
                return None;
            }
            if d.chosen >= options.len() {
                let chosen = d.chosen;
                Self::fail(
                    g,
                    format!(
                        "invalid replay seed: step {} chose branch {chosen} of {}",
                        g.depth,
                        options.len()
                    ),
                );
                return None;
            }
            options[d.chosen]
        } else {
            g.path.push(Decision {
                chosen: 0,
                options: options.clone(),
            });
            options[0]
        };
        g.depth += 1;
        if me_enabled && chosen_thread != me {
            g.preemptions += 1;
        }
        g.trace.push(chosen_thread);
        g.current = chosen_thread;
        Some(chosen_thread)
    }

    /// A schedule point: optionally block the caller, pick the next thread
    /// and park until the caller is chosen again.
    pub(crate) fn switch(&self, me: usize, block: Option<Wait>) {
        let mut g = self.lock();
        if g.abort {
            drop(g);
            panic_abort();
        }
        g.steps += 1;
        if g.steps > g.max_steps {
            let max = g.max_steps;
            Self::fail(
                &mut g,
                format!("model exceeded {max} schedule steps in one iteration (livelock?)"),
            );
            self.cv.notify_all();
            drop(g);
            panic_abort();
        }
        if let Some(w) = block {
            g.threads[me] = ThreadState::Blocked(w);
        }
        let next = Self::pick_next(&mut g, me);
        self.cv.notify_all();
        if next == Some(me) {
            return;
        }
        if next.is_none() {
            // Iteration over (deadlock failure counts me as blocked).
            drop(g);
            panic_abort();
        }
        while !g.abort && g.current != me {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.abort {
            drop(g);
            panic_abort();
        }
        debug_assert_eq!(g.threads[me], ThreadState::Runnable);
    }

    /// First park of a freshly spawned model thread: wait to be scheduled.
    pub(crate) fn wait_first(&self, me: usize) {
        let mut g = self.lock();
        while !g.abort && g.current != me {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.abort {
            drop(g);
            panic_abort();
        }
    }

    /// Register a new runnable model thread; returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = self.lock();
        g.threads.push(ThreadState::Runnable);
        g.threads.len() - 1
    }

    /// Mark `me` finished, wake joiners, schedule whoever is next.
    pub(crate) fn finish(&self, me: usize) {
        let mut g = self.lock();
        if g.abort {
            return;
        }
        g.threads[me] = ThreadState::Finished;
        for t in 0..g.threads.len() {
            if g.threads[t] == ThreadState::Blocked(Wait::Join(me)) {
                g.threads[t] = ThreadState::Runnable;
            }
        }
        let _ = Self::pick_next(&mut g, me);
        self.cv.notify_all();
    }

    /// Record a genuine panic from a model thread as a model failure.
    pub(crate) fn thread_panicked(&self, me: usize, payload: Box<dyn std::any::Any + Send>) {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        let mut g = self.lock();
        g.threads[me] = ThreadState::Finished;
        let trace = std::mem::take(&mut g.trace);
        Self::fail(
            &mut g,
            format!("thread {me} panicked: {msg}; schedule: {trace:?}"),
        );
        self.cv.notify_all();
    }

    /// Block the driver until the iteration completes or aborts.
    pub(crate) fn wait_done(&self) {
        let mut g = self.lock();
        while !g.done {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    // ---- object operations (each acquire-like op is a schedule point) ----

    pub(crate) fn mutex_lock(&self, obj: usize, me: usize) {
        self.switch(me, None);
        loop {
            {
                let mut g = self.lock();
                if let Object::Mutex { locked } = &mut g.objects[obj] {
                    if !*locked {
                        *locked = true;
                        return;
                    }
                } else {
                    unreachable!("object {obj} is not a mutex");
                }
            }
            self.switch(me, Some(Wait::Mutex(obj)));
        }
    }

    pub(crate) fn mutex_try_lock(&self, obj: usize, me: usize) -> bool {
        self.switch(me, None);
        let mut g = self.lock();
        match &mut g.objects[obj] {
            Object::Mutex { locked } if !*locked => {
                *locked = true;
                true
            }
            Object::Mutex { .. } => false,
            _ => unreachable!("object {obj} is not a mutex"),
        }
    }

    /// Unlock without a schedule point (used by condvar wait and teardown).
    fn mutex_unlock_inner(g: &mut ExecState, obj: usize) {
        if let Object::Mutex { locked } = &mut g.objects[obj] {
            debug_assert!(*locked);
            *locked = false;
        }
        for t in 0..g.threads.len() {
            if g.threads[t] == ThreadState::Blocked(Wait::Mutex(obj)) {
                g.threads[t] = ThreadState::Runnable;
            }
        }
    }

    pub(crate) fn mutex_unlock(&self, obj: usize, me: usize) {
        {
            let mut g = self.lock();
            if g.abort {
                return;
            }
            Self::mutex_unlock_inner(&mut g, obj);
        }
        // Releasing during a panic unwind must not reschedule: the panic is
        // either the teardown token or about to be recorded as the failure.
        if !std::thread::panicking() {
            self.switch(me, None);
        }
    }

    pub(crate) fn rw_read(&self, obj: usize, me: usize) {
        self.switch(me, None);
        loop {
            {
                let mut g = self.lock();
                if let Object::RwLock { readers, writer } = &mut g.objects[obj] {
                    if !*writer {
                        *readers += 1;
                        return;
                    }
                } else {
                    unreachable!("object {obj} is not an rwlock");
                }
            }
            self.switch(me, Some(Wait::RwRead(obj)));
        }
    }

    pub(crate) fn rw_write(&self, obj: usize, me: usize) {
        self.switch(me, None);
        loop {
            {
                let mut g = self.lock();
                if let Object::RwLock { readers, writer } = &mut g.objects[obj] {
                    if !*writer && *readers == 0 {
                        *writer = true;
                        return;
                    }
                } else {
                    unreachable!("object {obj} is not an rwlock");
                }
            }
            self.switch(me, Some(Wait::RwWrite(obj)));
        }
    }

    pub(crate) fn rw_release(&self, obj: usize, me: usize, write: bool) {
        {
            let mut g = self.lock();
            if g.abort {
                return;
            }
            if let Object::RwLock { readers, writer } = &mut g.objects[obj] {
                if write {
                    debug_assert!(*writer);
                    *writer = false;
                } else {
                    debug_assert!(*readers > 0);
                    *readers -= 1;
                }
            }
            for t in 0..g.threads.len() {
                match g.threads[t] {
                    ThreadState::Blocked(Wait::RwRead(o)) if o == obj => {
                        g.threads[t] = ThreadState::Runnable;
                    }
                    ThreadState::Blocked(Wait::RwWrite(o)) if o == obj => {
                        g.threads[t] = ThreadState::Runnable;
                    }
                    _ => {}
                }
            }
        }
        if !std::thread::panicking() {
            self.switch(me, None);
        }
    }

    /// Atomically release the mutex and park on the condvar, then re-acquire
    /// once notified. FIFO wakeup order (a documented simplification: real
    /// loom also explores spurious wakeups).
    pub(crate) fn condvar_wait(&self, cv: usize, mutex: usize, me: usize) {
        self.switch(me, None);
        {
            let mut g = self.lock();
            if let Object::Condvar { waiters } = &mut g.objects[cv] {
                waiters.push(me);
            } else {
                unreachable!("object {cv} is not a condvar");
            }
            Self::mutex_unlock_inner(&mut g, mutex);
        }
        self.switch(me, Some(Wait::Condvar(cv)));
        // Only a notify makes a condvar waiter runnable again.
        debug_assert!({
            let g = self.lock();
            match &g.objects[cv] {
                Object::Condvar { waiters } => !waiters.contains(&me),
                _ => false,
            }
        });
        loop {
            {
                let mut g = self.lock();
                if let Object::Mutex { locked } = &mut g.objects[mutex] {
                    if !*locked {
                        *locked = true;
                        return;
                    }
                }
            }
            self.switch(me, Some(Wait::Mutex(mutex)));
        }
    }

    pub(crate) fn condvar_notify(&self, cv: usize, me: usize, all: bool) {
        self.switch(me, None);
        let mut g = self.lock();
        let woken: Vec<usize> = if let Object::Condvar { waiters } = &mut g.objects[cv] {
            let n = if all {
                waiters.len()
            } else {
                1.min(waiters.len())
            };
            waiters.drain(..n).collect()
        } else {
            Vec::new()
        };
        for t in woken {
            g.threads[t] = ThreadState::Runnable;
        }
    }

    pub(crate) fn join_thread(&self, target: usize, me: usize) {
        self.switch(me, None);
        loop {
            {
                let g = self.lock();
                if g.threads[target] == ThreadState::Finished {
                    return;
                }
            }
            self.switch(me, Some(Wait::Join(target)));
        }
    }
}

/// Spawn the root model thread (id 0) for one iteration.
pub(crate) fn spawn_root<F>(exec: &Arc<Execution>, f: Arc<F>)
where
    F: Fn() + Send + Sync + 'static,
{
    let e = Arc::clone(exec);
    let h = std::thread::Builder::new()
        .name("loom-0".into())
        .spawn(move || {
            set_ctx(Arc::clone(&e), 0);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f()));
            match r {
                Ok(()) => e.finish(0),
                Err(p) if p.is::<AbortToken>() => {}
                Err(p) => e.thread_panicked(0, p),
            }
            clear_ctx();
        })
        .expect("spawn loom root thread");
    exec.handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(h);
}

/// Spawn a child model thread; used by `loom::thread::spawn`.
pub(crate) fn spawn_child<F, T>(
    exec: &Arc<Execution>,
    me: usize,
    f: F,
) -> (usize, Arc<Mutex<Option<std::thread::Result<T>>>>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let id = exec.register_thread();
    let slot: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let e = Arc::clone(exec);
    let h = std::thread::Builder::new()
        .name(format!("loom-{id}"))
        .spawn(move || {
            set_ctx(Arc::clone(&e), id);
            e.wait_first(id);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            match r {
                Ok(v) => {
                    *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                    e.finish(id);
                }
                Err(p) if p.is::<AbortToken>() => {}
                Err(p) => e.thread_panicked(id, p),
            }
            clear_ctx();
        })
        .expect("spawn loom child thread");
    exec.handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(h);
    // The spawn itself is a visible event: give the scheduler the chance to
    // run the child immediately (one of the interleavings).
    exec.switch(me, None);
    (id, slot)
}

/// Install (once) a panic hook that silences the teardown token but chains
/// every other panic to the previously installed hook.
pub(crate) fn install_quiet_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortToken>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}
