//! Model-aware `std::sync` mirror: `Mutex`, `RwLock`, `Condvar`, atomics.
//!
//! Every acquire, release, wait, notify and atomic access is a schedule
//! point: the checker may switch threads there, and the DFS driver explores
//! every such choice (under the preemption bound). Data lives in
//! `UnsafeCell`s — the scheduler runs exactly one model thread at a time and
//! the lock flags enforce exclusion, so no real locking is needed (a real
//! blocking lock would deadlock the cooperative scheduler).

use crate::rt::{self, Object};
use std::cell::UnsafeCell;
use std::sync::Arc as StdArc;

/// Re-export: plain `Arc` is safe under the model (refcounts are atomic and
/// the shim explores sequentially-consistent interleavings only).
pub use std::sync::Arc;

/// Mirrors `std::sync::LockResult`; the shim never poisons, so lock results
/// are always `Ok` and `.unwrap()` in model code is exact std usage.
pub type LockResult<G> = Result<G, std::sync::PoisonError<G>>;
pub type TryLockResult<G> = Result<G, std::sync::TryLockError<G>>;

/// A model mutex. Usable only inside `loom::model`.
pub struct Mutex<T: ?Sized> {
    exec: StdArc<rt::Execution>,
    obj: usize,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let (exec, _) = rt::require_ctx("loom::sync::Mutex");
        let obj = exec.new_object(Object::Mutex { locked: false });
        Mutex {
            exec,
            obj,
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (_, me) = rt::require_ctx("Mutex::lock");
        self.exec.mutex_lock(self.obj, me);
        Ok(MutexGuard { lock: self })
    }

    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        let (_, me) = rt::require_ctx("Mutex::try_lock");
        if self.exec.mutex_try_lock(self.obj, me) {
            Ok(MutexGuard { lock: self })
        } else {
            Err(std::sync::TryLockError::WouldBlock)
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((_, me)) = rt::ctx() {
            self.lock.exec.mutex_unlock(self.lock.obj, me);
        }
    }
}

/// A model reader-writer lock.
pub struct RwLock<T: ?Sized> {
    exec: StdArc<rt::Execution>,
    obj: usize,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        let (exec, _) = rt::require_ctx("loom::sync::RwLock");
        let obj = exec.new_object(Object::RwLock {
            readers: 0,
            writer: false,
        });
        RwLock {
            exec,
            obj,
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let (_, me) = rt::require_ctx("RwLock::read");
        self.exec.rw_read(self.obj, me);
        Ok(RwLockReadGuard { lock: self })
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let (_, me) = rt::require_ctx("RwLock::write");
        self.exec.rw_write(self.obj, me);
        Ok(RwLockWriteGuard { lock: self })
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((_, me)) = rt::ctx() {
            self.lock.exec.rw_release(self.lock.obj, me, false);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((_, me)) = rt::ctx() {
            self.lock.exec.rw_release(self.lock.obj, me, true);
        }
    }
}

/// A model condition variable with deterministic FIFO wakeups.
pub struct Condvar {
    exec: StdArc<rt::Execution>,
    obj: usize,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let (exec, _) = rt::require_ctx("loom::sync::Condvar");
        let obj = exec.new_object(Object::Condvar {
            waiters: Vec::new(),
        });
        Condvar { exec, obj }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (_, me) = rt::require_ctx("Condvar::wait");
        let lock = guard.lock;
        std::mem::forget(guard); // the runtime releases the mutex itself
        self.exec.condvar_wait(self.obj, lock.obj, me);
        Ok(MutexGuard { lock })
    }

    pub fn notify_one(&self) {
        let (_, me) = rt::require_ctx("Condvar::notify_one");
        self.exec.condvar_notify(self.obj, me, false);
    }

    pub fn notify_all(&self) {
        let (_, me) = rt::require_ctx("Condvar::notify_all");
        self.exec.condvar_notify(self.obj, me, true);
    }
}

pub mod atomic {
    //! Sequentially-consistent model atomics: every access is a schedule
    //! point; the `Ordering` argument is accepted but all operations execute
    //! as SeqCst (the shim does not explore weak-memory reorderings — see
    //! shims/README).

    use crate::rt;
    pub use std::sync::atomic::Ordering;

    fn schedule_point() {
        if let Some((exec, me)) = rt::ctx() {
            exec.switch(me, None);
        }
    }

    /// A fence is a pure schedule point under the SC-only model.
    pub fn fence(_order: Ordering) {
        schedule_point();
    }

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                pub fn new(v: $prim) -> Self {
                    Self(<$std>::new(v))
                }

                pub fn load(&self, _o: Ordering) -> $prim {
                    schedule_point();
                    self.0.load(Ordering::SeqCst)
                }

                pub fn store(&self, v: $prim, _o: Ordering) {
                    schedule_point();
                    self.0.store(v, Ordering::SeqCst)
                }

                pub fn swap(&self, v: $prim, _o: Ordering) -> $prim {
                    schedule_point();
                    self.0.swap(v, Ordering::SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    cur: $prim,
                    new: $prim,
                    _s: Ordering,
                    _f: Ordering,
                ) -> Result<$prim, $prim> {
                    schedule_point();
                    self.0
                        .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                pub fn compare_exchange_weak(
                    &self,
                    cur: $prim,
                    new: $prim,
                    s: Ordering,
                    f: Ordering,
                ) -> Result<$prim, $prim> {
                    // Never fails spuriously in the model.
                    self.compare_exchange(cur, new, s, f)
                }

                pub fn into_inner(self) -> $prim {
                    self.0.into_inner()
                }
            }
        };
    }

    macro_rules! model_atomic_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                pub fn fetch_add(&self, v: $prim, _o: Ordering) -> $prim {
                    schedule_point();
                    self.0.fetch_add(v, Ordering::SeqCst)
                }

                pub fn fetch_sub(&self, v: $prim, _o: Ordering) -> $prim {
                    schedule_point();
                    self.0.fetch_sub(v, Ordering::SeqCst)
                }

                pub fn fetch_or(&self, v: $prim, _o: Ordering) -> $prim {
                    schedule_point();
                    self.0.fetch_or(v, Ordering::SeqCst)
                }

                pub fn fetch_and(&self, v: $prim, _o: Ordering) -> $prim {
                    schedule_point();
                    self.0.fetch_and(v, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicI64, std::sync::atomic::AtomicI64, i64);
    model_atomic_arith!(AtomicUsize, usize);
    model_atomic_arith!(AtomicU32, u32);
    model_atomic_arith!(AtomicU64, u64);
    model_atomic_arith!(AtomicI64, i64);

    impl AtomicBool {
        pub fn fetch_or(&self, v: bool, _o: Ordering) -> bool {
            schedule_point();
            self.0.fetch_or(v, Ordering::SeqCst)
        }

        pub fn fetch_and(&self, v: bool, _o: Ordering) -> bool {
            schedule_point();
            self.0.fetch_and(v, Ordering::SeqCst)
        }
    }
}
