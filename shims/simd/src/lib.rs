//! Minimal offline stand-in for portable SIMD (`std::simd` / `wide` style).
//!
//! Provides one vector type, [`f64x4`]: four `f64` lanes with element-wise
//! arithmetic and the handful of lane shuffles the emulator kernels need.
//! The representation is a plain `[f64; 4]` and every operation is
//! `#[inline(always)]` scalar-per-lane code, so:
//!
//! * on any target it compiles and produces exactly the IEEE-754 result of
//!   the equivalent scalar code (the scalar fallback is the definition);
//! * inlined into a caller compiled with wider vector features (e.g. an
//!   `#[target_feature(enable = "avx2")]` function selected at runtime via
//!   [`avx2_available`]), LLVM lowers the lane ops to real vector
//!   instructions.
//!
//! No operation here reassociates or contracts (no FMA), so lane code is
//! bit-identical to its scalar reference — the property the emulator's
//! parity tests assert.

#![allow(non_camel_case_types)]

use std::ops::{Add, Mul, Neg, Sub};

/// Four `f64` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct f64x4([f64; 4]);

impl f64x4 {
    /// All four lanes set to `v`.
    #[inline(always)]
    pub const fn splat(v: f64) -> Self {
        f64x4([v, v, v, v])
    }

    /// Lanes from an array, in order.
    #[inline(always)]
    pub const fn from_array(a: [f64; 4]) -> Self {
        f64x4(a)
    }

    /// The lanes as an array.
    #[inline(always)]
    pub const fn to_array(self) -> [f64; 4] {
        self.0
    }

    /// Load the first four elements of `s` (panics if `s.len() < 4`).
    #[inline(always)]
    pub fn from_slice(s: &[f64]) -> Self {
        f64x4([s[0], s[1], s[2], s[3]])
    }

    /// Store the lanes into the first four elements of `out`.
    #[inline(always)]
    pub fn write_to_slice(self, out: &mut [f64]) {
        out[0] = self.0[0];
        out[1] = self.0[1];
        out[2] = self.0[2];
        out[3] = self.0[3];
    }

    /// Load four lanes from `ptr` without bounds checks.
    ///
    /// # Safety
    /// `ptr` must be valid for reads of four `f64`s. (Unaligned is fine —
    /// the load is element-wise.)
    #[inline(always)]
    pub unsafe fn from_ptr(ptr: *const f64) -> Self {
        f64x4([
            ptr.read(),
            ptr.add(1).read(),
            ptr.add(2).read(),
            ptr.add(3).read(),
        ])
    }

    /// Store four lanes to `ptr` without bounds checks.
    ///
    /// # Safety
    /// `ptr` must be valid for writes of four `f64`s.
    #[inline(always)]
    pub unsafe fn write_ptr(self, ptr: *mut f64) {
        ptr.write(self.0[0]);
        ptr.add(1).write(self.0[1]);
        ptr.add(2).write(self.0[2]);
        ptr.add(3).write(self.0[3]);
    }

    /// Swap the two 128-bit halves: `[a, b, c, d] → [c, d, a, b]`.
    ///
    /// Viewing the vector as two interleaved complex numbers `(a+ib, c+id)`,
    /// this swaps the pair.
    #[inline(always)]
    pub fn rotate_pairs(self) -> Self {
        let [a, b, c, d] = self.0;
        f64x4([c, d, a, b])
    }

    /// Swap lanes within each 128-bit half: `[a, b, c, d] → [b, a, d, c]`.
    ///
    /// On interleaved complex data this exchanges `re ↔ im` of each number —
    /// the shuffle at the heart of the complex multiply.
    #[inline(always)]
    pub fn swap_within_pairs(self) -> Self {
        let [a, b, c, d] = self.0;
        f64x4([b, a, d, c])
    }

    /// Lane-select blend: low half from `lo`, high half from `hi`
    /// (`[lo0, lo1, hi2, hi3]`).
    ///
    /// This is a true lane *select* — untouched lanes keep their exact bit
    /// pattern (including `-0.0`), unlike a multiply-by-0/1 mask.
    #[inline(always)]
    pub fn merge_halves(lo: Self, hi: Self) -> Self {
        f64x4([lo.0[0], lo.0[1], hi.0[2], hi.0[3]])
    }
}

impl Add for f64x4 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        f64x4([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }
}

impl Sub for f64x4 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        f64x4([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
            self.0[3] - rhs.0[3],
        ])
    }
}

impl Mul for f64x4 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        f64x4([
            self.0[0] * rhs.0[0],
            self.0[1] * rhs.0[1],
            self.0[2] * rhs.0[2],
            self.0[3] * rhs.0[3],
        ])
    }
}

impl Neg for f64x4 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        f64x4([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

/// Runtime check for AVX2, cached after the first call. Always `false` off
/// x86-64. Callers use this to pick an `#[target_feature(enable = "avx2")]`
/// instantiation of their lane kernel; the kernel body is identical either
/// way, so the choice affects speed only, never results.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        // 0 = unknown, 1 = no, 2 = yes
        static AVX2: AtomicU8 = AtomicU8::new(0);
        match AVX2.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let yes = std::arch::is_x86_feature_detected!("avx2");
                AVX2.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
                yes
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Runtime check for AVX-512F, cached after the first call. Always `false`
/// off x86-64. Like [`avx2_available`], callers use this to select a wider
/// instantiation of an identical-result kernel — the choice affects speed
/// only, never results.
#[inline]
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        // 0 = unknown, 1 = no, 2 = yes
        static AVX512: AtomicU8 = AtomicU8::new(0);
        match AVX512.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let yes = std::arch::is_x86_feature_detected!("avx512f");
                AVX512.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
                yes
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_lanewise() {
        let a = f64x4::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = f64x4::from_array([10.0, 20.0, 30.0, 40.0]);
        assert_eq!((a + b).to_array(), [11.0, 22.0, 33.0, 44.0]);
        assert_eq!((b - a).to_array(), [9.0, 18.0, 27.0, 36.0]);
        assert_eq!((a * b).to_array(), [10.0, 40.0, 90.0, 160.0]);
        assert_eq!((-a).to_array(), [-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(f64x4::splat(7.5).to_array(), [7.5; 4]);
    }

    #[test]
    fn shuffles() {
        let v = f64x4::from_array([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.rotate_pairs().to_array(), [3.0, 4.0, 1.0, 2.0]);
        assert_eq!(v.swap_within_pairs().to_array(), [2.0, 1.0, 4.0, 3.0]);
        let w = f64x4::from_array([9.0, 8.0, 7.0, 6.0]);
        assert_eq!(f64x4::merge_halves(v, w).to_array(), [1.0, 2.0, 7.0, 6.0]);
    }

    #[test]
    fn merge_preserves_negative_zero_bits() {
        let nz = f64x4::splat(-0.0);
        let pz = f64x4::splat(0.0);
        let m = f64x4::merge_halves(nz, pz).to_array();
        assert!(m[0].is_sign_negative() && m[1].is_sign_negative());
        assert!(m[2].is_sign_positive() && m[3].is_sign_positive());
    }

    #[test]
    fn slice_roundtrip() {
        let data = [0.5, -1.5, 2.5, -3.5, 99.0];
        let v = f64x4::from_slice(&data);
        let mut out = [0.0; 4];
        v.write_to_slice(&mut out);
        assert_eq!(out, [0.5, -1.5, 2.5, -3.5]);
    }

    #[test]
    fn detection_is_stable() {
        let a = avx2_available();
        let b = avx2_available();
        assert_eq!(a, b);
        let c = avx512_available();
        let d = avx512_available();
        assert_eq!(c, d);
    }

    #[test]
    fn lane_ops_match_scalar_bit_for_bit() {
        // The defining property: every lane op is exactly the scalar op.
        let xs = [1.0e-300, -3.25, 0.1, f64::MAX / 2.0];
        let ys = [7.0e299, 0.3, -0.7, 1.0 / 3.0];
        let vx = f64x4::from_array(xs);
        let vy = f64x4::from_array(ys);
        for k in 0..4 {
            assert_eq!((vx + vy).to_array()[k].to_bits(), (xs[k] + ys[k]).to_bits());
            assert_eq!((vx * vy).to_array()[k].to_bits(), (xs[k] * ys[k]).to_bits());
            assert_eq!((vx - vy).to_array()[k].to_bits(), (xs[k] - ys[k]).to_bits());
        }
    }
}
