//! Minimal offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 block function as the PRNG core, so the
//! stream quality matches the real crate. The exact output stream is NOT
//! guaranteed bit-identical to upstream `rand_chacha` (word ordering and
//! seeding glue differ); workspace code only relies on same-seed
//! reproducibility, which holds.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 = exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // double round: column then diagonal
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = working;
        self.index = 0;
        // 64-bit block counter in words 12–13
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // counter and nonce start at zero
        ChaCha8Rng {
            state,
            buffer: [0u32; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
