//! Random string generation from the regex subset the workspace uses:
//! sequences of literal characters or character classes (`[a-z0-9/]`,
//! `[ -~]`), each optionally followed by a `{n}` / `{m,n}` repetition.

use crate::TestRng;

enum Atom {
    Literal(char),
    /// Flattened list of candidate characters.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    // a-z style range (only when a dash sits between two chars)
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "invalid range {lo}-{hi} in pattern {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        let c = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // ']'
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // optional {n} or {m,n}
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition"),
                    hi.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            rng.index(piece.min, piece.max + 1)
        };
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.index(0, set.len())]),
            }
        }
    }
    out
}
