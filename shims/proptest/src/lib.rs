//! Minimal offline stand-in for the `proptest` crate.
//!
//! Keeps the core value of property testing — many random cases per
//! property, deterministic per test name — while dropping the parts this
//! workspace doesn't rely on (shrinking, failure persistence). The
//! `proptest!` macro, `Strategy` combinators, `prop_oneof!`, collection and
//! regex-subset string strategies mirror the real API closely enough that
//! the existing test suites compile unchanged.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

pub mod collection;
mod regex;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // real proptest defaults to 256; a leaner default keeps `cargo test`
        // fast while the explicit `with_cases` sites keep their own counts
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG (SplitMix64). Seeded from the test name so
/// failures reproduce run-to-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A generator of random values — the shim keeps `generate` only (no
/// shrinking tree).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }

    fn prop_filter<F>(self, _reason: &'static str, f: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// `prop_map` adapter.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// `prop_filter` adapter — rejection sampling with a retry cap.
pub struct FilterStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for FilterStrategy<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Type-erased strategy, as produced by `Strategy::boxed` / `prop_oneof!`.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies (unweighted `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(0, self.options.len());
        self.options[i].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- numeric range strategies --------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- string strategies (regex subset) ------------------------------------

/// String strategies from regex-like patterns, e.g. `"[a-z0-9/]{1,30}"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

// ---- tuple strategies -----------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
}

// ---- any::<T>() -----------------------------------------------------------

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // mostly finite values, with occasional non-finite edge cases —
        // properties over f64 should survive NaN/∞
        match rng.next_u64() % 16 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => {
                f64::from_bits(rng.next_u64() % (0x7FF0u64 << 48))
                    * if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 }
            }
        }
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- macros ---------------------------------------------------------------

/// Uniform choice over strategy expressions (unweighted arms only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` targeting the case loop `proptest!` generates.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unused_variables)]
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let x = (1.5f64..9.0).generate(&mut rng);
            assert!((1.5..9.0).contains(&x));
            let n = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn vec_and_tuple_shapes() {
        let mut rng = TestRng::deterministic("shapes");
        let strat = crate::collection::vec((any::<bool>(), 0.0f64..1.0), 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = crate::collection::vec(0u32..10, 7);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..200 {
            let s = "[a-z0-9/]{1,30}".generate(&mut rng);
            assert!((1..=30).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '/'));
            let t = "[ -~]{0,100}".generate(&mut rng);
            assert!(t.chars().count() <= 100);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_hits_all_arms() {
        let mut rng = TestRng::deterministic("oneof");
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, flip in any::<bool>(), s in "[a-c]{1,3}") {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 13);
            let _ = (flip, s);
        }
    }
}
