//! Collection strategies: `proptest::collection::vec`.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Length specifications accepted by [`vec`]: an exact `usize` or a
/// half-open `Range<usize>`.
pub trait SizeRange {
    /// Half-open `(lo, hi)` bounds on the length.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Strategy for `Vec<S::Value>` with a random length in the given range.
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.index(self.lo, self.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element_strategy, len)` — `len` may be an
/// exact size or a range.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    assert!(lo < hi, "empty vec length range");
    VecStrategy { element, lo, hi }
}
