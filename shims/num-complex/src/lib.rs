//! Minimal offline stand-in for the `num-complex` crate.
//!
//! Implements exactly the `Complex<f64>` surface the emulator and SDK use:
//! construction, polar form, conjugation, norms, and mixed complex/real
//! arithmetic. Semantics match the real crate for these operations.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im`.
///
/// `repr(C)` matches the real crate: a `[Complex<T>]` slice is layout-
/// compatible with `[T]` of twice the length (`re` at offset 0, `im` next),
/// which the emulator's SIMD kernels rely on to reinterpret amplitude
/// buffers as flat `f64` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    pub re: T,
    pub im: T,
}

pub type Complex64 = Complex<f64>;

impl<T> Complex<T> {
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }
}

impl Complex<f64> {
    /// The imaginary unit.
    pub fn i() -> Self {
        Complex::new(0.0, 1.0)
    }

    /// `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    pub fn conj(&self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// `|z|`.
    pub fn norm(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// `|z|²`.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle).
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    pub fn exp(&self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Scale by a real factor.
    pub fn scale(&self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    pub fn is_finite(&self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex<f64> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex<f64> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex<f64> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex<f64> {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Mul<f64> for Complex<f64> {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    fn mul(self, rhs: Complex<f64>) -> Complex<f64> {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex<f64> {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<&Complex<f64>> for Complex<f64> {
    type Output = Complex<f64>;
    fn mul(self, rhs: &Complex<f64>) -> Complex<f64> {
        self * *rhs
    }
}

impl Mul<Complex<f64>> for &Complex<f64> {
    type Output = Complex<f64>;
    fn mul(self, rhs: Complex<f64>) -> Complex<f64> {
        *self * rhs
    }
}

impl Mul<&Complex<f64>> for &Complex<f64> {
    type Output = Complex<f64>;
    fn mul(self, rhs: &Complex<f64>) -> Complex<f64> {
        *self * *rhs
    }
}

impl Mul<f64> for &Complex<f64> {
    type Output = Complex<f64>;
    fn mul(self, rhs: f64) -> Complex<f64> {
        self.scale(rhs)
    }
}

impl Mul<&Complex<f64>> for f64 {
    type Output = Complex<f64>;
    fn mul(self, rhs: &Complex<f64>) -> Complex<f64> {
        rhs.scale(self)
    }
}

impl Sub<Complex<f64>> for &Complex<f64> {
    type Output = Complex<f64>;
    fn sub(self, rhs: Complex<f64>) -> Complex<f64> {
        *self - rhs
    }
}

impl Add<Complex<f64>> for &Complex<f64> {
    type Output = Complex<f64>;
    fn add(self, rhs: Complex<f64>) -> Complex<f64> {
        *self + rhs
    }
}

impl Add<&Complex<f64>> for Complex<f64> {
    type Output = Complex<f64>;
    fn add(self, rhs: &Complex<f64>) -> Complex<f64> {
        self + *rhs
    }
}

impl Sub<&Complex<f64>> for Complex<f64> {
    type Output = Complex<f64>;
    fn sub(self, rhs: &Complex<f64>) -> Complex<f64> {
        self - *rhs
    }
}

impl Neg for Complex<f64> {
    type Output = Self;
    fn neg(self) -> Self {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex<f64> {
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex<f64> {
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex<f64> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex<f64> {
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for Complex<f64> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex::new(0.0, 0.0), |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex<f64>> for Complex<f64> {
    fn sum<I: Iterator<Item = &'a Complex<f64>>>(iter: I) -> Self {
        iter.fold(Complex::new(0.0, 0.0), |a, b| a + *b)
    }
}

impl From<f64> for Complex<f64> {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z * z.conj(), Complex64::new(25.0, 0.0));
        assert_eq!((z / z).re, 1.0);
        let i = Complex64::i();
        assert_eq!(i * i, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!((z.re).abs() < 1e-15);
        assert!((z.im - 2.0).abs() < 1e-15);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn sum_over_iterator() {
        let v = [Complex64::new(1.0, 1.0), Complex64::new(2.0, -1.0)];
        let s: Complex64 = v.iter().sum();
        assert_eq!(s, Complex64::new(3.0, 0.0));
    }
}
