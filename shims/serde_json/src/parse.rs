//! Recursive-descent JSON parser (RFC 8259): full escape handling including
//! surrogate pairs, strict number grammar, and depth limiting so malformed
//! input can't blow the stack.

use crate::Error;
use serde::value::{Map, Number, Value};

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document (trailing whitespace allowed, nothing else).
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        // Fast path: bulk-scan the unescaped span (the overwhelmingly common
        // case — object keys and plain strings) and copy it in one shot.
        let start = self.pos;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c == b'"' || c == b'\\' || c < 0x20 {
                break;
            }
            self.pos += 1;
        }
        if self.peek() == Some(b'"') {
            // input is a &str and we only stopped at ASCII delimiters, so the
            // span lies on UTF-8 boundaries
            let s = unsafe { std::str::from_utf8_unchecked(&self.bytes[start..self.pos]) };
            let out = s.to_string();
            self.pos += 1;
            return Ok(out);
        }
        let mut out =
            unsafe { std::str::from_utf8_unchecked(&self.bytes[start..self.pos]).to_string() };
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: require \uXXXX low surrogate
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.err(&format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // bulk-copy the run up to the next delimiter (input is a
                    // &str, so the span lies on UTF-8 boundaries)
                    let run = self.pos;
                    while let Some(&c) = self.bytes.get(self.pos) {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(unsafe {
                        std::str::from_utf8_unchecked(&self.bytes[run..self.pos])
                    });
                }
            }
        }
    }

    /// Attempt the short-decimal fast path. `self.pos` is just past the
    /// optional minus sign. Returns `None` (with `pos` to be reset by the
    /// caller) when the literal needs the strict slow path.
    fn number_fast(&mut self, negative: bool) -> Option<Value> {
        const POW10: [f64; 23] = [
            1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15,
            1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
        ];
        let bytes = self.bytes;
        let mut i = self.pos;
        let int_start = i;
        let mut mantissa: u64 = 0;
        while let Some(&c) = bytes.get(i) {
            let d = c.wrapping_sub(b'0');
            if d > 9 {
                break;
            }
            mantissa = mantissa.wrapping_mul(10).wrapping_add(d as u64);
            i += 1;
        }
        let int_digits = i - int_start;
        if int_digits == 0 || (int_digits > 1 && bytes[int_start] == b'0') {
            return None; // empty or leading zero: let the strict path reject
        }
        let mut frac_digits = 0usize;
        if bytes.get(i) == Some(&b'.') {
            i += 1;
            let frac_start = i;
            while let Some(&c) = bytes.get(i) {
                let d = c.wrapping_sub(b'0');
                if d > 9 {
                    break;
                }
                mantissa = mantissa.wrapping_mul(10).wrapping_add(d as u64);
                i += 1;
            }
            frac_digits = i - frac_start;
            if frac_digits == 0 {
                return None;
            }
        }
        // exponents, >15 total digits (u64 accumulation may have wrapped or
        // exceeded 2^53), or a trailing 'e' go to the strict path
        if matches!(bytes.get(i), Some(b'e' | b'E')) || int_digits + frac_digits > 15 {
            return None;
        }
        self.pos = i;
        if frac_digits == 0 {
            // integer: same typing rules as the strict path
            return Some(Value::Number(if negative {
                Number::I64(-(mantissa as i64))
            } else {
                Number::U64(mantissa)
            }));
        }
        let mut x = mantissa as f64 / POW10[frac_digits];
        if negative {
            x = -x;
        }
        Some(Value::Number(Number::F64(x)))
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Fast path (Clinger): mantissa accumulated in u64 stays ≤ 2^53 and
        // the decimal exponent is within the exactly-representable powers of
        // ten, so one multiply/divide is correctly rounded — bit-identical
        // to a full strtod. Covers the short decimals that dominate real
        // payloads; anything longer falls through to the strict path below.
        if let Some(v) = self.number_fast(negative) {
            return Ok(v);
        }
        self.pos = start + usize::from(negative);
        // integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::I64(n)));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::F64(x)))
            .map_err(|_| self.err("invalid number"))
    }
}
