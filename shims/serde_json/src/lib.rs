//! Minimal offline stand-in for the `serde_json` crate.
//!
//! Full JSON parser/printer over the `serde` shim's [`Value`] tree. Numbers
//! keep u64/i64 precision when integral; floats print via Rust's shortest
//! round-trip `Display`, so value → text → value is lossless (the
//! `float_roundtrip` behavior the workspace manifest asks for).

mod parse;

pub use parse::parse_value;
pub use serde::value::{Map, Number, Value};
use serde::{Deserialize, Serialize};

/// Parse or data-mapping failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.0)
    }
}

/// Deserialize `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize `T` from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_compact(&mut out);
    Ok(out)
}

/// Serialize to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Serialize to a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Support function for the `json!` macro: convert any `Serialize` value.
#[doc(hidden)]
pub fn __to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Build a [`Value`] literal. Supports the flat object/array/scalar forms
/// used in this workspace; values may be arbitrary `Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $(__m.insert($key, $crate::__to_value(&$val));)*
        $crate::Value::Object(__m)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::__to_value(&$val)),*])
    };
    ($other:expr) => { $crate::__to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "0", "42", "-7", "3.25", "1e3", "true", "false", "null", "\"hi\"",
        ] {
            let v: Value = from_str(text).unwrap();
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, 5e-324, -2.5, 1e21] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} → {text}");
        }
    }

    #[test]
    fn u64_precision_preserved() {
        let n = u64::MAX - 3;
        let text = to_string(&n).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn object_indexing_and_missing_keys() {
        let v: Value = from_str(r#"{"token":"abc","task_id":17,"nested":{"x":[1,2]}}"#).unwrap();
        assert_eq!(v["token"].as_str(), Some("abc"));
        assert_eq!(v["task_id"].as_u64(), Some(17));
        assert_eq!(v["nested"]["x"][1].as_u64(), Some(2));
        assert!(v["absent"].is_null());
        assert!(v["nested"]["x"][9].is_null());
    }

    #[test]
    fn json_macro_shapes() {
        let id: u64 = 9;
        let v = json!({ "task_id": id, "ok": true, "name": "x" });
        assert_eq!(v.to_string(), r#"{"task_id":9,"ok":true,"name":"x"}"#);
        assert_eq!(json!([1, 2]).to_string(), "[1,2]");
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quoted\"\tand \\ unicode \u{1F600} nul:\u{1}";
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
        // escaped input forms parse too
        let v: String = from_str(r#""aA\né😀""#).unwrap();
        assert_eq!(v, "aA\né😀");
    }

    #[test]
    fn parse_errors_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "01",
            "1.2.3",
            "{]",
            "nul",
            "[1 2]",
            "{\"a\":1,}",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn pretty_print_shape() {
        let v = json!({ "a": 1 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    /// The short-decimal fast path in the parser must be bit-identical to
    /// std's strtod on every shape it accepts, and the strict path must
    /// still handle everything it rejects (exponents, long mantissas).
    #[test]
    fn number_fast_path_matches_strtod() {
        for text in [
            "0.5",
            "-0.5",
            "4.0",
            "6.0",
            "0.25",
            "-0.125",
            "3.15",
            "123.456",
            "0.1",
            "0.2",
            "0.30000000000001",
            "999999999999999.0",
            "1.5e3",
            "-2.5E-4",
            "1e0",
            "12345678901234567",
            "1.7976931348623157e308",
            "0.000001",
            "42",
            "-42",
            "0",
        ] {
            let v: Value = from_str(text).unwrap();
            let got = match v {
                Value::Number(n) => n.as_f64(),
                other => panic!("expected number for {text:?}, got {other:?}"),
            };
            let want: f64 = text.parse().unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "mismatch parsing {text:?}");
        }
        // integer typing is preserved on the fast path
        assert_eq!(
            from_str::<Value>("7").unwrap(),
            Value::Number(Number::U64(7))
        );
        assert_eq!(
            from_str::<Value>("-7").unwrap(),
            Value::Number(Number::I64(-7))
        );
    }
}
