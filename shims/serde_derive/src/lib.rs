//! Derive macros for the offline `serde` shim.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the type
//! definition is parsed directly from the proc-macro token stream and the
//! trait impls are emitted as source text. Supports the shapes this
//! workspace uses — non-generic named/tuple/unit structs and enums with
//! unit/tuple/struct variants, plus the `#[serde(default)]` field attribute.
//! Anything outside that surface fails loudly at compile time rather than
//! silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- parsed model ---------------------------------------------------------

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    /// Tuple struct with the given arity (1 = newtype, serialized
    /// transparently like real serde).
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(default)]` present.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---- token-stream parsing -------------------------------------------------

fn ident_text(t: &TokenTree) -> String {
    match t {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, found `{other}`"),
    }
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

/// Returns true if the bracket group is a `serde(...)` helper attribute and
/// records whether it contains `default`.
fn inspect_attr(group: &TokenTree, default: &mut bool) {
    let TokenTree::Group(g) = group else {
        panic!("serde shim derive: malformed attribute");
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    if inner.first().map(|t| t.to_string()) != Some("serde".into()) {
        return; // doc comment or unrelated attribute — ignore
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        panic!("serde shim derive: malformed serde attribute");
    };
    for arg in args.stream() {
        match arg {
            TokenTree::Ident(id) if id.to_string() == "default" => *default = true,
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!(
                "serde shim derive: unsupported serde attribute `{other}` — \
                 only #[serde(default)] is implemented"
            ),
        }
    }
}

/// Skip attributes (recording `#[serde(default)]`) and visibility modifiers.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize, default: &mut bool) -> usize {
    loop {
        if is_punct(tokens.get(i), '#') {
            inspect_attr(&tokens[i + 1], default);
            i += 2;
        } else if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        } else {
            return i;
        }
    }
}

/// Parse `name: Type, ...` sequences; types are skipped (the generated code
/// relies on inference from constructor position), tracking `<>` depth so
/// commas inside generics don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        i = skip_attrs_and_vis(&tokens, i, &mut default);
        if i >= tokens.len() {
            break;
        }
        let name = ident_text(&tokens[i]);
        i += 1;
        if !is_punct(tokens.get(i), ':') {
            panic!("serde shim derive: expected `:` after field `{name}`");
        }
        i += 1;
        let mut angle = 0i64;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Count the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i64;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && idx + 1 < tokens.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut unused = false;
        i = skip_attrs_and_vis(&tokens, i, &mut unused);
        if i >= tokens.len() {
            break;
        }
        let name = ident_text(&tokens[i]);
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        if is_punct(tokens.get(i), '=') {
            panic!("serde shim derive: explicit discriminants not supported (variant `{name}`)");
        }
        if is_punct(tokens.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut unused = false;
    let mut i = skip_attrs_and_vis(&tokens, 0, &mut unused);
    let kw = ident_text(&tokens[i]);
    i += 1;
    let name = ident_text(&tokens[i]);
    i += 1;
    if is_punct(tokens.get(i), '<') {
        panic!("serde shim derive: generic type `{name}` not supported");
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Input {
                name,
                kind: Kind::TupleStruct(count_tuple_fields(g.stream())),
            },
            _ => Input {
                name,
                kind: Kind::UnitStruct,
            },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            _ => panic!("serde shim derive: malformed enum `{name}`"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

// ---- code generation ------------------------------------------------------

const V: &str = "::serde::__private::Value";
const MAP: &str = "::serde::__private::Map";
const P: &str = "::serde::__private";

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s = format!("let mut __m = {MAP}::new();\n");
            for f in fields {
                let fname = &f.name;
                s.push_str(&format!(
                    "__m.insert(\"{fname}\", ::serde::Serialize::to_value(&self.{fname}));\n"
                ));
            }
            s.push_str(&format!("{V}::Object(__m)"));
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("{V}::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => format!("{V}::Null"),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => {V}::String(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => {{\n\
                         let mut __m = {MAP}::new();\n\
                         __m.insert(\"{vname}\", ::serde::Serialize::to_value(__f0));\n\
                         {V}::Object(__m)\n}}\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut __m = {MAP}::new();\n\
                             __m.insert(\"{vname}\", {V}::Array(vec![{items}]));\n\
                             {V}::Object(__m)\n}}\n",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = format!("let mut __inner = {MAP}::new();\n");
                        for f in fields {
                            let fname = &f.name;
                            inner.push_str(&format!(
                                "__inner.insert(\"{fname}\", ::serde::Serialize::to_value({fname}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut __m = {MAP}::new();\n\
                             __m.insert(\"{vname}\", {V}::Object(__inner));\n\
                             {V}::Object(__m)\n}}\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> {V} {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_ctor(path: &str, fields: &[Field], obj: &str) -> String {
    let mut s = format!("{path} {{\n");
    for f in fields {
        let fname = &f.name;
        let helper = if f.default {
            "field_or_default"
        } else {
            "field"
        };
        s.push_str(&format!("{fname}: {P}::{helper}({obj}, \"{fname}\")?,\n"));
    }
    s.push('}');
    s
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            format!(
                "let __obj = {P}::expect_object(__v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({})",
                gen_named_ctor(name, fields, "__obj")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("{P}::element(__arr, {i})?"))
                .collect();
            format!(
                "let __arr = {P}::expect_array(__v, \"{name}\", {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            // unit variants arrive as bare strings
            let mut unit_arms = String::new();
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vname = &v.name;
                    unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
            }
            // data variants arrive as single-key objects
            let mut tag_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => tag_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => tag_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("{P}::element(__arr, {i})?"))
                            .collect();
                        tag_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __arr = {P}::expect_array(__inner, \"{name}::{vname}\", {n})?;\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let ctor = gen_named_ctor(&format!("{name}::{vname}"), fields, "__o");
                        tag_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __o = {P}::expect_object(__inner, \"{name}::{vname}\")?;\n\
                             ::std::result::Result::Ok({ctor})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "if let {V}::String(__s) = __v {{\n\
                 return match __s.as_str() {{\n\
                 {unit_arms}\
                 _ => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"unknown variant `{{__s}}` for `{name}`\"))),\n\
                 }};\n\
                 }}\n\
                 let __obj = {P}::expect_object(__v, \"{name}\")?;\n\
                 let (__tag, __inner) = __obj.iter().next().ok_or_else(|| \
                 ::serde::DeError(\"empty object for enum `{name}`\".to_string()))?;\n\
                 match __tag.as_str() {{\n\
                 {tag_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &{V}) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}

// ---- entry points ---------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}
