//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The workspace builds without network access, so external dependencies are
//! vendored as small API-compatible shims. This one wraps `std::sync::Mutex`
//! and exposes the `parking_lot` calling convention: `lock()` returns the
//! guard directly (no poisoning in the API — a poisoned std mutex is
//! recovered transparently, matching parking_lot's poison-free semantics).
//!
//! ## Poison semantics
//!
//! A thread panicking while holding a guard poisons the underlying std lock,
//! but every accessor here recovers the guard with `into_inner`, so **later
//! lockers never panic and never block forever** — a panicking request
//! handler cannot wedge the daemon (its dispatcher additionally wraps pumps
//! in `catch_unwind`). The trade-off is that the protected value is whatever
//! the panicking critical section left behind; that is safe in this codebase
//! because critical sections keep single-field invariants (multi-structure
//! moves hold all the involved locks together, and durable state is
//! journaled and replayable). [`Mutex::is_poisoned`] keeps the event
//! observable for tests and debugging without reintroducing poison
//! propagation.

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex with `parking_lot`'s panic-free `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether a holder has panicked with this lock held. Purely
    /// observational: `lock`/`try_lock` recover poisoned guards and never
    /// fail. (Real parking_lot has no poisoning at all; this reports the
    /// wrapped std lock's flag so panic-while-locked paths stay testable.)
    pub fn is_poisoned(&self) -> bool {
        self.0.is_poisoned()
    }

    /// Reset the poison flag after a recovered panic.
    pub fn clear_poison(&self) {
        self.0.clear_poison()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Whether a writer panicked with this lock held (see [`Mutex::is_poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.0.is_poisoned()
    }

    /// Reset the poison flag after a recovered panic.
    pub fn clear_poison(&self) {
        self.0.clear_poison()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    /// The satellite hazard: a handler panicking with the lock held must not
    /// wedge later lockers — `lock()` recovers the guard, the poison flag
    /// stays observable, and the value reflects the completed writes.
    #[test]
    fn panicking_holder_does_not_wedge_later_lockers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 7;
            panic!("handler blew up with the lock held");
        });
        assert!(t.join().is_err());
        assert!(m.is_poisoned(), "panic with guard held must be observable");
        assert_eq!(*m.lock(), 7, "recovered guard sees the completed write");
        *m.lock() += 1; // and the lock keeps working
        assert_eq!(*m.lock(), 8);
        m.clear_poison();
        assert!(!m.is_poisoned());
    }

    #[test]
    fn panicking_writer_does_not_wedge_rwlock() {
        let l = std::sync::Arc::new(RwLock::new(1));
        let l2 = std::sync::Arc::clone(&l);
        let t = std::thread::spawn(move || {
            let mut g = l2.write();
            *g = 2;
            panic!("writer blew up");
        });
        assert!(t.join().is_err());
        assert!(l.is_poisoned());
        assert_eq!(*l.read(), 2);
        *l.write() = 3;
        assert_eq!(*l.read(), 3);
        l.clear_poison();
        assert!(!l.is_poisoned());
    }

    #[test]
    fn try_lock_recovers_poisoned_guard() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join()
        .unwrap_err();
        assert!(
            m.try_lock().is_some(),
            "poison must not look like contention"
        );
    }
}
