//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The workspace builds without network access, so external dependencies are
//! vendored as small API-compatible shims. This one wraps `std::sync::Mutex`
//! and exposes the `parking_lot` calling convention: `lock()` returns the
//! guard directly (no poisoning in the API — a poisoned std mutex is
//! recovered transparently, matching parking_lot's poison-free semantics).

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex with `parking_lot`'s panic-free `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
