//! Minimal offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark a small, fixed number of iterations and prints
//! mean wall-clock timings — no statistics, warm-up, or HTML reports. The
//! API mirrors the real crate's so `benches/` compiles and `cargo bench`
//! produces useful (if simple) numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints (accepted, ignored — every batch is one element).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark name: `&str`, `String`, or `BenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &String {
    fn into_id(self) -> String {
        self.clone()
    }
}

/// Drives the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(group: Option<&str>, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let iters = sample_size.max(1) as u64;
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / iters as f64;
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    println!(
        "bench {label:<50} {:>12.3} µs/iter ({iters} iters)",
        per_iter * 1e6
    );
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into_id(), self.effective_samples(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(None, &id.id, self.effective_samples(), &mut |b| f(b, input));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into_id(), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.id, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
