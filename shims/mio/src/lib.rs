//! Minimal offline stand-in for the `mio` crate.
//!
//! A readiness-driven poller with the narrow API surface the middleware's
//! event-loop HTTP server uses: [`Poll`] / [`Registry`] for interest
//! registration, [`Events`] iteration, and a cross-thread [`Waker`]. On
//! Linux (x86_64 / aarch64) this is genuine **epoll**, reached through raw
//! syscalls — the offline workspace has no `libc` crate, so the four
//! syscalls involved (`epoll_create1`, `epoll_ctl`, `epoll_wait`/`_pwait`,
//! `eventfd2`) are issued with stable inline assembly. Everything is
//! level-triggered except the waker's eventfd (edge-triggered, like real
//! mio, so it never needs draining).
//!
//! On other platforms a correctness-preserving fallback reports every
//! registered descriptor as ready after a short bounded wait: callers'
//! non-blocking reads/writes then simply return `WouldBlock`. Spurious
//! readiness is explicitly allowed by the mio contract, so event-loop code
//! stays correct, just less efficient — the deployment target (a quantum
//! access node) is Linux.
//!
//! Divergences from upstream mio, documented per shims/README.md: sources
//! are any `&impl AsRawFd` (no `event::Source` trait, `&` not `&mut`), and
//! `Interest` is a plain bitset with `READABLE`/`WRITABLE`.

use std::io;
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::Duration;

/// Identifies a registered event source in [`Events`] delivered by [`Poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    pub const READABLE: Interest = Interest(0b01);
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combine two interests (mio's `Interest::add`).
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

pub mod event {
    //! Readiness events delivered by [`Poll::poll`](crate::Poll::poll).

    use crate::Token;

    /// One readiness notification.
    #[derive(Debug, Clone, Copy)]
    pub struct Event {
        pub(crate) token: usize,
        pub(crate) readable: bool,
        pub(crate) writable: bool,
        pub(crate) error: bool,
        pub(crate) read_closed: bool,
    }

    impl Event {
        pub fn token(&self) -> Token {
            Token(self.token)
        }

        /// Readable — includes error/hangup conditions so a non-blocking
        /// read observes the close, matching how mio callers use it.
        pub fn is_readable(&self) -> bool {
            self.readable || self.error || self.read_closed
        }

        pub fn is_writable(&self) -> bool {
            self.writable || self.error
        }

        pub fn is_error(&self) -> bool {
            self.error
        }

        /// The peer closed its write half (or the connection is gone).
        pub fn is_read_closed(&self) -> bool {
            self.read_closed
        }
    }
}

/// A buffer of readiness events, filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    inner: Vec<event::Event>,
    capacity: usize,
}

impl Events {
    /// Holds at most `capacity` events per poll call.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, event::Event> {
        self.inner.iter()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a event::Event;
    type IntoIter = std::slice::Iter<'a, event::Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// The poller: owns the OS selector; [`Registry`] handles registration.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                selector: Arc::new(sys::Selector::new()?),
            },
        })
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Block until at least one event is ready, `timeout` elapses
    /// (`None` = forever), or a [`Waker`] fires.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        let cap = events.capacity;
        self.registry
            .selector
            .select(&mut events.inner, cap, timeout)
    }
}

/// Registration handle, cloneable across threads (shares the selector).
#[derive(Debug, Clone)]
pub struct Registry {
    selector: Arc<sys::Selector>,
}

impl Registry {
    /// Start polling `source` for `interests` under `token`.
    /// Level-triggered; the source should already be non-blocking.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.selector.register(source.as_raw_fd(), token, interests)
    }

    /// Replace the interest set for an already-registered `source`.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.selector
            .reregister(source.as_raw_fd(), token, interests)
    }

    /// Stop polling `source`.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.selector.deregister(source.as_raw_fd())
    }
}

/// Cross-thread wakeup: `wake()` makes the owning [`Poll`] return with an
/// event carrying the waker's token, even if no I/O is ready.
#[derive(Debug)]
pub struct Waker {
    inner: sys::WakerImpl,
}

impl Waker {
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        Ok(Waker {
            inner: sys::WakerImpl::new(&registry.selector, token)?,
        })
    }

    pub fn wake(&self) -> io::Result<()> {
        self.inner.wake()
    }
}

// ---------------------------------------------------------------------------
// SO_REUSEPORT listener sockets (sharded accept).
// ---------------------------------------------------------------------------
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub mod net {
    //! `SO_REUSEPORT` TCP listeners for sharded event loops.
    //!
    //! With `SO_REUSEPORT`, N sockets bind the *same* address and the
    //! kernel hash-balances incoming connections across them — the standard
    //! way to run one accept queue per event-loop thread with zero
    //! cross-thread handoff. `std::net::TcpListener` cannot set socket
    //! options before `bind`, and the offline workspace has no `libc`/
    //! `socket2`, so the five syscalls involved are issued raw (same
    //! technique as the epoll selector above).

    use std::io;
    use std::net::TcpListener;
    use std::os::fd::{FromRawFd, RawFd};

    const AF_INET: usize = 2;
    const SOCK_STREAM: usize = 1;
    const SOCK_CLOEXEC: usize = 0o2000000;
    const SOL_SOCKET: usize = 1;
    const SO_REUSEADDR: usize = 2;
    const SO_REUSEPORT: usize = 15;
    const BACKLOG: usize = 1024;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const SOCKET: usize = 41;
        pub const BIND: usize = 49;
        pub const LISTEN: usize = 50;
        pub const SETSOCKOPT: usize = 54;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const SOCKET: usize = 198;
        pub const BIND: usize = 200;
        pub const LISTEN: usize = 201;
        pub const SETSOCKOPT: usize = 208;
    }

    /// Raw syscall (5 args — `setsockopt` needs all five), kernel `-errno`
    /// convention unchanged.
    ///
    /// # Safety
    /// Arguments must be valid for the requested syscall.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall5(n: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// # Safety
    /// Arguments must be valid for the requested syscall.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall5(n: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") 0_usize,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// Kernel `struct sockaddr_in`: family (host order), port and address
    /// (network order), 8 bytes of zero padding.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    impl SockaddrIn {
        fn loopback(port: u16) -> SockaddrIn {
            SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: port.to_be(),
                sin_addr: u32::from_be_bytes([127, 0, 0, 1]).to_be(),
                sin_zero: [0; 8],
            }
        }
    }

    /// Whether `SO_REUSEPORT` sharding is available on this target.
    pub fn reuseport_supported() -> bool {
        true
    }

    /// Bind a `SO_REUSEPORT` TCP listener on `127.0.0.1:port` (0 = pick an
    /// ephemeral port; read the result back with `local_addr()`). Multiple
    /// listeners bound this way to the same port each get their own kernel
    /// accept queue, hash-balanced across them.
    pub fn bind_reuseport(port: u16) -> io::Result<TcpListener> {
        let fd =
            check(unsafe { syscall5(nr::SOCKET, AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0, 0, 0) })?
                as RawFd;
        // from_raw_fd immediately so an error below closes the socket
        let listener = unsafe { TcpListener::from_raw_fd(fd) };
        let one: u32 = 1;
        let optval = &one as *const u32 as usize;
        for opt in [SO_REUSEADDR, SO_REUSEPORT] {
            check(unsafe { syscall5(nr::SETSOCKOPT, fd as usize, SOL_SOCKET, opt, optval, 4) })?;
        }
        let addr = SockaddrIn::loopback(port);
        check(unsafe {
            syscall5(
                nr::BIND,
                fd as usize,
                &addr as *const SockaddrIn as usize,
                core::mem::size_of::<SockaddrIn>(),
                0,
                0,
            )
        })?;
        check(unsafe { syscall5(nr::LISTEN, fd as usize, BACKLOG, 0, 0, 0) })?;
        Ok(listener)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub mod net {
    //! Portable fallback: no `SO_REUSEPORT` — only one listener can hold a
    //! port, so servers degrade to a single accept shard.

    use std::io;
    use std::net::TcpListener;

    pub fn reuseport_supported() -> bool {
        false
    }

    /// Plain bind; callers must not ask for a second listener on the same
    /// port (the OS will refuse).
    pub fn bind_reuseport(port: u16) -> io::Result<TcpListener> {
        TcpListener::bind(("127.0.0.1", port))
    }
}

// ---------------------------------------------------------------------------
// Linux: real epoll via raw syscalls (no libc in the offline workspace).
// ---------------------------------------------------------------------------
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::{event::Event, Interest, Token};
    use std::fs::File;
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::sync::Arc;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLPRI: u32 = 0x002;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;

    const EPOLL_CLOEXEC: usize = 0o2000000;
    const EFD_CLOEXEC: usize = 0o2000000;
    const EFD_NONBLOCK: usize = 0o4000;

    const EINTR: isize = -4;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 291;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_WAIT: usize = 232;
        pub const EVENTFD2: usize = 290;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EVENTFD2: usize = 19;
    }

    /// Raw syscall, returning the kernel's `-errno` convention unchanged.
    ///
    /// # Safety
    /// Arguments must be valid for the requested syscall.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// # Safety
    /// Arguments must be valid for the requested syscall.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") 0_usize,
            in("x5") 0_usize,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// Kernel `struct epoll_event`: packed on x86_64, naturally aligned on
    /// aarch64 — matching the ABI exactly is what makes the raw syscalls
    /// sound.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[derive(Debug)]
    pub(crate) struct Selector {
        epfd: OwnedFd,
    }

    impl Selector {
        pub(crate) fn new() -> io::Result<Selector> {
            let fd = check(unsafe { syscall(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
            Ok(Selector {
                epfd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
            })
        }

        fn ctl(&self, op: usize, fd: RawFd, events: u32, token: usize) -> io::Result<()> {
            let ev = EpollEvent {
                events,
                data: token as u64,
            };
            let ptr = if op == EPOLL_CTL_DEL {
                0
            } else {
                &ev as *const EpollEvent as usize
            };
            check(unsafe {
                syscall(
                    nr::EPOLL_CTL,
                    self.epfd.as_raw_fd() as usize,
                    op,
                    fd as usize,
                    ptr,
                )
            })
            .map(|_| ())
        }

        fn interest_bits(interests: Interest) -> u32 {
            let mut bits = EPOLLRDHUP;
            if interests.is_readable() {
                bits |= EPOLLIN | EPOLLPRI;
            }
            if interests.is_writable() {
                bits |= EPOLLOUT;
            }
            bits
        }

        pub(crate) fn register(&self, fd: RawFd, token: Token, i: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Self::interest_bits(i), token.0)
        }

        pub(crate) fn reregister(&self, fd: RawFd, token: Token, i: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Self::interest_bits(i), token.0)
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Register an edge-triggered readable source (the waker eventfd).
        fn register_et(&self, fd: RawFd, token: Token) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, EPOLLIN | EPOLLET, token.0)
        }

        pub(crate) fn select(
            &self,
            out: &mut Vec<Event>,
            cap: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms: isize = match timeout {
                None => -1,
                // round sub-millisecond timeouts up so short deadlines
                // don't degenerate into a zero-timeout busy loop
                Some(d) => (d.as_millis() as isize)
                    .max(if d.is_zero() { 0 } else { 1 })
                    .min(i32::MAX as isize),
            };
            let mut buf = vec![EpollEvent { events: 0, data: 0 }; cap];
            let n = loop {
                #[cfg(target_arch = "x86_64")]
                let ret = unsafe {
                    syscall(
                        nr::EPOLL_WAIT,
                        self.epfd.as_raw_fd() as usize,
                        buf.as_mut_ptr() as usize,
                        cap,
                        timeout_ms as usize,
                    )
                };
                #[cfg(target_arch = "aarch64")]
                let ret = unsafe {
                    // epoll_pwait with a null sigmask == epoll_wait
                    syscall(
                        nr::EPOLL_PWAIT,
                        self.epfd.as_raw_fd() as usize,
                        buf.as_mut_ptr() as usize,
                        cap,
                        timeout_ms as usize,
                    )
                };
                if ret == EINTR {
                    continue;
                }
                break check(ret)?;
            };
            for ev in buf.iter().take(n) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data as usize,
                    readable: bits & (EPOLLIN | EPOLLPRI) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & EPOLLERR != 0,
                    read_closed: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    #[derive(Debug)]
    pub(crate) struct WakerImpl {
        eventfd: File,
    }

    impl WakerImpl {
        pub(crate) fn new(selector: &Arc<Selector>, token: Token) -> io::Result<WakerImpl> {
            let fd = check(unsafe { syscall(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0) })?;
            let eventfd = unsafe { File::from_raw_fd(fd as RawFd) };
            selector.register_et(eventfd.as_raw_fd(), token)?;
            Ok(WakerImpl { eventfd })
        }

        pub(crate) fn wake(&self) -> io::Result<()> {
            match (&self.eventfd).write_all(&1u64.to_ne_bytes()) {
                Ok(()) => Ok(()),
                // counter saturated: drain and re-signal
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    let mut buf = [0u8; 8];
                    let _ = (&self.eventfd).read(&mut buf);
                    (&self.eventfd).write_all(&1u64.to_ne_bytes())
                }
                Err(e) => Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Portable fallback: bounded wait, then report every registered fd ready.
// ---------------------------------------------------------------------------
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::{event::Event, Interest, Token};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    #[derive(Debug, Default)]
    struct State {
        table: HashMap<RawFd, (usize, Interest)>,
        pending_wakes: Vec<usize>,
    }

    #[derive(Debug)]
    pub(crate) struct Selector {
        state: Mutex<State>,
        cv: Condvar,
    }

    impl Selector {
        pub(crate) fn new() -> io::Result<Selector> {
            Ok(Selector {
                state: Mutex::new(State::default()),
                cv: Condvar::new(),
            })
        }

        pub(crate) fn register(&self, fd: RawFd, token: Token, i: Interest) -> io::Result<()> {
            self.state.lock().unwrap().table.insert(fd, (token.0, i));
            Ok(())
        }

        pub(crate) fn reregister(&self, fd: RawFd, token: Token, i: Interest) -> io::Result<()> {
            self.register(fd, token, i)
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.state.lock().unwrap().table.remove(&fd);
            Ok(())
        }

        pub(crate) fn select(
            &self,
            out: &mut Vec<Event>,
            cap: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            // Bounded nap so the spurious-readiness sweep cannot spin hot;
            // a waker cuts the nap short through the condvar.
            let nap = timeout
                .unwrap_or(Duration::from_millis(2))
                .min(Duration::from_millis(2));
            let mut st = self.state.lock().unwrap();
            if st.pending_wakes.is_empty() && !nap.is_zero() {
                let (guard, _) = self.cv.wait_timeout(st, nap).unwrap();
                st = guard;
            }
            for token in st.pending_wakes.drain(..) {
                if out.len() >= cap {
                    break;
                }
                out.push(Event {
                    token,
                    readable: true,
                    writable: false,
                    error: false,
                    read_closed: false,
                });
            }
            for (_, &(token, interest)) in st.table.iter() {
                if out.len() >= cap {
                    break;
                }
                out.push(Event {
                    token,
                    readable: interest.is_readable(),
                    writable: interest.is_writable(),
                    error: false,
                    read_closed: false,
                });
            }
            Ok(())
        }
    }

    #[derive(Debug)]
    pub(crate) struct WakerImpl {
        selector: Arc<Selector>,
        token: usize,
    }

    impl WakerImpl {
        pub(crate) fn new(selector: &Arc<Selector>, token: Token) -> io::Result<WakerImpl> {
            Ok(WakerImpl {
                selector: Arc::clone(selector),
                token: token.0,
            })
        }

        pub(crate) fn wake(&self) -> io::Result<()> {
            self.selector
                .state
                .lock()
                .unwrap()
                .pending_wakes
                .push(self.token);
            self.selector.cv.notify_all();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&listener, Token(7), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);

        // nothing pending: a short poll returns without events
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(
            events
                .iter()
                .all(|e| e.token() != Token(7) || !e.is_readable())
                || events.is_empty()
        );

        let _client = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw = false;
        while Instant::now() < deadline && !saw {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            saw = events
                .iter()
                .any(|e| e.token() == Token(7) && e.is_readable());
        }
        assert!(saw, "listener never signalled readable");
        let (stream, _) = listener.accept().unwrap();
        drop(stream);
    }

    #[test]
    fn stream_readable_when_data_arrives_and_writable_when_registered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(
                &server_side,
                Token(1),
                Interest::READABLE | Interest::WRITABLE,
            )
            .unwrap();
        let mut events = Events::with_capacity(8);

        // a fresh connected socket is writable
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut writable = false;
        while Instant::now() < deadline && !writable {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            writable = events
                .iter()
                .any(|e| e.token() == Token(1) && e.is_writable());
        }
        assert!(writable);

        client.write_all(b"ping").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut readable = false;
        while Instant::now() < deadline && !readable {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            readable = events
                .iter()
                .any(|e| e.token() == Token(1) && e.is_readable());
        }
        assert!(readable);
        let mut s = server_side;
        let mut buf = [0u8; 16];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let mut poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(poll.registry(), Token(99)).unwrap());
        let w = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake().unwrap();
        });
        let mut events = Events::with_capacity(4);
        let t0 = Instant::now();
        // would block for 10 s without the waker
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "poll did not wake early"
        );
        handle.join().unwrap();
    }

    #[test]
    fn deregistered_source_stops_reporting() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&listener, Token(3), Interest::READABLE)
            .unwrap();
        poll.registry().deregister(&listener).unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        assert!(
            !events.iter().any(|e| e.token() == Token(3)),
            "deregistered fd still reported"
        );
    }

    #[test]
    fn interest_combinators() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
        assert_eq!(both, Interest::READABLE.add(Interest::WRITABLE));
    }
}
