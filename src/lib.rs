//! # hpcqc — a user-centric HPC-QC environment
//!
//! Meta-crate re-exporting the whole stack. See the individual crates:
//!
//! * [`program`] — analog neutral-atom program IR
//! * [`analysis`] — static-analysis passes and lints over the IR
//! * [`emulator`] — state-vector and MPS emulators
//! * [`qpu`] — virtual QPU with calibration drift
//! * [`qrmi`] — Quantum Resource Management Interface
//! * [`scheduler`] — Slurm-like batch scheduler simulator
//! * [`middleware`] — session/priority middleware daemon with REST API
//! * [`telemetry`] — Prometheus-style observability stack
//! * [`sdk`] — multi-SDK front-ends
//! * [`core`] — the portable hybrid runtime environment
//! * [`workloads`] — hybrid workload generators and algorithms

pub use hpcqc_analysis as analysis;
pub use hpcqc_core as core;
pub use hpcqc_emulator as emulator;
pub use hpcqc_middleware as middleware;
pub use hpcqc_program as program;
pub use hpcqc_qpu as qpu;
pub use hpcqc_qrmi as qrmi;
pub use hpcqc_scheduler as scheduler;
pub use hpcqc_sdk as sdk;
pub use hpcqc_telemetry as telemetry;
pub use hpcqc_workloads as workloads;
