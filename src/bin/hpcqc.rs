//! `hpcqc` — the user-facing command-line client.
//!
//! Programs are written in the text SDK format (see `hpcqc-sdk::text`) and
//! run either locally through the runtime (`run --qpu <resource>`) or via a
//! middleware daemon session (`run --daemon host:port`). The same file works
//! in both modes — the CLI is the `--qpu=<resource>` switch of §3.2 in
//! executable form.
//!
//! ```text
//! hpcqc target  [--daemon ADDR]               show the live device spec
//! hpcqc run FILE [--qpu RES | --daemon ADDR]  execute a program
//!           [--user NAME] [--class production|test|development]
//!           [--hint qc-heavy|cc-heavy|qc-balanced] [--shots N]
//! hpcqc validate FILE [--qpu RES]             validate without running
//! hpcqc metrics [--daemon ADDR]               scrape the daemon metrics
//! hpcqc resources                             list configured resources
//! ```

use hpcqc::core::{DaemonClient, Runtime, RuntimeConfig};
use hpcqc::middleware::PriorityClass;
use hpcqc::program::ProgramIr;
use hpcqc::scheduler::PatternHint;
use hpcqc::sdk::parse_program;
use std::collections::BTreeMap;

struct Args {
    command: String,
    positional: Vec<String>,
    options: BTreeMap<String, String>,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".into());
    let mut positional = Vec::new();
    let mut options = BTreeMap::new();
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        if let Some(key) = a.strip_prefix("--") {
            let value = argv.next().unwrap_or_default();
            options.insert(key.to_string(), value);
        } else {
            positional.push(a);
        }
    }
    Args {
        command,
        positional,
        options,
    }
}

fn daemon_addr(args: &Args) -> String {
    args.options
        .get("daemon")
        .cloned()
        .or_else(|| std::env::var("HPCQC_DAEMON").ok())
        .unwrap_or_else(|| "127.0.0.1:7777".into())
}

fn load_program(args: &Args) -> Result<ProgramIr, Box<dyn std::error::Error>> {
    let path = args
        .positional
        .first()
        .ok_or("missing program file argument")?;
    let text = std::fs::read_to_string(path)?;
    let mut ir = parse_program(&text)?;
    if let Some(shots) = args.options.get("shots") {
        ir.shots = shots.parse()?;
    }
    Ok(ir)
}

fn local_runtime(args: &Args) -> Result<Runtime, Box<dyn std::error::Error>> {
    let env: BTreeMap<String, String> = std::env::vars().collect();
    let config = RuntimeConfig::from_map(&env)?;
    let rt = config.build_runtime(0x5eed, vec![])?;
    Ok(match args.options.get("qpu") {
        Some(sel) => rt.with_qpu(sel.clone()),
        None => rt,
    })
}

fn print_result(result: &hpcqc::emulator::SampleResult) {
    println!(
        "{} shots on {} ({} distinct outcomes, {:.1}s device time)",
        result.shots,
        result.backend,
        result.counts.len(),
        result.execution_secs
    );
    println!("mean excitations/shot: {:.3}", result.mean_excitations());
    println!("top outcomes:");
    for (bits, count) in result.top_k(8) {
        println!("  {}  x{count}", result.format_bitstring(bits));
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let ir = load_program(args)?;
    if args.options.contains_key("daemon") || std::env::var("HPCQC_DAEMON").is_ok() {
        let user = args.options.get("user").cloned().unwrap_or_else(whoami);
        let class = args
            .options
            .get("class")
            .map(|c| PriorityClass::parse(c).ok_or(format!("bad class {c:?}")))
            .transpose()?
            .unwrap_or(PriorityClass::Development);
        let hint = args
            .options
            .get("hint")
            .map(|h| PatternHint::parse(h).ok_or(format!("bad hint {h:?}")))
            .transpose()?
            .unwrap_or(PatternHint::None);
        let mut client = DaemonClient::new(daemon_addr(args));
        client.pump_on_poll = false; // hpcqcd runs its own dispatcher
        let session = client.open_session(&user, class)?;
        println!(
            "session {} ({user}/{}) on {}",
            session.token,
            class.as_str(),
            daemon_addr(args)
        );
        let result = session.run(&ir, hint)?;
        print_result(&result);
        session.close()?;
    } else {
        let rt = local_runtime(args)?;
        let report = rt.run(&ir)?;
        println!(
            "resource {} (spec rev {}), fingerprint {:#018x}",
            report.resource_id, report.spec_revision, report.program_fingerprint
        );
        print_result(&report.result);
    }
    Ok(())
}

fn whoami() -> String {
    std::env::var("USER").unwrap_or_else(|_| "anonymous".into())
}

fn main() {
    let args = parse_args();
    let outcome: Result<(), Box<dyn std::error::Error>> = match args.command.as_str() {
        "run" => run(&args),
        "validate" => (|| {
            let ir = load_program(&args)?;
            let rt = local_runtime(&args)?;
            match rt.validate(&ir) {
                Ok(spec) => {
                    println!(
                        "OK: fits {} (spec rev {}), {} qubits, {:.2} µs",
                        spec.name,
                        spec.revision,
                        ir.sequence.num_qubits(),
                        ir.sequence.duration()
                    );
                    Ok(())
                }
                Err(e) => Err(e.into()),
            }
        })(),
        "target" => (|| {
            if args.options.contains_key("daemon") || std::env::var("HPCQC_DAEMON").is_ok() {
                let spec = DaemonClient::new(daemon_addr(&args)).target()?;
                println!("{}", serde_json::to_string_pretty(&spec)?);
            } else {
                let spec = local_runtime(&args)?.target()?;
                println!("{}", serde_json::to_string_pretty(&spec)?);
            }
            Ok(())
        })(),
        "metrics" => (|| {
            print!("{}", DaemonClient::new(daemon_addr(&args)).metrics()?);
            Ok(())
        })(),
        "resources" => (|| {
            for id in local_runtime(&args)?.available_resources() {
                println!("{id}");
            }
            Ok(())
        })(),
        _ => {
            eprintln!(
                "usage: hpcqc <run|validate|target|metrics|resources> [FILE] \
                 [--qpu RES] [--daemon ADDR] [--user U] [--class C] [--hint H] [--shots N]"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = outcome {
        eprintln!("hpcqc: {e}");
        std::process::exit(1);
    }
}
