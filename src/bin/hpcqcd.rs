//! `hpcqcd` — the middleware daemon as a standalone service.
//!
//! The deployable form of the paper's §3.3 component: reads QRMI
//! configuration from the environment, fronts the configured resource
//! (creating virtual QPUs for `qpu:*` resources), serves the REST API on
//! `HPCQCD_PORT` (default 7777) and runs a background dispatcher.
//!
//! ```text
//! QRMI_RESOURCES=fresnel-1 QRMI_DEFAULT_RESOURCE=fresnel-1 \
//! QRMI_RESOURCE_FRESNEL_1_TYPE=qpu:direct \
//! HPCQCD_PORT=7777 cargo run --release --bin hpcqcd
//! ```
//!
//! With no QRMI variables set it fronts a virtual QPU named `fresnel-1` —
//! the zero-setup way to try the multi-user stack:
//! `cargo run --bin hpcqcd` then `cargo run --bin hpcqc -- target`.

use hpcqc::middleware::rest::serve_on;
use hpcqc::middleware::{DaemonConfig, MiddlewareService};
use hpcqc::qpu::VirtualQpu;
use hpcqc::qrmi::{QrmiConfig, ResourceConfig, ResourceFactory, ResourceType};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn default_config() -> QrmiConfig {
    QrmiConfig {
        resources: vec![ResourceConfig {
            id: "fresnel-1".into(),
            rtype: ResourceType::QpuDirect,
            params: [("device".to_string(), "fresnel-1".to_string())].into(),
        }],
        default_resource: Some("fresnel-1".into()),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env: BTreeMap<String, String> = std::env::vars().collect();
    let cfg = if env.contains_key("QRMI_RESOURCES") {
        QrmiConfig::from_map(&env)?
    } else {
        eprintln!("hpcqcd: no QRMI_RESOURCES set; fronting a virtual QPU `fresnel-1`");
        default_config()
    };

    // create a virtual device for every qpu-typed resource
    let seed: u64 = env
        .get("HPCQCD_SEED")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xda3);
    let mut factory = ResourceFactory::new(seed);
    let mut admin_qpu: Option<VirtualQpu> = None;
    for rc in &cfg.resources {
        if matches!(rc.rtype, ResourceType::QpuDirect | ResourceType::QpuCloud) {
            let device = rc
                .params
                .get("device")
                .cloned()
                .unwrap_or_else(|| rc.id.clone());
            let qpu = VirtualQpu::new(&device, seed ^ 0x51);
            if admin_qpu.is_none() {
                admin_qpu = Some(qpu.clone());
            }
            factory = factory.with_qpu(device, qpu);
        }
    }
    let registry = factory.build_registry(&cfg)?;
    let front = cfg
        .default_resource
        .clone()
        .ok_or("QRMI_DEFAULT_RESOURCE must name the resource the daemon fronts")?;
    let resource = registry
        .get(&front)
        .ok_or_else(|| format!("default resource {front:?} not configured"))?;

    let mut service = MiddlewareService::new(resource, DaemonConfig::default());
    if let Some(qpu) = admin_qpu {
        service = service.with_qpu_admin(qpu);
    }
    let service = Arc::new(service);
    let _dispatcher = service.spawn_dispatcher(Duration::from_millis(20));

    let port: u16 = env
        .get("HPCQCD_PORT")
        .and_then(|s| s.parse().ok())
        .unwrap_or(7777);
    let server = serve_on(Arc::clone(&service), port)?;
    println!(
        "hpcqcd: fronting {front:?}, REST on http://{}",
        server.addr()
    );
    println!("hpcqcd: dispatcher running; Ctrl-C to stop");
    loop {
        std::thread::park();
    }
}
