//! Integration: the Figure-1 portability guarantees across crates.
//!
//! One program, many execution environments; multiple SDKs, one IR; the
//! mock backend as a drift-safe validation target.

use hpcqc::core::{Runtime, RuntimeError};
use hpcqc::emulator::{Emulator, SvBackend};
use hpcqc::program::{ProgramIr, Register};
use hpcqc::qpu::VirtualQpu;
use hpcqc::qrmi::{QrmiConfig, ResourceConfig, ResourceFactory, ResourceType};
use hpcqc::sdk::{parse_program, AnalogProgram, Circuit, Gate};

fn full_registry() -> Runtime {
    let resources = vec![
        ResourceConfig {
            id: "emu-sv".into(),
            rtype: ResourceType::EmulatorLocal,
            params: [("backend".to_string(), "emu-sv".to_string())].into(),
        },
        ResourceConfig {
            id: "emu-mps".into(),
            rtype: ResourceType::EmulatorLocal,
            params: [
                ("backend".to_string(), "emu-mps".to_string()),
                ("chi".to_string(), "16".to_string()),
            ]
            .into(),
        },
        ResourceConfig {
            id: "mock".into(),
            rtype: ResourceType::EmulatorLocal,
            params: [("backend".to_string(), "emu-mps-mock".to_string())].into(),
        },
        ResourceConfig {
            id: "qpu".into(),
            rtype: ResourceType::QpuDirect,
            params: [("device".to_string(), "fresnel-1".to_string())].into(),
        },
        ResourceConfig {
            id: "cloud".into(),
            rtype: ResourceType::EmulatorCloud,
            params: [
                ("backend".to_string(), "emu-sv".to_string()),
                ("queue_polls".to_string(), "2".to_string()),
            ]
            .into(),
        },
    ];
    let cfg = QrmiConfig {
        resources,
        default_resource: Some("emu-sv".into()),
    };
    let registry = ResourceFactory::new(31)
        .with_qpu("fresnel-1", VirtualQpu::new("fresnel-1", 8))
        .build_registry(&cfg)
        .unwrap();
    Runtime::new(registry)
}

fn blockade_program(shots: u32) -> ProgramIr {
    let reg = Register::linear(4, 6.0).unwrap();
    AnalogProgram::on(reg)
        .adiabatic_sweep(2.0, 6.0, -10.0, 10.0)
        .to_ir(shots)
        .unwrap()
}

#[test]
fn same_program_statistically_consistent_across_backends() {
    let rt = full_registry();
    let program = blockade_program(1500);
    let runs = rt.run_everywhere(&program, &["emu-sv", "emu-mps", "qpu", "cloud"]);
    let reference = runs[0].1.as_ref().unwrap().result.clone();
    for (id, run) in &runs[1..] {
        let res = &run.as_ref().unwrap_or_else(|e| panic!("{id}: {e}")).result;
        let tv = reference.total_variation_distance(res);
        // emulators agree to shot noise; the QPU adds SPAM + calibration error
        let bound = if id == "qpu" { 0.25 } else { 0.1 };
        assert!(tv < bound, "{id}: TV={tv}");
        // the physical observable agrees more tightly everywhere
        assert!(
            (reference.mean_excitations() - res.mean_excitations()).abs() < 0.3,
            "{id}: excitations {} vs {}",
            res.mean_excitations(),
            reference.mean_excitations()
        );
    }
}

#[test]
fn mock_catches_hardware_violations_the_emulator_would_hide() {
    let rt = full_registry();
    // 3 µm spacing: fine for a generic emulator, illegal on hardware
    let reg = Register::linear(4, 3.0).unwrap();
    let program = AnalogProgram::on(reg)
        .resonant_pulse(0.5, 4.0)
        .to_ir(100)
        .unwrap();
    assert!(rt.run(&program).is_ok(), "permissive emulator accepts");
    let rt_mock = full_registry().with_qpu("mock");
    match rt_mock.run(&program) {
        Err(RuntimeError::Validation(v)) => assert!(!v.is_empty()),
        other => panic!("mock must reject hardware-invalid programs, got {other:?}"),
    }
    let rt_qpu = full_registry().with_qpu("qpu");
    assert!(
        matches!(rt_qpu.run(&program), Err(RuntimeError::Validation(_))),
        "and the mock verdict matches the real device's"
    );
}

#[test]
fn analog_and_text_sdks_produce_equivalent_programs() {
    // the same physical schedule written in two SDKs
    let reg = Register::linear(3, 6.0).unwrap();
    let from_analog = AnalogProgram::on(reg)
        .pulse(1.0, 5.0, -2.0, 0.0)
        .pulse(0.5, 3.0, 2.0, 0.0)
        .to_ir(800)
        .unwrap();
    let from_text = parse_program(
        "register linear 3 6.0\n\
         pulse duration=1.0 omega=5 delta=-2\n\
         pulse duration=0.5 omega=3 delta=2\n\
         shots 800\n",
    )
    .unwrap();
    assert_ne!(from_analog.sdk, from_text.sdk, "distinct SDK provenance");

    let rt = full_registry();
    let a = rt.run(&from_analog).unwrap().result;
    let b = rt.run(&from_text).unwrap().result;
    let tv = a.total_variation_distance(&b);
    assert!(tv < 0.08, "SDKs must agree physically: TV={tv}");
}

#[test]
fn circuit_sdk_lowers_through_the_same_runtime() {
    let mut circuit = Circuit::new(2);
    circuit.push(Gate::GlobalRx(std::f64::consts::PI)).unwrap();
    // far-separated atoms: no blockade, so the gate-model prediction holds
    let reg = Register::linear(2, 60.0).unwrap();
    let lowered = circuit.lower(&reg, 400).unwrap();
    // but 60 µm separation exceeds the production field of view: the QPU
    // rejects it while the emulator accepts — honest capability reporting
    let rt = full_registry();
    let emu = rt.run(&lowered).unwrap().result;
    assert!(emu.occupation(0) > 0.98 && emu.occupation(1) > 0.98);
    let native = circuit.simulate(400, 9).unwrap();
    assert!(emu.total_variation_distance(&native) < 0.05);
}

#[test]
fn provenance_survives_the_whole_path() {
    let rt = full_registry();
    let program = blockade_program(50);
    let report = rt.run(&program).unwrap();
    assert_eq!(report.program_fingerprint, program.fingerprint());
    assert_eq!(report.resource_id, "emu-sv");
    assert_eq!(report.spec_revision, 1);
    // identical rerun is identical (seeded stack)
    let report2 = full_registry().run(&program).unwrap();
    assert_eq!(report.result, report2.result);
}

#[test]
fn chi_convergence_toward_exact() {
    // χ=2 must be farther from the exact distribution than χ=16 on an
    // entangling sweep
    let reg = Register::linear(5, 6.0).unwrap();
    let ir = AnalogProgram::on(reg)
        .adiabatic_sweep(1.6, 6.0, -10.0, 10.0)
        .to_ir(1500)
        .unwrap();
    let exact = SvBackend::default().run(&ir, 3).unwrap();
    let chi = |c: usize| {
        use hpcqc::emulator::{MpsBackend, MpsConfig};
        MpsBackend {
            config: MpsConfig {
                chi_max: c,
                max_dt: 2e-3,
                ..MpsConfig::default()
            },
            ..MpsBackend::default()
        }
        .run(&ir, 4)
        .unwrap()
    };
    let tv2 = exact.total_variation_distance(&chi(2));
    let tv16 = exact.total_variation_distance(&chi(16));
    assert!(
        tv16 < tv2,
        "χ=16 (TV={tv16:.4}) must beat χ=2 (TV={tv2:.4})"
    );
    assert!(tv16 < 0.08, "χ=16 is near shot noise: {tv16}");
}
