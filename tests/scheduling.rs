//! Integration: the Table-1 scheduling claims, asserted.
//!
//! The co-simulation and the batch simulator together must reproduce the
//! taxonomy's scheduler hints as measurable orderings, robustly across
//! seeds — this is the repository's executable form of Table 1.

use hpcqc::middleware::{AdmissionPolicy, Cosim, CosimConfig, CosimReport, QpuPolicy};
use hpcqc::scheduler::{standard_partitions, Cluster, JobState, SchedPolicy, SlurmSim};
use hpcqc::workloads::{generate_population, to_batch_spec, PatternGenConfig};

fn run(mix: (f64, f64, f64), admission: AdmissionPolicy, qpu: QpuPolicy, seed: u64) -> CosimReport {
    let jobs = generate_population(
        60,
        mix,
        &PatternGenConfig {
            mean_interarrival_secs: 30.0,
            ..PatternGenConfig::default()
        },
        seed,
    );
    Cosim::new(
        CosimConfig {
            nodes: 32,
            admission,
            qpu_policy: qpu,
            chunk_secs: 10.0,
        },
        jobs,
    )
    .run()
}

const SEEDS: [u64; 3] = [11, 22, 33];

#[test]
fn pattern_b_interleaving_rescues_qpu_utilization() {
    for seed in SEEDS {
        let seq = run(
            (0.0, 1.0, 0.0),
            AdmissionPolicy::Sequential,
            QpuPolicy::Fifo,
            seed,
        );
        let inter = run(
            (0.0, 1.0, 0.0),
            AdmissionPolicy::NodeLimited,
            QpuPolicy::Priority { preemption: true },
            seed,
        );
        assert!(
            inter.qpu_utilization > 3.0 * seq.qpu_utilization,
            "seed {seed}: interleave {:.3} vs sequential {:.3}",
            inter.qpu_utilization,
            seq.qpu_utilization
        );
        assert!(inter.makespan_secs < seq.makespan_secs);
    }
}

#[test]
fn pattern_a_sequential_is_near_optimal_on_utilization() {
    for seed in SEEDS {
        let seq = run(
            (1.0, 0.0, 0.0),
            AdmissionPolicy::Sequential,
            QpuPolicy::Fifo,
            seed,
        );
        let inter = run(
            (1.0, 0.0, 0.0),
            AdmissionPolicy::NodeLimited,
            QpuPolicy::Fifo,
            seed,
        );
        // the QPU is the bottleneck either way: gap stays small…
        assert!(
            inter.qpu_utilization - seq.qpu_utilization < 0.15,
            "seed {seed}: gap {:.3}",
            inter.qpu_utilization - seq.qpu_utilization
        );
        // …but greedy interleaving parks whole jobs on the QPU queue
        assert!(
            inter.node_waste_frac > seq.node_waste_frac + 0.3,
            "seed {seed}: greedy waste {:.3} vs sequential {:.3}",
            inter.node_waste_frac,
            seq.node_waste_frac
        );
    }
}

#[test]
fn pattern_aware_balances_utilization_and_waste_on_balanced_mix() {
    for seed in SEEDS {
        let greedy = run(
            (0.0, 0.0, 1.0),
            AdmissionPolicy::NodeLimited,
            QpuPolicy::Priority { preemption: true },
            seed,
        );
        let aware = run(
            (0.0, 0.0, 1.0),
            AdmissionPolicy::PatternAware { target_duty: 1.2 },
            QpuPolicy::Priority { preemption: true },
            seed,
        );
        let seq = run(
            (0.0, 0.0, 1.0),
            AdmissionPolicy::Sequential,
            QpuPolicy::Fifo,
            seed,
        );
        // aware keeps most of the interleaving utilization gain…
        assert!(
            aware.qpu_utilization > seq.qpu_utilization + 0.2,
            "seed {seed}: aware {:.3} vs seq {:.3}",
            aware.qpu_utilization,
            seq.qpu_utilization
        );
        // …while cutting the node waste of greedy admission by a lot
        assert!(
            aware.node_waste_frac < greedy.node_waste_frac * 0.5,
            "seed {seed}: aware {:.3} vs greedy {:.3}",
            aware.node_waste_frac,
            greedy.node_waste_frac
        );
    }
}

#[test]
fn priority_policy_protects_production_turnaround() {
    for seed in SEEDS {
        let fifo = run(
            (1.0, 1.0, 1.0),
            AdmissionPolicy::NodeLimited,
            QpuPolicy::Fifo,
            seed,
        );
        let prio = run(
            (1.0, 1.0, 1.0),
            AdmissionPolicy::NodeLimited,
            QpuPolicy::Priority { preemption: true },
            seed,
        );
        let (Some(f), Some(p)) = (
            fifo.turnaround_by_class.get("production"),
            prio.turnaround_by_class.get("production"),
        ) else {
            panic!("production jobs present in the mix");
        };
        assert!(
            p < f,
            "seed {seed}: production turnaround priority {p:.0}s vs fifo {f:.0}s"
        );
    }
}

#[test]
fn every_cosim_job_completes_no_starvation() {
    for seed in SEEDS {
        for admission in [
            AdmissionPolicy::Sequential,
            AdmissionPolicy::NodeLimited,
            AdmissionPolicy::PatternAware { target_duty: 1.2 },
        ] {
            let r = run(
                (1.0, 1.0, 1.0),
                admission,
                QpuPolicy::Priority { preemption: true },
                seed,
            );
            assert_eq!(
                r.completed, 60,
                "seed {seed}, {admission:?}: all jobs finish"
            );
        }
    }
}

#[test]
fn batch_layer_runs_the_same_population_via_gres() {
    for seed in SEEDS {
        let jobs = generate_population(80, (1.0, 1.0, 1.0), &PatternGenConfig::default(), seed);
        let mut sim = SlurmSim::new(
            Cluster::new(32).with_gres("qpu", 10),
            standard_partitions(),
            SchedPolicy::default(),
        );
        let mut ids = Vec::new();
        for j in &jobs {
            ids.push(sim.submit_at(to_batch_spec(j, 10), j.arrival).unwrap());
        }
        sim.run_to_completion();
        for id in ids {
            let job = sim.job(id).unwrap();
            assert!(
                matches!(job.state, JobState::Completed),
                "seed {seed}: job {id} ended as {:?}",
                job.state
            );
        }
        let util = sim.gres_utilization("qpu").unwrap();
        assert!(util > 0.0 && util <= 1.0, "seed {seed}: gres util {util}");
    }
}
