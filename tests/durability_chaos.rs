//! Chaos harness: kill-and-recover the daemon at randomized crash points.
//!
//! Each scenario scripts a deterministic interleaving of submits (some with
//! idempotency keys) and dispatch pumps against a journaled daemon, then
//! "crashes" it — drops the process state on the floor with no drain and no
//! final snapshot, exactly what power loss leaves behind — after `k`
//! operations. A fresh daemon recovers from the journal directory and the
//! harness asserts the exactly-once contract:
//!
//! * **no task lost** — every id submitted before the crash is known after
//!   recovery, and every non-terminal task reaches a terminal state when the
//!   recovered queue is pumped dry;
//! * **no task runs twice** — work that completed before the crash keeps its
//!   original result bit-for-bit and is not re-executed (the recovered
//!   daemon's completion counter covers only the tasks that were still
//!   pending);
//! * **idempotency survives** — resubmitting a journaled key returns the
//!   original task id without growing the queue.
//!
//! The crash point sweeps 0..24, covering "before anything", "mid-submit
//! burst", "between dispatches", and "after everything finished".

use hpcqc::emulator::SvBackend;
use hpcqc::middleware::{DaemonConfig, DaemonTaskStatus, MiddlewareService, PriorityClass};
use hpcqc::program::{ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc::qrmi::{LocalEmulatorResource, QuantumResource};
use hpcqc::scheduler::PatternHint;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const CRASH_POINTS: usize = 24;

fn chaos_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target/chaos-tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn resource() -> Arc<dyn QuantumResource> {
    Arc::new(LocalEmulatorResource::new(
        "emu",
        Arc::new(SvBackend::default()),
        1,
    ))
}

fn program(shots: u32) -> ProgramIr {
    let reg = Register::linear(2, 6.0).unwrap();
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
    ProgramIr::new(b.build().unwrap(), shots, "chaos")
}

/// Sum a labeled counter family in a Prometheus exposition.
fn counter_total(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .filter(|l| l.starts_with(name) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

#[derive(Clone)]
enum Op {
    /// Submit task `i` (session alternates; even `i` carries a key).
    Submit(usize),
    /// One dispatch pump (no-op on an empty queue).
    Pump,
}

/// The scripted interleaving: a submit burst, pumps racing the remaining
/// submits, then enough pumps to drain everything. 24 ops → crash point `k`
/// lands everywhere from "journal still empty" to "all work done".
fn script() -> Vec<Op> {
    let mut ops = vec![Op::Submit(0), Op::Submit(1)];
    for i in 2..8 {
        ops.push(Op::Pump);
        ops.push(Op::Submit(i));
    }
    while ops.len() < CRASH_POINTS {
        ops.push(Op::Pump);
    }
    ops
}

fn key_for(i: usize) -> Option<String> {
    i.is_multiple_of(2).then(|| format!("chaos-key-{i}"))
}

fn run_scenario(crash_after: usize) {
    let dir = chaos_dir(&format!("crash-{crash_after}"));
    let d = MiddlewareService::recover(&dir, resource(), DaemonConfig::default()).unwrap();
    let prod = d.open_session("prod", PriorityClass::Production).unwrap();
    let test = d.open_session("test", PriorityClass::Test).unwrap();

    let mut submitted: HashMap<usize, u64> = HashMap::new();
    for (step, op) in script().into_iter().enumerate() {
        if step == crash_after {
            break;
        }
        match op {
            Op::Submit(i) => {
                let tok = if i.is_multiple_of(2) { &prod } else { &test };
                // distinct shot counts → distinct fingerprints, so the dev
                // cache can never alias two logical tasks
                let id = d
                    .submit_with_key(
                        tok,
                        program(10 + i as u32),
                        PatternHint::None,
                        key_for(i).as_deref(),
                    )
                    .unwrap();
                submitted.insert(i, id);
            }
            Op::Pump => {
                d.pump_once();
            }
        }
    }

    // what was durably finished at the moment of the crash
    let mut done_before: HashMap<u64, hpcqc::emulator::SampleResult> = HashMap::new();
    for &id in submitted.values() {
        if d.task_status(id).unwrap() == DaemonTaskStatus::Completed {
            done_before.insert(id, d.task_result(id).unwrap());
        }
    }
    drop(d); // crash: no drain, no snapshot, whatever the WAL holds is it

    let d2 = MiddlewareService::recover(&dir, resource(), DaemonConfig::default()).unwrap();

    // no task lost: every pre-crash id is known, nothing is mid-air
    for (&i, &id) in &submitted {
        let status = d2.task_status(id).unwrap_or_else(|e| {
            panic!("task {i} (id {id}) lost at crash point {crash_after}: {e}")
        });
        assert_ne!(
            status,
            DaemonTaskStatus::Running,
            "no task may be Running after recovery"
        );
    }
    // completed work survived with its exact result
    for (&id, before) in &done_before {
        assert_eq!(d2.task_status(id).unwrap(), DaemonTaskStatus::Completed);
        assert_eq!(
            d2.task_result(id).unwrap().counts,
            before.counts,
            "completed result must survive the crash bit-for-bit"
        );
    }
    // idempotency: resubmitting a journaled key returns the original id and
    // enqueues nothing
    let depth = d2.queue_depth();
    for (&i, &id) in &submitted {
        if let Some(key) = key_for(i) {
            let tok = if i.is_multiple_of(2) { &prod } else { &test };
            let again = d2
                .submit_with_key(tok, program(10 + i as u32), PatternHint::None, Some(&key))
                .unwrap();
            assert_eq!(again, id, "key {key} must return the original task id");
        }
    }
    assert_eq!(d2.queue_depth(), depth, "dedup must not grow the queue");

    // drain the recovered queue: everything submitted reaches a terminal
    // state, and only the tasks that were NOT already done get executed
    d2.pump();
    let mut newly_run = 0;
    for &id in submitted.values() {
        match d2.task_status(id).unwrap() {
            DaemonTaskStatus::Completed => {
                if !done_before.contains_key(&id) {
                    newly_run += 1;
                }
            }
            other => panic!("task {id} not terminal after recovery pump: {other:?}"),
        }
    }
    let completed_after = counter_total(&d2.metrics_text(), "daemon_tasks_completed_total");
    assert_eq!(
        completed_after as usize, newly_run,
        "crash point {crash_after}: recovered daemon must execute exactly the \
         tasks that had no durable result (no double execution)"
    );
}

#[test]
fn kill_and_recover_across_crash_point_matrix() {
    for crash_after in 0..=CRASH_POINTS {
        run_scenario(crash_after);
    }
}

#[test]
fn torn_wal_tail_is_discarded_not_fatal() {
    let dir = chaos_dir("torn-tail");
    let d = MiddlewareService::recover(&dir, resource(), DaemonConfig::default()).unwrap();
    let tok = d.open_session("ada", PriorityClass::Production).unwrap();
    let id = d.submit(&tok, program(10), PatternHint::None).unwrap();
    d.pump();
    let result = d.task_result(id).unwrap();
    drop(d);

    // power failed mid-append: a frame header promising more bytes than ever
    // reached the disk
    use std::io::Write;
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("wal.log"))
        .unwrap();
    wal.write_all(&200u32.to_le_bytes()).unwrap();
    wal.write_all(&0xdead_beefu32.to_le_bytes()).unwrap();
    wal.write_all(b"{\"truncated").unwrap();
    drop(wal);

    let d2 = MiddlewareService::recover(&dir, resource(), DaemonConfig::default()).unwrap();
    assert_eq!(d2.task_result(id).unwrap().counts, result.counts);
    assert!(
        d2.metrics_text().contains("journal_truncated_bytes_total"),
        "discarded tail bytes must be visible in telemetry"
    );
    // the daemon is fully live after the torn tail
    let next = d2.submit(&tok, program(11), PatternHint::None).unwrap();
    d2.pump();
    assert_eq!(d2.task_status(next).unwrap(), DaemonTaskStatus::Completed);
}

/// Journal tuning for the group-commit chaos tests: batches large enough
/// that nothing reaches the disk until `sync_journal` (or a crash) decides.
fn batched_cfg() -> DaemonConfig {
    let mut cfg = DaemonConfig::default();
    cfg.journal.fsync_every = 64;
    cfg.journal.group_max_records = 64;
    cfg.journal.compact_every = 0;
    cfg
}

/// Kill the daemon with records still sitting in the group-commit buffer:
/// everything acknowledged by `sync_journal` must survive bit-for-bit, the
/// lost set must be exactly the unsynced suffix, and the recovered daemon
/// must neither re-run durable work nor remember the lost idempotency keys.
#[test]
fn batched_wal_crash_loses_at_most_the_unsynced_suffix() {
    let dir = chaos_dir("batched-suffix");
    let d = MiddlewareService::recover(&dir, resource(), batched_cfg()).unwrap();
    let tok = d.open_session("ada", PriorityClass::Production).unwrap();

    let mut pre = Vec::new();
    for i in 0..4 {
        let id = d
            .submit_with_key(
                &tok,
                program(10 + i as u32),
                PatternHint::None,
                key_for(i).as_deref(),
            )
            .unwrap();
        pre.push((i, id));
    }
    d.pump_once();
    d.pump_once();
    let done_before: HashMap<u64, hpcqc::emulator::SampleResult> = pre
        .iter()
        .filter(|&&(_, id)| d.task_status(id).unwrap() == DaemonTaskStatus::Completed)
        .map(|&(_, id)| (id, d.task_result(id).unwrap()))
        .collect();
    assert_eq!(done_before.len(), 2, "two pumps should finish two tasks");

    // the acknowledgement point: everything above becomes durable here
    d.sync_journal();

    let mut post = Vec::new();
    for i in 4..8 {
        let id = d
            .submit_with_key(
                &tok,
                program(10 + i as u32),
                PatternHint::None,
                key_for(i).as_deref(),
            )
            .unwrap();
        post.push((i, id));
    }
    drop(d); // crash with the post-sync records still buffered

    let d2 = MiddlewareService::recover(&dir, resource(), batched_cfg()).unwrap();

    // every acknowledged submission is known, completed work kept its result
    for &(i, id) in &pre {
        let status = d2
            .task_status(id)
            .unwrap_or_else(|e| panic!("acknowledged task {i} (id {id}) lost: {e}"));
        assert_ne!(status, DaemonTaskStatus::Running);
    }
    for (&id, before) in &done_before {
        assert_eq!(d2.task_status(id).unwrap(), DaemonTaskStatus::Completed);
        assert_eq!(
            d2.task_result(id).unwrap().counts,
            before.counts,
            "synced result must survive the crash bit-for-bit"
        );
    }
    // the unsynced batch never touched the disk, so the whole suffix is gone
    for &(i, id) in &post {
        assert!(
            d2.task_status(id).is_err(),
            "task {i} (id {id}) sat in the unflushed batch and must not survive"
        );
    }

    // drain: only tasks without a durable result execute (no double run)
    d2.pump();
    let mut newly_run = 0;
    for &(_, id) in &pre {
        match d2.task_status(id).unwrap() {
            DaemonTaskStatus::Completed => {
                if !done_before.contains_key(&id) {
                    newly_run += 1;
                }
            }
            other => panic!("task {id} not terminal after recovery pump: {other:?}"),
        }
    }
    let completed_after = counter_total(&d2.metrics_text(), "daemon_tasks_completed_total");
    assert_eq!(
        completed_after as usize, newly_run,
        "recovered daemon must execute exactly the unsynced-but-known tasks"
    );

    // lost idempotency keys are really gone: resubmission enqueues fresh work
    let lost_keyed: Vec<usize> = post
        .iter()
        .filter(|&&(i, _)| key_for(i).is_some())
        .map(|&(i, _)| i)
        .collect();
    let depth = d2.queue_depth();
    let mut fresh = Vec::new();
    for &i in &lost_keyed {
        fresh.push(
            d2.submit_with_key(
                &tok,
                program(10 + i as u32),
                PatternHint::None,
                key_for(i).as_deref(),
            )
            .unwrap(),
        );
    }
    assert_eq!(
        d2.queue_depth(),
        depth + lost_keyed.len(),
        "keys lost with the batch must not dedup"
    );
    d2.pump();
    for id in fresh {
        assert_eq!(d2.task_status(id).unwrap(), DaemonTaskStatus::Completed);
    }
}

/// Crash a submit burst that crosses the auto-flush threshold. Submit-path
/// batches are deferred (the group commit is paid off the submitter thread),
/// so a crash before the dispatcher's idle flush may lose the whole burst —
/// but the loss is still a contiguous suffix with a clean boundary: no torn
/// middle, no reordering.
#[test]
fn crash_before_idle_flush_loses_a_contiguous_suffix_only() {
    let dir = chaos_dir("batched-boundary-crash");
    let mut cfg = DaemonConfig::default();
    cfg.journal.fsync_every = 4;
    cfg.journal.group_max_records = 4;
    cfg.journal.compact_every = 0;
    let d = MiddlewareService::recover(&dir, resource(), cfg.clone()).unwrap();
    let tok = d.open_session("ada", PriorityClass::Production).unwrap();
    let ids: Vec<u64> = (0..6)
        .map(|i| d.submit(&tok, program(10 + i), PatternHint::None).unwrap())
        .collect();
    drop(d); // crash mid-burst: the tripped batch was deferred, the tail buffered

    let d2 = MiddlewareService::recover(&dir, resource(), cfg).unwrap();
    let survived: Vec<bool> = ids.iter().map(|&id| d2.task_status(id).is_ok()).collect();
    let cut = survived.iter().position(|s| !s).unwrap_or(survived.len());
    assert!(
        survived[cut..].iter().all(|s| !s),
        "recovery must lose a contiguous suffix only: {survived:?}"
    );
    assert!(
        cut < ids.len(),
        "the deferred batch and buffered tail must be lost on crash: {survived:?}"
    );
    d2.pump();
    for &id in &ids[..cut] {
        assert_eq!(d2.task_status(id).unwrap(), DaemonTaskStatus::Completed);
    }
}

/// The dispatcher's idle flush (`sync_journal`) is the durability boundary
/// for deferred submit batches: everything submitted before it survives a
/// crash, everything buffered after it is lost — cleanly, at the boundary.
#[test]
fn auto_flush_boundary_preserves_the_flushed_prefix() {
    let dir = chaos_dir("batched-boundary");
    let mut cfg = DaemonConfig::default();
    cfg.journal.fsync_every = 4;
    cfg.journal.group_max_records = 4;
    cfg.journal.compact_every = 0;
    let d = MiddlewareService::recover(&dir, resource(), cfg.clone()).unwrap();
    let tok = d.open_session("ada", PriorityClass::Production).unwrap();
    let ids: Vec<u64> = (0..6)
        .map(|i| d.submit(&tok, program(10 + i), PatternHint::None).unwrap())
        .collect();
    // the dispatcher's lull flush: drains the deferred batch and the buffer
    d.sync_journal();
    let tail: Vec<u64> = (0..2)
        .map(|i| d.submit(&tok, program(20 + i), PatternHint::None).unwrap())
        .collect();
    drop(d); // crash: the synced prefix is durable, the post-sync burst is not

    let d2 = MiddlewareService::recover(&dir, resource(), cfg).unwrap();
    for &id in &ids {
        assert!(
            d2.task_status(id).is_ok(),
            "everything acked before the idle flush must survive: {id}"
        );
    }
    for &id in &tail {
        assert!(
            d2.task_status(id).is_err(),
            "the burst after the last flush must be lost, not torn: {id}"
        );
    }
    d2.pump();
    for &id in &ids {
        assert_eq!(d2.task_status(id).unwrap(), DaemonTaskStatus::Completed);
    }
}

#[test]
fn drain_then_recover_hands_off_cleanly() {
    let dir = chaos_dir("drain-handoff");
    let d = MiddlewareService::recover(&dir, resource(), DaemonConfig::default()).unwrap();
    let tok = d.open_session("ada", PriorityClass::Production).unwrap();
    let ids: Vec<u64> = (0..4)
        .map(|i| d.submit(&tok, program(10 + i), PatternHint::None).unwrap())
        .collect();
    // zero drain budget: the daemon stops immediately, work stays journaled
    let report = d.shutdown(std::time::Duration::ZERO);
    assert_eq!(report.pending, 4);
    drop(d);

    let d2 = MiddlewareService::recover(&dir, resource(), DaemonConfig::default()).unwrap();
    assert_eq!(d2.queue_depth(), 4);
    d2.pump();
    for id in ids {
        assert_eq!(d2.task_status(id).unwrap(), DaemonTaskStatus::Completed);
    }
}

// ---- replication chaos: kill the leader, promote the follower -------------

use hpcqc::middleware::{FollowerReplica, ReplicaAck, ShipEvent};

/// Where in the shipping protocol the leader "takes the kill -9".
#[derive(Debug, Clone, Copy)]
enum KillMode {
    /// Mid-batch: half the pending stream lands on the follower, the next
    /// event arrives torn (bit-flipped in flight) and must be rejected.
    MidBatch,
    /// Post-write, pre-ack: the follower applied everything, but its
    /// acknowledgements died on the wire with the leader.
    PreAck,
    /// Post-ack: the full stream is applied and acknowledged.
    PostAck,
}

fn tear(ev: &ShipEvent) -> ShipEvent {
    let mut torn = ev.clone();
    if let ShipEvent::Batch(b) = &mut torn {
        if let Some(byte) = b.bytes.last_mut() {
            *byte ^= 0x40;
        }
    }
    torn
}

/// One leader-kill scenario: run the scripted workload to `kill_after`,
/// ship per `mode`, kill the leader with no drain, then promote the
/// follower and hold it to the exactly-once contract:
///
/// * promotion of a replica behind the last-acked offset is refused,
/// * no acked task is lost (every task the follower applied is known,
///   completed work keeps its result bit-for-bit),
/// * nothing runs twice (the promoted daemon's completion counter covers
///   exactly the tasks that had no durable result),
/// * idempotency keys dedup across the failover.
fn replication_scenario(kill_after: usize, mode: KillMode) {
    let tag = format!("repl-{kill_after}-{mode:?}").to_lowercase();
    let dir_l = chaos_dir(&format!("{tag}-leader"));
    let dir_f = chaos_dir(&format!("{tag}-follower"));
    let d = MiddlewareService::recover(&dir_l, resource(), DaemonConfig::default()).unwrap();
    d.enable_shipping().unwrap();
    let mut follower = FollowerReplica::open(&dir_f).unwrap();

    let prod = d.open_session("prod", PriorityClass::Production).unwrap();
    let test = d.open_session("test", PriorityClass::Test).unwrap();
    let mut submitted: HashMap<usize, u64> = HashMap::new();
    for (step, op) in script().into_iter().enumerate() {
        if step == kill_after {
            break;
        }
        match op {
            Op::Submit(i) => {
                let tok = if i.is_multiple_of(2) { &prod } else { &test };
                let id = d
                    .submit_with_key(
                        tok,
                        program(10 + i as u32),
                        PatternHint::None,
                        key_for(i).as_deref(),
                    )
                    .unwrap();
                submitted.insert(i, id);
            }
            Op::Pump => {
                d.pump_once();
            }
        }
    }
    let mut done_before: HashMap<u64, hpcqc::emulator::SampleResult> = HashMap::new();
    for &id in submitted.values() {
        if d.task_status(id).unwrap() == DaemonTaskStatus::Completed {
            done_before.insert(id, d.task_result(id).unwrap());
        }
    }

    match mode {
        KillMode::PostAck => {
            d.ship_pending(&mut follower, "f").unwrap();
        }
        KillMode::PreAck => {
            for ev in d.ship_events(follower.ack().applied_seq) {
                follower.apply(&ev).unwrap();
            }
        }
        KillMode::MidBatch => {
            let pending = d.ship_events(follower.ack().applied_seq);
            let deliver = pending.len() / 2;
            for ev in &pending[..deliver] {
                let ack = follower.apply(ev).unwrap();
                d.record_ack("f", ack);
            }
            if let Some(next) = pending.get(deliver) {
                let cursor = follower.ack();
                assert!(
                    follower.apply(&tear(next)).is_err(),
                    "a torn in-flight event must be rejected"
                );
                assert_eq!(follower.ack(), cursor, "rejection must not move the cursor");
            }
        }
    }
    let last_acked = d.last_acked();
    drop(d); // kill -9: no drain, no final ship, no goodbye

    // A replica behind the last-acked offset must be refused promotion
    // (an empty stand-in replica plays the laggard).
    if last_acked != ReplicaAck::default() {
        let empty = chaos_dir(&format!("{tag}-laggard"));
        match MiddlewareService::promote(&empty, resource(), DaemonConfig::default(), last_acked) {
            Err(e) => assert!(
                e.to_string().contains("refusing promotion"),
                "unexpected refusal shape: {e}"
            ),
            Ok(_) => panic!("a replica behind the acked offset must not be promoted"),
        }
    }

    let d2 = MiddlewareService::promote(&dir_f, resource(), DaemonConfig::default(), last_acked)
        .unwrap();

    // the follower's applied prefix: which submitted tasks it knows
    let known: HashMap<usize, u64> = submitted
        .iter()
        .filter(|(_, &id)| d2.task_status(id).is_ok())
        .map(|(&i, &id)| (i, id))
        .collect();
    match mode {
        // everything shipped ⇒ nothing may be missing
        KillMode::PostAck | KillMode::PreAck => assert_eq!(
            known.len(),
            submitted.len(),
            "{tag}: fully shipped prefix lost tasks"
        ),
        // half shipped ⇒ whatever applied is there; nothing acked is lost
        // because acks only exist for applied events by construction
        KillMode::MidBatch => {}
    }
    // completions whose records reached the follower are durable there: the
    // promoted daemon must keep their exact results and never re-run them.
    // A completion that died on the wire re-executes — that is the
    // at-least-once window the idempotency key exists for.
    let mut done_on_follower: Vec<u64> = Vec::new();
    for (&i, &id) in &known {
        let status = d2.task_status(id).unwrap();
        assert_ne!(
            status,
            DaemonTaskStatus::Running,
            "task {i} mid-air after promotion"
        );
        if status == DaemonTaskStatus::Completed {
            done_on_follower.push(id);
            let before = &done_before[&id];
            assert_eq!(
                d2.task_result(id).unwrap().counts,
                before.counts,
                "{tag}: applied completion must survive failover bit-for-bit"
            );
        }
    }

    // idempotency dedup across the failover: every key the follower knows
    // returns its original id without growing the queue
    let depth = d2.queue_depth();
    for (&i, &id) in &known {
        if let Some(key) = key_for(i) {
            let tok = if i.is_multiple_of(2) { &prod } else { &test };
            if let Ok(again) =
                d2.submit_with_key(tok, program(10 + i as u32), PatternHint::None, Some(&key))
            {
                assert_eq!(again, id, "{tag}: key {key} must dedup across failover");
            }
        }
    }
    assert_eq!(d2.queue_depth(), depth, "{tag}: dedup grew the queue");

    // drain the promoted daemon: everything terminal, and the completion
    // counter covers exactly the tasks without an applied completion — an
    // applied (shipped) completion is never executed a second time
    d2.pump();
    let mut newly_run = 0;
    for &id in known.values() {
        match d2.task_status(id).unwrap() {
            DaemonTaskStatus::Completed => {
                if !done_on_follower.contains(&id) {
                    newly_run += 1;
                }
            }
            other => panic!("{tag}: task {id} not terminal after promotion: {other:?}"),
        }
    }
    let completed_after = counter_total(&d2.metrics_text(), "daemon_tasks_completed_total");
    assert_eq!(
        completed_after as usize, newly_run,
        "{tag}: promoted follower must execute exactly the tasks without an \
         applied completion (no double execution of shipped results)"
    );
}

#[test]
fn leader_kill_and_promote_matrix() {
    for kill_after in (0..=CRASH_POINTS).step_by(4) {
        replication_scenario(kill_after, KillMode::MidBatch);
        replication_scenario(kill_after, KillMode::PreAck);
        replication_scenario(kill_after, KillMode::PostAck);
    }
}
