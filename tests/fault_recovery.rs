//! Integration: fault injection and recovery across the QRMI boundary.
//!
//! Drives full workflows through a [`FaultInjector`]-wrapped resource at
//! every level of the stack — runtime retries, graceful degradation to a
//! local emulator, daemon-side requeues, and the REST transport — and
//! checks that the recovery activity is visible in telemetry.

use hpcqc::core::{AttemptBudget, RetryPolicy, Runtime};
use hpcqc::emulator::SvBackend;
use hpcqc::middleware::rest::serve;
use hpcqc::middleware::{DaemonConfig, DaemonTaskStatus, MiddlewareService, PriorityClass};
use hpcqc::program::{ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc::qrmi::{
    CloudEngine, CloudResource, FaultInjector, FaultProfile, LocalEmulatorResource,
    ResourceRegistry,
};
use hpcqc::scheduler::PatternHint;
use hpcqc::telemetry::FaultMetrics;
use std::sync::Arc;

fn program(shots: u32) -> ProgramIr {
    let reg = Register::linear(3, 6.0).unwrap();
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.5, 5.0, -1.0, 0.0).unwrap());
    ProgramIr::new(b.build().unwrap(), shots, "fault-recovery")
}

/// Registry: a flaky cloud resource (the default) plus a clean local
/// emulator for graceful degradation.
fn registry(profile: FaultProfile, metrics: &FaultMetrics) -> ResourceRegistry {
    let backend = Arc::new(SvBackend::default());
    let cloud = Arc::new(CloudResource::new(
        "flaky-cloud",
        CloudEngine::Emulator(backend.clone()),
        2,
        11,
    ));
    let mut reg = ResourceRegistry::new();
    reg.register(Arc::new(
        FaultInjector::new(cloud, profile, 41).with_metrics(metrics.clone()),
    ));
    reg.register(Arc::new(LocalEmulatorResource::new(
        "emu-local",
        backend,
        3,
    )));
    reg.default_resource = Some("flaky-cloud".into());
    reg
}

#[test]
fn workflow_completes_against_faulty_resource_with_retries() {
    // the acceptance profile: ≥20% transient task failures plus
    // intermittent acquisition denials and result-fetch errors
    let profile = FaultProfile::flaky();
    assert!(profile.task_failure_rate >= 0.2);
    assert!(profile.acquire_denial_rate > 0.0);

    let metrics = FaultMetrics::default();
    let rt = Runtime::new(registry(profile, &metrics))
        .with_retry_policy(RetryPolicy::default())
        .with_priority_class(PriorityClass::Production)
        .with_fault_metrics(metrics.clone());

    // a 20-run workflow: every run must complete despite the fault pressure
    let mut total_attempts = 0;
    let mut total_backoff = 0.0;
    for _ in 0..20 {
        let run = rt.run_recovered(&program(25)).unwrap();
        assert_eq!(run.report.result.shots, 25);
        assert_eq!(run.report.resource_id, "flaky-cloud");
        assert!(run.fallback_resource.is_none());
        total_attempts += run.attempts;
        total_backoff += run.backoff_secs;
    }
    assert!(
        total_attempts > 20,
        "fault pressure must cost extra attempts"
    );
    assert!(total_backoff > 0.0, "retries must pay backoff");

    // telemetry saw the whole story: injected faults and the retries that
    // recovered from them
    let text = metrics.registry().expose();
    assert!(text.contains("qrmi_faults_injected_total"), "{text}");
    assert!(text.contains("runtime_retries_total"), "{text}");
    assert!(text.contains("runtime_backoff_seconds_total"), "{text}");
}

#[test]
fn budget_exhaustion_degrades_to_local_emulator() {
    // a dead cloud resource: every acquisition denied
    let profile = FaultProfile {
        acquire_denial_rate: 1.0,
        ..FaultProfile::none()
    };
    let metrics = FaultMetrics::default();
    let rt = Runtime::new(registry(profile, &metrics))
        .with_retry_policy(RetryPolicy::default().with_budget(
            PriorityClass::Development,
            AttemptBudget {
                max_attempts: 4,
                max_backoff_secs: 120.0,
            },
        ))
        .with_fallback(true)
        .with_fault_metrics(metrics.clone());

    let run = rt.run_recovered(&program(30)).unwrap();
    assert_eq!(run.fallback_resource.as_deref(), Some("emu-local"));
    assert_eq!(run.report.resource_id, "emu-local");
    assert_eq!(run.report.result.shots, 30);

    let text = metrics.registry().expose();
    assert!(text.contains("runtime_retry_budget_exhausted_total{resource=\"flaky-cloud\"} 1"));
    assert!(text.contains("runtime_fallbacks_total{from=\"flaky-cloud\",to=\"emu-local\"} 1"));
    // the denials themselves were recorded by the injector
    assert!(text
        .contains("qrmi_faults_injected_total{kind=\"acquire_denied\",resource=\"flaky-cloud\"}"));
}

#[test]
fn daemon_requeues_ride_through_task_failures() {
    let inner = Arc::new(LocalEmulatorResource::new(
        "emu",
        Arc::new(SvBackend::default()),
        5,
    ));
    let flaky = Arc::new(FaultInjector::new(
        inner,
        FaultProfile {
            task_failure_rate: 0.3,
            ..FaultProfile::none()
        },
        29,
    ));
    let d = MiddlewareService::new(
        flaky.clone(),
        DaemonConfig {
            max_task_retries: 25,
            ..DaemonConfig::default()
        },
    );
    let tok = d.open_session("alice", PriorityClass::Production).unwrap();
    let ids: Vec<u64> = (0..12)
        .map(|_| d.submit(&tok, program(20), PatternHint::None).unwrap())
        .collect();
    d.pump();
    for id in &ids {
        assert_eq!(d.task_status(*id).unwrap(), DaemonTaskStatus::Completed);
        assert_eq!(d.task_result(*id).unwrap().shots, 20);
    }
    assert!(flaky.total_faults() > 0, "the injector actually fired");
    assert!(
        d.metrics_text()
            .contains("daemon_task_requeues_total{class=\"production\"}"),
        "requeues recorded in daemon telemetry"
    );
}

#[test]
fn daemon_poisons_task_that_never_succeeds() {
    let inner = Arc::new(LocalEmulatorResource::new(
        "emu",
        Arc::new(SvBackend::default()),
        5,
    ));
    let dead = Arc::new(FaultInjector::new(
        inner,
        FaultProfile {
            task_failure_rate: 1.0,
            ..FaultProfile::none()
        },
        31,
    ));
    let d = MiddlewareService::new(
        dead,
        DaemonConfig {
            max_task_retries: 3,
            ..DaemonConfig::default()
        },
    );
    let tok = d.open_session("bob", PriorityClass::Test).unwrap();
    let id = d.submit(&tok, program(10), PatternHint::None).unwrap();
    d.pump();
    assert!(matches!(
        d.task_status(id).unwrap(),
        DaemonTaskStatus::Failed(_)
    ));
    let text = d.metrics_text();
    assert!(text.contains("daemon_task_requeues_total{class=\"test\"} 3"));
    assert!(text.contains("daemon_tasks_poisoned_total{class=\"test\"} 1"));
}

#[test]
fn rest_workflow_completes_over_a_faulty_device() {
    // full Figure-2 stack: REST client → daemon → FaultInjector → emulator,
    // with enough requeue budget to ride out 25% task loss
    let inner = Arc::new(LocalEmulatorResource::new(
        "emu",
        Arc::new(SvBackend::default()),
        9,
    ));
    let flaky = Arc::new(FaultInjector::new(
        inner,
        FaultProfile {
            task_failure_rate: 0.25,
            ..FaultProfile::none()
        },
        37,
    ));
    let svc = Arc::new(MiddlewareService::new(
        flaky,
        DaemonConfig {
            max_task_retries: 30,
            ..DaemonConfig::default()
        },
    ));
    let server = serve(svc).expect("daemon binds");
    let client = hpcqc::core::DaemonClient::new(server.addr());
    let session = client
        .open_session("carol", PriorityClass::Production)
        .unwrap();
    for _ in 0..5 {
        let r = session.run(&program(15), PatternHint::None).unwrap();
        assert_eq!(r.shots, 15);
    }
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("daemon_tasks_completed_total{class=\"production\"} 5"));
    session.close().unwrap();
}
