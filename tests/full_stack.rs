//! Integration: the full Figure-2 stack over real sockets.
//!
//! Exercises runtime client → HTTP → REST routes → daemon → QRMI →
//! virtual QPU → emulation → telemetry, end to end, across crates.

use hpcqc::core::{ClientError, DaemonClient};
use hpcqc::middleware::rest::serve;
use hpcqc::middleware::{DaemonConfig, HttpServer, MiddlewareService, PriorityClass};
use hpcqc::program::{ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc::qpu::{QpuStatus, VirtualQpu};
use hpcqc::qrmi::QpuDirectResource;
use hpcqc::scheduler::PatternHint;
use std::sync::Arc;

fn stack(cfg: DaemonConfig) -> (HttpServer, VirtualQpu) {
    let qpu = VirtualQpu::new("fresnel-1", 99);
    let resource = Arc::new(QpuDirectResource::new("fresnel-1", qpu.clone(), 7));
    let svc = Arc::new(MiddlewareService::new(resource, cfg).with_qpu_admin(qpu.clone()));
    (serve(svc).expect("daemon binds"), qpu)
}

fn program(shots: u32) -> ProgramIr {
    let reg = Register::linear(3, 6.0).unwrap();
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.5, 5.0, -1.0, 0.0).unwrap());
    ProgramIr::new(b.build().unwrap(), shots, "integration")
}

#[test]
fn submit_run_fetch_through_every_layer() {
    let (server, qpu) = stack(DaemonConfig::default());
    let client = DaemonClient::new(server.addr());

    // the device spec travels: QPU calibration → QRMI target → REST → client
    let spec = client.target().unwrap();
    assert_eq!(spec.name, "analog-fresnel");
    assert_eq!(spec.revision, 1);

    let session = client
        .open_session("alice", PriorityClass::Production)
        .unwrap();
    let result = session.run(&program(25), PatternHint::QcHeavy).unwrap();
    assert_eq!(result.shots, 25);
    assert_eq!(result.backend, "fresnel-1");
    // the device actually spent simulated seconds on it (1 Hz + overhead)
    assert!(result.execution_secs >= 25.0);
    let (jobs, shots) = qpu.stats();
    assert_eq!((jobs, shots), (1, 25));
    session.close().unwrap();
}

#[test]
fn concurrent_multiclass_load_with_preemption() {
    let (server, qpu) = stack(DaemonConfig {
        dev_shot_cap: 30,
        preempt_chunk_shots: 5,
        ..DaemonConfig::default()
    });
    let addr = server.addr();
    let mut handles = Vec::new();
    for (user, class, shots) in [
        ("prod", PriorityClass::Production, 40u32),
        ("test", PriorityClass::Test, 20),
        ("dev", PriorityClass::Development, 100), // capped to 30
    ] {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let s = DaemonClient::new(addr).open_session(user, class).unwrap();
            let r = s.run(&program(shots), PatternHint::None).unwrap();
            (class, r.shots)
        }));
    }
    let mut results = Vec::new();
    for h in handles {
        results.push(h.join().unwrap());
    }
    // every class completed, dev capped
    for (class, shots) in results {
        match class {
            PriorityClass::Production => assert_eq!(shots, 40),
            PriorityClass::Test => assert_eq!(shots, 20),
            PriorityClass::Development => assert_eq!(shots, 30),
        }
    }
    let (_, total_shots) = qpu.stats();
    assert_eq!(
        total_shots, 90,
        "all shots accounted across slices and batches"
    );
    // metrics reflect the activity
    let metrics = DaemonClient::new(server.addr()).metrics().unwrap();
    assert!(metrics.contains("daemon_tasks_completed_total{class=\"production\"} 1"));
    assert!(metrics.contains("daemon_tasks_completed_total{class=\"development\"} 1"));
    assert!(metrics.contains("qpu_shots_total{device=\"fresnel-1\"} 90"));
}

#[test]
fn maintenance_mode_blocks_execution_but_not_queueing() {
    let (server, qpu) = stack(DaemonConfig::default());
    let client = DaemonClient::new(server.addr());
    qpu.set_status(QpuStatus::Maintenance);
    let session = client.open_session("ops", PriorityClass::Test).unwrap();
    let id = session.submit(&program(5), PatternHint::None).unwrap();
    // pumping dispatches and the device rejects → task fails loudly
    match session.wait(id, 5) {
        Err(ClientError::TaskFailed(m)) => assert!(m.contains("Maintenance"), "{m}"),
        other => panic!("expected maintenance failure, got {other:?}"),
    }
    // back to operational, a new submission succeeds
    qpu.set_status(QpuStatus::Operational);
    let r = session.run(&program(5), PatternHint::None).unwrap();
    assert_eq!(r.shots, 5);
}

#[test]
fn drift_between_validation_and_execution_is_caught_server_side() {
    let (server, qpu) = stack(DaemonConfig::default());
    let client = DaemonClient::new(server.addr());
    let session = client.open_session("dev", PriorityClass::Test).unwrap();

    // a program near the calibrated amplitude ceiling
    let reg = Register::linear(2, 6.0).unwrap();
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.3, 12.0, 0.0, 0.0).unwrap());
    let near_limit = ProgramIr::new(b.build().unwrap(), 5, "integration");

    // passes now…
    let r = session.run(&near_limit, PatternHint::None).unwrap();
    assert_eq!(r.shots, 5);

    // …then the laser degrades 20%: ceiling falls to ~10.05 rad/µs
    qpu.inject_rabi_fault(0.2);
    match session.submit(&near_limit, PatternHint::None) {
        Err(ClientError::Api {
            status: 422,
            message,
        }) => {
            assert!(message.contains("validation"), "{message}");
        }
        other => panic!("expected 422 validation rejection, got {other:?}"),
    }

    // recalibration restores the envelope and bumps the advertised revision
    qpu.recalibrate(600.0);
    assert_eq!(client.target().unwrap().revision, 2);
    assert!(session.run(&near_limit, PatternHint::None).is_ok());
}

#[test]
fn telemetry_history_is_queryable_through_the_daemon() {
    let qpu = VirtualQpu::new("fresnel-1", 5);
    let resource = Arc::new(QpuDirectResource::new("fresnel-1", qpu.clone(), 7));
    let svc = Arc::new(
        MiddlewareService::new(resource, DaemonConfig::default()).with_qpu_admin(qpu.clone()),
    );
    for _ in 0..5 {
        svc.advance_time(100.0);
    }
    let server = serve(svc).expect("binds");
    let (status, body) = hpcqc::middleware::http_request(
        server.addr(),
        "GET",
        "/v1/telemetry/qpu_rabi_scale?from=0&to=1000",
        None,
    )
    .unwrap();
    assert_eq!(status, 200);
    let points: Vec<hpcqc::telemetry::Point> = serde_json::from_str(&body).unwrap();
    assert_eq!(points.len(), 5);
    assert!(points.windows(2).all(|w| w[0].ts < w[1].ts));
}
