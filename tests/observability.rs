//! Integration: the §2.5/§3.6 observability loop across crates.
//!
//! QPU calibration → telemetry → drift detection → alert → admin
//! recalibration, with the QA probe closing the loop.

use hpcqc::qpu::{run_qa, VirtualQpu};
use hpcqc::telemetry::{
    Agg, AlertManager, AlertRule, AlertState, Cmp, CusumDetector, Detection, ZScoreDetector,
};

#[test]
fn injected_fade_is_detected_before_the_qa_probe_notices() {
    let qpu = VirtualQpu::new("fresnel-1", 404);
    let mut cusum = CusumDetector::new(40, 3e-3, 2e-2);
    let fault_start = 100usize;
    let mut detected: Option<usize> = None;
    for t in 0..240 {
        if (fault_start..fault_start + 30).contains(&t) {
            qpu.inject_rabi_fault(0.003); // ~9% fade over 30 ticks
        }
        qpu.advance_time(60.0);
        let v = qpu.tsdb().last("qpu_rabi_scale").unwrap().value;
        if detected.is_none() {
            if let Detection::Drift { .. } = cusum.update(v) {
                detected = Some(t);
            }
        }
    }
    let t = detected.expect("fade detected");
    assert!(
        t >= fault_start,
        "no false alarm before the fault (fired at {t})"
    );
    assert!(
        t < fault_start + 30,
        "caught during the fade, not after (fired at {t})"
    );
    // QA health barely moves for a ~9% Rabi error (quadratic suppression)
    let report = run_qa(&qpu, 2000, 0.03, 5).unwrap();
    assert!(
        report.health > 0.95,
        "QA probe insensitive to this fade: health {}",
        report.health
    );
}

#[test]
fn step_fault_caught_by_zscore_immediately() {
    let qpu = VirtualQpu::new("fresnel-1", 405);
    let mut z = ZScoreDetector::new(40, 5.0).with_min_std(1e-3);
    let mut fired_at = None;
    for t in 0..120 {
        if t == 60 {
            qpu.inject_rabi_fault(0.10);
        }
        qpu.advance_time(60.0);
        let v = qpu.tsdb().last("qpu_rabi_scale").unwrap().value;
        if fired_at.is_none() {
            if let Detection::Drift { .. } = z.update(v) {
                fired_at = Some(t);
            }
        }
    }
    assert_eq!(
        fired_at,
        Some(60),
        "step caught on the very first faulty sample"
    );
}

#[test]
fn alert_drives_recalibration_and_resolves() {
    let qpu = VirtualQpu::new("fresnel-1", 406);
    let mut mgr = AlertManager::new(qpu.tsdb().clone());
    mgr.add_rule(AlertRule {
        name: "rabi_low".into(),
        series: "qpu_rabi_scale".into(),
        window_secs: 600.0,
        cmp: Cmp::LessThan,
        threshold: 0.95,
        for_secs: 600.0,
    });
    let mut fired = false;
    let mut resolved = false;
    for t in 0..200 {
        if t == 50 {
            qpu.inject_rabi_fault(0.12);
        }
        qpu.advance_time(60.0);
        for ev in mgr.evaluate(qpu.now()) {
            match ev.state {
                AlertState::Firing => {
                    fired = true;
                    qpu.recalibrate(300.0);
                }
                AlertState::Inactive if fired => resolved = true,
                _ => {}
            }
        }
    }
    assert!(fired, "alert fired on the fault");
    assert!(resolved, "alert resolved after recalibration");
    let spec = qpu.current_spec();
    assert_eq!(
        spec.revision, 2,
        "recalibration bumped the advertised revision"
    );
}

#[test]
fn telemetry_supports_dashboard_queries() {
    let qpu = VirtualQpu::new("fresnel-1", 407);
    for _ in 0..100 {
        qpu.advance_time(60.0);
    }
    let db = qpu.tsdb();
    // all calibration series recorded
    for series in [
        "qpu_rabi_scale",
        "qpu_detuning_offset",
        "qpu_detection_error",
        "qpu_detection_error_prime",
    ] {
        assert_eq!(db.len(series), 100, "{series}");
    }
    // downsampled panel has one point per 10-minute window
    let panel = db.downsample("qpu_rabi_scale", 0.0, 6000.0, 600.0, Agg::Mean);
    assert_eq!(panel.len(), 10);
    // healthy stats: mean near 1, tight spread
    let (mean, std) = db.stats("qpu_rabi_scale", 0.0, 6000.0).unwrap();
    assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    assert!(std < 0.01, "std {std}");
}

#[test]
fn prometheus_exposition_is_scrape_compatible() {
    let qpu = VirtualQpu::new("fresnel-1", 408);
    qpu.advance_time(60.0);
    run_qa(&qpu, 50, 0.03, 1).unwrap();
    let text = qpu.registry().expose();
    // every series has HELP and TYPE preceding its samples
    let mut seen_meta: std::collections::HashSet<String> = Default::default();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().unwrap().to_string();
            seen_meta.insert(name);
        } else if !line.starts_with('#') && !line.is_empty() {
            let metric = line
                .split(['{', ' '])
                .next()
                .unwrap()
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                seen_meta.iter().any(|m| metric.starts_with(m.as_str())),
                "sample {line:?} lacks TYPE metadata"
            );
        }
    }
    assert!(text.contains("qpu_qa_health"));
}
