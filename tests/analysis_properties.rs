//! Cross-crate analyzer properties: the static pattern-inference heuristic
//! must recover the generator's ground-truth hints on the §2.3 workload
//! population, and the full pipeline must classify by the duty thresholds.

use hpcqc::analysis::{analyze, infer_from_durations, AnalyzerConfig};
use hpcqc::program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc::scheduler::PatternHint;
use hpcqc::workloads::{generate_population, PatternGenConfig};

fn base_ir(shots: u32) -> ProgramIr {
    let reg = Register::linear(2, 6.0).unwrap();
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
    ProgramIr::new(b.build().unwrap(), shots, "analysis-prop")
}

#[test]
fn inference_recovers_generator_hints_on_seeded_population() {
    let cfg = AnalyzerConfig::default();
    for seed in [7_u64, 41, 1999] {
        let jobs = generate_population(200, (1.0, 1.0, 1.0), &PatternGenConfig::default(), seed);
        let recovered = jobs
            .iter()
            .filter(|j| infer_from_durations(j.qpu_secs(), j.classical_secs(), &cfg) == j.hint)
            .count();
        // issue acceptance floor is 90 %; the nominal duties (0.9/0.1/0.5)
        // sit far from the 0.7/0.3 thresholds, so this holds with slack
        assert!(
            recovered * 10 >= jobs.len() * 9,
            "seed {seed}: recovered only {recovered}/{}",
            jobs.len()
        );
    }
}

#[test]
fn end_to_end_inference_follows_duty_thresholds() {
    let spec = DeviceSpec::analog_production();
    // 100 shots at the 1 Hz production shot rate ≈ 100 s of QPU wall-clock.
    let qc = analyze(&base_ir(100).with_classical_estimate(1.0), Some(&spec));
    assert_eq!(qc.facts.inferred_hint, Some(PatternHint::QcHeavy));

    let cc = analyze(&base_ir(100).with_classical_estimate(10_000.0), Some(&spec));
    assert_eq!(cc.facts.inferred_hint, Some(PatternHint::CcHeavy));

    let bal = analyze(&base_ir(100).with_classical_estimate(100.0), Some(&spec));
    assert_eq!(bal.facts.inferred_hint, Some(PatternHint::QcBalanced));
    let duty = bal.facts.qpu_duty.unwrap();
    assert!(duty > 0.3 && duty < 0.7, "duty {duty}");
}
