//! # hpcqc-sync — tracked locks for the control plane
//!
//! Every long-lived lock in the daemon, server, journal, telemetry and QRMI
//! layers is wrapped in a [`TrackedMutex`] / [`TrackedRwLock`]. The wrappers
//! add two things to a plain `parking_lot` lock:
//!
//! * **Always-on, cheap observability** — per-lock acquisition/contention
//!   counters plus log₂-bucketed wait-time and hold-time histograms
//!   ([`LockStats`]), exported through `telemetry` onto `GET /metrics`.
//!   The uncontended fast path is one `try_lock` and two `Instant::now`
//!   calls; histograms are plain relaxed atomic increments.
//! * **Lock-order checking (debug/test builds)** — each lock declares a
//!   static [`rank`](TrackedMutex::new) in the repo-wide hierarchy (see
//!   [`rank`] and DESIGN.md §14). Acquiring a lock whose rank is not strictly
//!   greater than every lock already held by the thread records a
//!   [`Violation`] with both acquisition sites. Independently, a global
//!   acquired-before graph ([`OrderTracker`]) detects cross-thread cycles
//!   that rank declarations alone would miss.
//!
//! Violations are recorded, queryable via [`violations`], and panic when
//! `HPCQC_LOCK_ORDER_PANIC=1` (the CI concurrency job sets it); recording
//! instead of panicking by default keeps the release binary unchanged and
//! the full test suite assertable ("clean run ⇒ zero violations").

mod order;
mod stats;
mod tracked;

pub use order::{CycleReport, OrderTracker, Violation, ViolationKind};
pub use stats::{all_lock_stats, histogram_quantile_ns, LockStats, BUCKETS};
pub use tracked::{
    clear_violations, held_locks, violations, TrackedMutex, TrackedMutexGuard, TrackedRwLock,
    TrackedRwLockReadGuard, TrackedRwLockWriteGuard,
};

/// The repo-wide lock hierarchy. A thread may only acquire locks in strictly
/// increasing rank order; the table lives here so every crate declares ranks
/// from one place (DESIGN.md §14 documents the reasoning per edge).
pub mod rank {
    /// Gateway routing table — outermost of all: the gateway picks a shard,
    /// drops the guard, and only then proxies into a daemon (which takes
    /// DISPATCH and everything below it on its own thread).
    pub const GATEWAY_ROUTES: u32 = 60;
    /// Dispatcher pump serialization — outermost: held across a whole pump.
    pub const DISPATCH: u32 = 100;
    /// Journal compaction gate (appends hold it shared; compaction holds it
    /// exclusive across snapshot + compact). Sits above DISPATCH because the
    /// dispatcher journals mid-pump, and below every state lock the snapshot
    /// reads.
    pub const COMPACT_GATE: u32 = 150;
    /// Session table (validated before queue admission).
    pub const SESSIONS: u32 = 200;
    /// The indexed task queue.
    pub const QUEUE: u32 = 300;
    /// In-flight (claimed) task set — always nested inside QUEUE or alone.
    pub const INFLIGHT: u32 = 400;
    /// Fairshare usage tracker (read under the queue lock for ranking).
    pub const FAIRSHARE: u32 = 480;
    /// Terminal task records.
    pub const RECORDS: u32 = 500;
    /// Per-task progress events.
    pub const PROGRESS: u32 = 550;
    /// Per-task failure diagnostics.
    pub const FAILURES: u32 = 600;
    /// Submit-time task metadata.
    pub const TASK_META: u32 = 650;
    /// Static-analysis warnings per task.
    pub const WARNINGS: u32 = 700;
    /// Device calibration cache.
    pub const DEV_CACHE: u32 = 750;
    /// Idempotency-key table.
    pub const IDEMPOTENCY: u32 = 800;
    /// Simulated clock (innermost of the daemon state locks).
    pub const CLOCK: u32 = 850;
    /// Replication role + lag (leader/follower flag, shipped-vs-acked gap).
    pub const REPLICATION: u32 = 860;
    /// Daemon lifecycle flags.
    pub const LIFECYCLE: u32 = 870;
    /// Admin-set device status strings (recovered / last-seen).
    pub const QPU_STATUS: u32 = 880;
    /// Journal group-commit buffer.
    pub const JOURNAL_BUF: u32 = 900;
    /// Journal deferred-batch queue (pushed under the buffer lock, drained
    /// before the WAL file is touched).
    pub const JOURNAL_PENDING: u32 = 910;
    /// Journal WAL file + fsync state (acquired after draining the buffer).
    pub const JOURNAL_FILE: u32 = 920;
    /// Journal shipping log (leader→follower stream buffer). Events are
    /// appended right after a WAL write or snapshot, so it nests inside
    /// JOURNAL_BUF/JOURNAL_FILE.
    pub const SHIP_LOG: u32 = 930;
    /// Server completion queue (event-loop handoff).
    pub const SERVER_COMPLETIONS: u32 = 940;
    /// QRMI fault-injection burst state (locks its RNG while held).
    pub const QRMI_WEATHER: u32 = 950;
    /// QRMI deterministic RNGs (fault + latency draws).
    pub const QRMI_RNG: u32 = 952;
    /// QRMI injected-fate table (tasks doomed to fail/stick).
    pub const QRMI_INJECTED: u32 = 954;
    /// QRMI fault counters.
    pub const QRMI_COUNTS: u32 = 956;
    /// QRMI instrumentation profile (op → count/seconds).
    pub const QRMI_PROFILE: u32 = 958;
    /// QRMI per-task shot table (instrumented timing).
    pub const QRMI_SHOTS: u32 = 959;
    /// QRMI backend task tables.
    pub const QRMI_TASKS: u32 = 960;
    /// QRMI emulator lease-token set.
    pub const QRMI_TOKENS: u32 = 962;
    /// QRMI direct-QPU exclusive lease.
    pub const QRMI_LEASE: u32 = 963;
    /// QRMI emulator kernel wall-clock profile.
    pub const QRMI_KERNEL: u32 = 964;
    /// QPU device state.
    pub const QPU_DEVICE: u32 = 970;
    /// Telemetry time-series store.
    pub const TSDB: u32 = 980;
    /// Telemetry metrics registry — innermost: metrics are recorded while
    /// holding almost anything else.
    pub const REGISTRY: u32 = 1000;
}
