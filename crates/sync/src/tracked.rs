//! Tracked lock wrappers: `parking_lot` locks plus stats and (in debug/test
//! builds) lock-order checking against the declared rank hierarchy.

use crate::order::{OrderTracker, Site, Violation};
use crate::stats::LockStats;
use std::cell::RefCell;
use std::panic::Location;
use std::sync::{Arc, Mutex as StdMutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global order-checking state (debug builds). The std mutex guarding the
// tracker is internal bookkeeping, deliberately outside the tracked world.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct HeldEntry {
    name: &'static str,
    rank: u32,
    site: Site,
    token: u64,
}

thread_local! {
    static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
}

fn global_tracker() -> &'static StdMutex<OrderTracker> {
    static TRACKER: OnceLock<StdMutex<OrderTracker>> = OnceLock::new();
    TRACKER.get_or_init(|| StdMutex::new(OrderTracker::new()))
}

fn global_violations() -> &'static StdMutex<Vec<Violation>> {
    static VIOLATIONS: OnceLock<StdMutex<Vec<Violation>>> = OnceLock::new();
    VIOLATIONS.get_or_init(|| StdMutex::new(Vec::new()))
}

fn panic_on_violation() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var("HPCQC_LOCK_ORDER_PANIC")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// Every ordering violation recorded so far in this process.
pub fn violations() -> Vec<Violation> {
    global_violations()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Drop recorded violations (test isolation).
pub fn clear_violations() {
    global_violations()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// The locks the calling thread currently holds, outermost first.
pub fn held_locks() -> Vec<(&'static str, u32)> {
    HELD.with(|h| h.borrow().iter().map(|e| (e.name, e.rank)).collect())
}

fn next_token() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Debug-build acquire hook: rank + cycle check, then push onto the held
/// stack. Returns the token used to unwind the stack on release.
fn order_enter(name: &'static str, rank: u32, site: Site) -> u64 {
    let token = next_token();
    if cfg!(debug_assertions) {
        let held = HELD.with(|h| h.borrow().clone());
        let held_view: Vec<(&'static str, u32, Site)> =
            held.iter().map(|e| (e.name, e.rank, e.site)).collect();
        let found = global_tracker()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .on_acquire(&held_view, (name, rank, site));
        if !found.is_empty() {
            let mut log = global_violations()
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for v in &found {
                log.push(v.clone());
            }
            drop(log);
            if panic_on_violation() && !std::thread::panicking() {
                panic!("lock-order violation: {}", found[0]);
            }
        }
        HELD.with(|h| {
            h.borrow_mut().push(HeldEntry {
                name,
                rank,
                site,
                token,
            })
        });
    }
    token
}

fn order_exit(token: u64) {
    if cfg!(debug_assertions) {
        HELD.with(|h| h.borrow_mut().retain(|e| e.token != token));
    }
}

// ---------------------------------------------------------------------------
// TrackedMutex
// ---------------------------------------------------------------------------

/// A `parking_lot::Mutex` with a name, a rank in the repo-wide hierarchy
/// (see [`crate::rank`]), always-on stats and debug-build order checking.
pub struct TrackedMutex<T: ?Sized> {
    name: &'static str,
    rank: u32,
    stats: Arc<LockStats>,
    inner: parking_lot::Mutex<T>,
}

pub struct TrackedMutexGuard<'a, T: ?Sized> {
    // Hold time is recorded in Drop::drop, which runs before the field drop
    // that actually unlocks — the sample never includes post-unlock work.
    inner: parking_lot::MutexGuard<'a, T>,
    stats: &'a LockStats,
    acquired: Instant,
    token: u64,
}

impl<T> TrackedMutex<T> {
    pub fn new(name: &'static str, rank: u32, value: T) -> Self {
        TrackedMutex {
            name,
            rank,
            stats: LockStats::register(name, rank),
            inner: parking_lot::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// This lock's live stats handle (shared with the global registry).
    pub fn stats(&self) -> &Arc<LockStats> {
        &self.stats
    }

    #[track_caller]
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        let site = Location::caller();
        let (inner, wait_ns, contended) = match self.inner.try_lock() {
            Some(g) => (g, 0, false),
            None => {
                let t0 = Instant::now();
                let g = self.inner.lock();
                (g, t0.elapsed().as_nanos() as u64, true)
            }
        };
        self.stats.record_acquire(wait_ns, contended);
        let token = order_enter(self.name, self.rank, site);
        TrackedMutexGuard {
            inner,
            stats: &self.stats,
            acquired: Instant::now(),
            token,
        }
    }

    #[track_caller]
    pub fn try_lock(&self) -> Option<TrackedMutexGuard<'_, T>> {
        let site = Location::caller();
        let inner = self.inner.try_lock()?;
        self.stats.record_acquire(0, false);
        let token = order_enter(self.name, self.rank, site);
        Some(TrackedMutexGuard {
            inner,
            stats: &self.stats,
            acquired: Instant::now(),
            token,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("name", &self.name)
            .field("data", &&self.inner)
            .finish()
    }
}

impl<T: ?Sized> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.stats
            .record_hold(self.acquired.elapsed().as_nanos() as u64);
        order_exit(self.token);
    }
}

// ---------------------------------------------------------------------------
// TrackedRwLock
// ---------------------------------------------------------------------------

/// A `parking_lot::RwLock` with the same tracking as [`TrackedMutex`].
/// Read and write acquisitions share one rank and one stats stream.
pub struct TrackedRwLock<T: ?Sized> {
    name: &'static str,
    rank: u32,
    stats: Arc<LockStats>,
    inner: parking_lot::RwLock<T>,
}

pub struct TrackedRwLockReadGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    stats: &'a LockStats,
    acquired: Instant,
    token: u64,
}

pub struct TrackedRwLockWriteGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    stats: &'a LockStats,
    acquired: Instant,
    token: u64,
}

impl<T> TrackedRwLock<T> {
    pub fn new(name: &'static str, rank: u32, value: T) -> Self {
        TrackedRwLock {
            name,
            rank,
            stats: LockStats::register(name, rank),
            inner: parking_lot::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn stats(&self) -> &Arc<LockStats> {
        &self.stats
    }

    #[track_caller]
    pub fn read(&self) -> TrackedRwLockReadGuard<'_, T> {
        let site = Location::caller();
        // Fast path mirrors TrackedMutex::lock: an immediate grant is wait 0
        // and NOT contended — timing the blocking call unconditionally would
        // report every acquisition as contended (sub-µs clock reads are
        // never exactly zero).
        let (inner, wait) = match self.inner.try_read() {
            Some(g) => (g, 0),
            None => {
                let t0 = Instant::now();
                let g = self.inner.read();
                (g, t0.elapsed().as_nanos() as u64)
            }
        };
        self.stats.record_acquire(wait, wait > 0);
        let token = order_enter(self.name, self.rank, site);
        TrackedRwLockReadGuard {
            inner,
            stats: &self.stats,
            acquired: Instant::now(),
            token,
        }
    }

    #[track_caller]
    pub fn write(&self) -> TrackedRwLockWriteGuard<'_, T> {
        let site = Location::caller();
        let (inner, wait) = match self.inner.try_write() {
            Some(g) => (g, 0),
            None => {
                let t0 = Instant::now();
                let g = self.inner.write();
                (g, t0.elapsed().as_nanos() as u64)
            }
        };
        self.stats.record_acquire(wait, wait > 0);
        let token = order_enter(self.name, self.rank, site);
        TrackedRwLockWriteGuard {
            inner,
            stats: &self.stats,
            acquired: Instant::now(),
            token,
        }
    }
}

impl<T: ?Sized> std::ops::Deref for TrackedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for TrackedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.stats
            .record_hold(self.acquired.elapsed().as_nanos() as u64);
        order_exit(self.token);
    }
}

impl<T: ?Sized> std::ops::Deref for TrackedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for TrackedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.stats
            .record_hold(self.acquired.elapsed().as_nanos() as u64);
        order_exit(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::ViolationKind;

    #[test]
    fn tracked_mutex_round_trip_records_stats() {
        let m = TrackedMutex::new("tracked.test.roundtrip", 1, 0u32);
        {
            let mut g = m.lock();
            *g += 41;
        }
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert!(m.stats().acquisitions() >= 3);
        assert_eq!(m.stats().contended(), 0);
        let held: u64 = m.stats().hold_histogram().iter().sum();
        assert!(held >= 3);
    }

    #[test]
    fn contention_is_counted() {
        let m = std::sync::Arc::new(TrackedMutex::new("tracked.test.contention", 1, ()));
        let m2 = std::sync::Arc::clone(&m);
        let g = m.lock();
        let h = std::thread::spawn(move || {
            let _g = m2.lock(); // must wait for the main thread to release
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(g);
        h.join().unwrap();
        assert_eq!(m.stats().contended(), 1);
        let wait = m.stats().wait_histogram();
        // ~20 ms wait lands well above the 2^20 ns (≈1 ms) bucket.
        assert!(
            wait[20..].iter().sum::<u64>() >= 1,
            "wait histogram: {wait:?}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn seeded_rank_inversion_is_reported_with_sites() {
        let hi = TrackedMutex::new("tracked.test.inv.hi", 200, ());
        let lo = TrackedMutex::new("tracked.test.inv.lo", 100, ());
        let _g_hi = hi.lock();
        let _g_lo = lo.lock(); // inversion: rank 100 under rank 200
        drop((_g_lo, _g_hi));
        let v: Vec<_> = violations()
            .into_iter()
            .filter(|v| v.lock == "tracked.test.inv.lo" && v.held_lock == "tracked.test.inv.hi")
            .collect();
        assert!(!v.is_empty(), "inversion not recorded");
        assert_eq!(v[0].kind, ViolationKind::RankInversion);
        assert!(v[0].site.file().ends_with("tracked.rs"));
        assert!(v[0].held_site.file().ends_with("tracked.rs"));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rank_respecting_nesting_is_clean() {
        let a = TrackedMutex::new("tracked.test.clean.a", 10, ());
        let b = TrackedRwLock::new("tracked.test.clean.b", 20, ());
        {
            let _ga = a.lock();
            let _gb = b.write();
            assert_eq!(held_locks().len(), 2);
        }
        assert!(held_locks().is_empty());
        assert!(
            !violations()
                .iter()
                .any(|v| v.lock.starts_with("tracked.test.clean")),
            "clean nesting flagged"
        );
    }
}
