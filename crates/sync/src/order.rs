//! Lock-order analysis core: static rank checking plus a dynamic
//! acquired-before graph with cycle detection.
//!
//! [`OrderTracker`] is deliberately pure (no globals, no thread-locals): it
//! takes "thread T holds these locks and now acquires this one" and returns
//! the violations that acquisition introduces. The `tracked` module feeds it
//! from real guards; the proptest suite feeds it synthetic schedules.

use std::collections::HashMap;
use std::panic::Location;

/// A static acquisition site (file:line:column of the `lock()` call).
pub type Site = &'static Location<'static>;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A lock was acquired whose rank is not strictly greater than one
    /// already held by the same thread (includes same-lock reacquisition).
    RankInversion,
    /// The new acquired-before edge closes a cross-thread cycle.
    CycleDetected,
}

/// One detected ordering violation, with both acquisition sites.
#[derive(Clone, Debug)]
pub struct Violation {
    pub kind: ViolationKind,
    /// The lock being acquired and where.
    pub lock: &'static str,
    pub rank: u32,
    pub site: Site,
    /// The already-held lock that conflicts, and where it was acquired.
    pub held_lock: &'static str,
    pub held_rank: u32,
    pub held_site: Site,
    /// For cycles: the lock-name path `lock → … → held_lock` that, together
    /// with the new `held_lock → lock` edge, forms the cycle.
    pub cycle: Option<CycleReport>,
}

#[derive(Clone, Debug)]
pub struct CycleReport {
    pub path: Vec<&'static str>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            ViolationKind::RankInversion => write!(
                f,
                "rank inversion: acquired '{}' (rank {}) at {} while holding '{}' (rank {}) \
                 acquired at {}",
                self.lock, self.rank, self.site, self.held_lock, self.held_rank, self.held_site
            ),
            ViolationKind::CycleDetected => {
                write!(
                    f,
                    "acquired-before cycle: acquiring '{}' at {} while holding '{}' (acquired \
                     at {}) closes cycle",
                    self.lock, self.site, self.held_lock, self.held_site
                )?;
                if let Some(c) = &self.cycle {
                    write!(f, " [{}]", c.path.join(" → "))?;
                }
                Ok(())
            }
        }
    }
}

struct Edge {
    from_site: Site,
    to_site: Site,
}

/// The dynamic acquired-before graph. Nodes are lock names; an edge A → B
/// means some thread acquired B while holding A. A cycle means two threads
/// can deadlock even if each individual schedule looked fine.
#[derive(Default)]
pub struct OrderTracker {
    edges: HashMap<&'static str, HashMap<&'static str, Edge>>,
}

impl OrderTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a thread holding `held` (outermost first) acquires `new`.
    /// Returns every violation this acquisition introduces.
    pub fn on_acquire(
        &mut self,
        held: &[(&'static str, u32, Site)],
        new: (&'static str, u32, Site),
    ) -> Vec<Violation> {
        let (new_name, new_rank, new_site) = new;
        let mut out = Vec::new();

        // Static check: rank must exceed every held rank. Report against the
        // highest-ranked held lock (the tightest constraint).
        if let Some(&(h_name, h_rank, h_site)) = held
            .iter()
            .filter(|(_, r, _)| *r >= new_rank)
            .max_by_key(|(_, r, _)| *r)
        {
            out.push(Violation {
                kind: ViolationKind::RankInversion,
                lock: new_name,
                rank: new_rank,
                site: new_site,
                held_lock: h_name,
                held_rank: h_rank,
                held_site: h_site,
                cycle: None,
            });
        }

        // Dynamic check: inserting held → new must not close a cycle.
        for &(h_name, h_rank, h_site) in held {
            if h_name == new_name {
                continue; // reacquisition already reported above
            }
            if let Some(path) = self.path_between(new_name, h_name) {
                out.push(Violation {
                    kind: ViolationKind::CycleDetected,
                    lock: new_name,
                    rank: new_rank,
                    site: new_site,
                    held_lock: h_name,
                    held_rank: h_rank,
                    held_site: h_site,
                    cycle: Some(CycleReport { path }),
                });
            }
            self.edges
                .entry(h_name)
                .or_default()
                .entry(new_name)
                .or_insert(Edge {
                    from_site: h_site,
                    to_site: new_site,
                });
        }
        out
    }

    /// First acquisition sites recorded for an edge, if present.
    pub fn edge_sites(&self, from: &str, to: &str) -> Option<(Site, Site)> {
        self.edges
            .get(from)?
            .get(to)
            .map(|e| (e.from_site, e.to_site))
    }

    /// DFS: a path `from → … → to` through existing edges.
    fn path_between(&self, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
        let mut stack = vec![vec![from]];
        let mut seen = std::collections::HashSet::new();
        seen.insert(from);
        while let Some(path) = stack.pop() {
            let node = *path.last().expect("non-empty path");
            if node == to {
                return Some(path);
            }
            if let Some(next) = self.edges.get(node) {
                for &n in next.keys() {
                    if seen.insert(n) {
                        let mut p = path.clone();
                        p.push(n);
                        stack.push(p);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> Site {
        Location::caller()
    }

    #[test]
    fn increasing_ranks_are_clean() {
        let mut t = OrderTracker::new();
        let s = site();
        assert!(t.on_acquire(&[], ("a", 10, s)).is_empty());
        assert!(t.on_acquire(&[("a", 10, s)], ("b", 20, s)).is_empty());
        assert!(t
            .on_acquire(&[("a", 10, s), ("b", 20, s)], ("c", 30, s))
            .is_empty());
    }

    #[test]
    fn rank_inversion_reports_both_sites() {
        let mut t = OrderTracker::new();
        let s_held = site();
        let s_new = site();
        let v = t.on_acquire(&[("b", 20, s_held)], ("a", 10, s_new));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::RankInversion);
        assert_eq!(v[0].lock, "a");
        assert_eq!(v[0].held_lock, "b");
        assert!(std::ptr::eq(v[0].site, s_new));
        assert!(std::ptr::eq(v[0].held_site, s_held));
        let shown = v[0].to_string();
        assert!(shown.contains(&s_new.to_string()) && shown.contains(&s_held.to_string()));
    }

    #[test]
    fn cross_thread_cycle_is_detected() {
        let mut t = OrderTracker::new();
        let s = site();
        // Thread 1: a then b. Thread 2: b then a — closes a cycle even
        // though, with equal-free ranks, each edge alone looks fine.
        assert!(t.on_acquire(&[("a", 1, s)], ("b", 2, s)).is_empty());
        let v = t.on_acquire(&[("b", 2, s)], ("a", 1, s));
        assert!(
            v.iter().any(|v| v.kind == ViolationKind::CycleDetected),
            "{v:?}"
        );
        let cyc = v
            .iter()
            .find(|v| v.kind == ViolationKind::CycleDetected)
            .unwrap();
        assert_eq!(cyc.cycle.as_ref().unwrap().path, vec!["a", "b"]);
    }

    #[test]
    fn reacquisition_is_an_inversion() {
        let mut t = OrderTracker::new();
        let s = site();
        let v = t.on_acquire(&[("a", 10, s)], ("a", 10, s));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::RankInversion);
    }
}
