//! Always-on per-lock statistics: acquisition/contention counters and
//! log₂-bucketed wait/hold-time histograms, cheap enough for release builds
//! (relaxed atomic increments; the uncontended acquire path records a single
//! zero-wait sample).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Histogram bucket count. Bucket `i` counts samples in `[2^i, 2^{i+1})` ns
/// (bucket 0 also takes 0 ns), so 40 buckets span ~18 minutes.
pub const BUCKETS: usize = 40;

fn bucket_of(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize)
        .saturating_sub(1)
        .min(BUCKETS - 1)
}

/// Shared statistics for one tracked lock. Handed out as `Arc`s; the global
/// registry keeps `Weak`s so dropped locks (per-test daemons) age out.
pub struct LockStats {
    pub name: &'static str,
    pub rank: u32,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_hist: [AtomicU64; BUCKETS],
    hold_hist: [AtomicU64; BUCKETS],
}

fn registry() -> &'static Mutex<Vec<Weak<LockStats>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<LockStats>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

impl LockStats {
    /// Create stats for a lock and register them globally.
    pub(crate) fn register(name: &'static str, rank: u32) -> Arc<LockStats> {
        let stats = Arc::new(LockStats {
            name,
            rank,
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            hold_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        });
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.retain(|w| w.strong_count() > 0);
        reg.push(Arc::downgrade(&stats));
        stats
    }

    pub(crate) fn record_acquire(&self, wait_ns: u64, contended: bool) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
        self.wait_hist[bucket_of(wait_ns)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_hold(&self, hold_ns: u64) {
        self.hold_hist[bucket_of(hold_ns)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    pub fn wait_histogram(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.wait_hist[i].load(Ordering::Relaxed))
    }

    pub fn hold_histogram(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.hold_hist[i].load(Ordering::Relaxed))
    }
}

/// Snapshot every live tracked lock's stats (prunes dead registrations).
pub fn all_lock_stats() -> Vec<Arc<LockStats>> {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.retain(|w| w.strong_count() > 0);
    reg.iter().filter_map(Weak::upgrade).collect()
}

/// Approximate quantile from a log₂ histogram: the upper bound of the bucket
/// containing the q-th sample (an upper estimate, good to 2×).
pub fn histogram_quantile_ns(hist: &[u64; BUCKETS], q: f64) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= target {
            return (1u64 << (i + 1).min(63)) as f64;
        }
    }
    (1u64 << BUCKETS.min(63)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_histogram() {
        let mut hist = [0u64; BUCKETS];
        hist[0] = 90; // ≤2 ns
        hist[10] = 10; // ~1-2 µs
        assert_eq!(histogram_quantile_ns(&hist, 0.5), 2.0);
        assert_eq!(histogram_quantile_ns(&hist, 0.99), 2048.0);
        assert_eq!(histogram_quantile_ns(&[0; BUCKETS], 0.5), 0.0);
    }

    #[test]
    fn registry_prunes_dropped_locks() {
        let a = LockStats::register("stats.test.a", 1);
        a.record_acquire(100, true);
        a.record_hold(1_000);
        let live = all_lock_stats();
        assert!(live.iter().any(|s| s.name == "stats.test.a"));
        drop(live);
        drop(a);
        assert!(!all_lock_stats().iter().any(|s| s.name == "stats.test.a"));
    }
}
