//! Property tests for the acquired-before cycle detector and rank checker:
//! rank-respecting schedules are never flagged; every seeded inversion is;
//! and closing any acquired-before chain produces a cycle report.

use hpcqc_sync::{OrderTracker, ViolationKind};
use proptest::prelude::*;
use std::panic::Location;

type Site = &'static Location<'static>;

#[track_caller]
fn here() -> Site {
    Location::caller()
}

const NAMES: [&str; 16] = [
    "prop.l0", "prop.l1", "prop.l2", "prop.l3", "prop.l4", "prop.l5", "prop.l6", "prop.l7",
    "prop.l8", "prop.l9", "prop.l10", "prop.l11", "prop.l12", "prop.l13", "prop.l14", "prop.l15",
];

/// Rank of lock `i`: distinct, increasing with index.
fn rank(i: usize) -> u32 {
    (i as u32 + 1) * 10
}

/// A schedule is a list of per-thread acquisition stacks; each stack is a
/// strictly increasing list of lock indices (so it respects the ranks).
fn ascending_stacks() -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0usize..NAMES.len(), 1..6), 1..8).prop_map(
        |stacks| {
            stacks
                .into_iter()
                .map(|mut s| {
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect()
        },
    )
}

fn feed_stack(tracker: &mut OrderTracker, stack: &[usize], site: Site) -> Vec<ViolationKind> {
    let mut held: Vec<(&'static str, u32, Site)> = Vec::new();
    let mut kinds = Vec::new();
    for &i in stack {
        let new = (NAMES[i], rank(i), site);
        kinds.extend(tracker.on_acquire(&held, new).into_iter().map(|v| v.kind));
        held.push(new);
    }
    kinds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Threads that acquire in ascending rank order — interleaved in any
    /// way — must never be flagged, by either the rank or the cycle check.
    #[test]
    fn rank_respecting_schedules_are_never_flagged(stacks in ascending_stacks()) {
        let mut tracker = OrderTracker::new();
        for stack in &stacks {
            let kinds = feed_stack(&mut tracker, stack, here());
            prop_assert!(kinds.is_empty(), "clean schedule flagged: {kinds:?}");
        }
    }

    /// Injecting a single out-of-order acquisition into an otherwise clean
    /// schedule is always reported as a rank inversion against the right
    /// held lock, carrying both acquisition sites.
    #[test]
    fn every_seeded_inversion_is_flagged(
        stacks in ascending_stacks(),
        pick in 0usize..64,
    ) {
        let mut tracker = OrderTracker::new();
        for stack in &stacks {
            feed_stack(&mut tracker, stack, here());
        }
        // Seed the inversion on a fresh "thread": hold lock `hi`, then
        // acquire a strictly lower-ranked `lo`.
        let hi = 1 + pick % (NAMES.len() - 1);
        let lo = pick % hi;
        let held_site = here();
        let acquire_site = here();
        let held = [(NAMES[hi], rank(hi), held_site)];
        let found = tracker.on_acquire(&held, (NAMES[lo], rank(lo), acquire_site));
        let inv: Vec<_> =
            found.iter().filter(|v| v.kind == ViolationKind::RankInversion).collect();
        prop_assert_eq!(inv.len(), 1, "inversion not flagged: {:?}", found);
        prop_assert_eq!(inv[0].lock, NAMES[lo]);
        prop_assert_eq!(inv[0].held_lock, NAMES[hi]);
        prop_assert!(std::ptr::eq(inv[0].site, acquire_site));
        prop_assert!(std::ptr::eq(inv[0].held_site, held_site));
    }

    /// Build an acquired-before chain l0 → l1 → … → lk across separate
    /// threads, then close it (hold lk, acquire l0): the cycle detector
    /// must report a cycle whatever the chain length.
    #[test]
    fn closing_any_chain_reports_a_cycle(len in 2usize..NAMES.len()) {
        let mut tracker = OrderTracker::new();
        let s = here();
        for i in 0..len - 1 {
            // Separate threads: each holds only one lock, so every edge is
            // rank-clean on its own.
            let held = [(NAMES[i], rank(i), s)];
            let v = tracker.on_acquire(&held, (NAMES[i + 1], rank(i + 1), s));
            prop_assert!(v.is_empty(), "chain edge flagged early: {v:?}");
        }
        let held = [(NAMES[len - 1], rank(len - 1), s)];
        let found = tracker.on_acquire(&held, (NAMES[0], rank(0), s));
        let cycle = found.iter().find(|v| v.kind == ViolationKind::CycleDetected);
        prop_assert!(cycle.is_some(), "cycle not reported: {found:?}");
        let path = &cycle.unwrap().cycle.as_ref().unwrap().path;
        prop_assert_eq!(path.first().copied(), Some(NAMES[0]));
        prop_assert_eq!(path.last().copied(), Some(NAMES[len - 1]));
    }
}
