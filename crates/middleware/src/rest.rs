//! REST API: routes over the daemon service.
//!
//! The JSON protocol spoken between the runtime's session client and the
//! daemon. Routes (all JSON unless noted):
//!
//! ```text
//! POST   /v1/sessions                {user, class}        → {token}
//! DELETE /v1/sessions/{token}                             → {}
//! GET    /v1/sessions                                     → [Session]   (admin)
//! GET    /v1/target                                       → DeviceSpec
//! POST   /v1/tasks                   {token, ir, hint,
//!                                     idempotency_key?}   → {task_id}
//! POST   /v1/tasks:batch             [SubmitReq, ...]     → [slot, ...]
//! GET    /v1/tasks/{id}                                   → DaemonTaskStatus
//! GET    /v1/tasks/{id}/warnings                          → {warnings: [str]}
//! GET    /v1/tasks/{id}/result                            → SampleResult
//! DELETE /v1/tasks/{id}?token=T                           → {}
//! POST   /v1/pump                    {}                   → {dispatched} (drives the queue)
//! GET    /v1/healthz                                      → {status} (503 while draining)
//! GET    /v1/readyz                                       → ReadinessReport (503 unless a serving leader)
//! GET    /metrics                                         → Prometheus text
//! GET    /v1/admin/qpu/status                             → {status}
//! POST   /v1/admin/qpu/status        {status}             → {}
//! POST   /v1/admin/qpu/recalibrate   {duration_secs}      → {}
//! GET    /v1/telemetry/{series}?from=&to=                 → [Point]
//! ```
//!
//! **Content negotiation.** The submit-path routes (`POST /v1/tasks`,
//! `POST /v1/tasks:batch`) also speak the length-prefixed binary codec
//! from `hpcqc-wire`: a request with `Content-Type:
//! application/x-hpcqc-bin` carries a Submit/SubmitBatch frame and is
//! answered with a TaskId/BatchReply (or Error) frame in the same
//! encoding. `GET /v1/tasks/{id}` and `GET /v1/tasks/{id}/result` answer
//! binary Status/Result frames when the client sends `Accept:
//! application/x-hpcqc-bin`. JSON remains the default everywhere; an
//! unrecognized `Content-Type` on a submit route is refused with `415`
//! so older clients (and clients probing a JSON-only deployment) can fall
//! back deterministically.

use crate::daemon::{DaemonError, DaemonTaskStatus, MiddlewareService, SubmitItem};
use crate::http::{Handler, Request, Response};
use crate::server::{HttpServer, ServerConfig};
use crate::session::PriorityClass;
use hpcqc_program::ProgramIr;
use hpcqc_qpu::QpuStatus;
use hpcqc_scheduler::PatternHint;
use hpcqc_telemetry::TransportMetrics;
use hpcqc_wire as wire;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

#[derive(Debug, Serialize, Deserialize)]
struct OpenSessionReq {
    user: String,
    class: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct SubmitReq {
    token: String,
    ir: ProgramIr,
    #[serde(default)]
    hint: Option<String>,
    /// Client-chosen dedup key: retrying a submit with the same key returns
    /// the originally assigned task id (survives daemon restarts).
    #[serde(default)]
    idempotency_key: Option<String>,
}

#[derive(Debug, Serialize, Deserialize)]
struct StatusReq {
    status: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct RecalibrateReq {
    duration_secs: f64,
}

fn daemon_status(e: &DaemonError) -> u16 {
    match e {
        DaemonError::Session(_) => 401,
        DaemonError::Forbidden(_) => 403,
        DaemonError::UnknownTask(_) => 404,
        DaemonError::Validation(_) => 422,
        DaemonError::Queue(_) => 409,
        DaemonError::Unavailable(_) => 503,
        DaemonError::Internal(_) => 500,
    }
}

fn err_response(e: &DaemonError) -> Response {
    Response::json(
        daemon_status(e),
        serde_json::json!({ "error": e.to_string() }).to_string(),
    )
}

fn bad_request(msg: &str) -> Response {
    Response::json(400, serde_json::json!({ "error": msg }).to_string())
}

/// The request body's media type, parameters (`; charset=...`) stripped.
/// Absent means JSON — that's what every pre-binary client sends.
fn content_type(req: &Request) -> &str {
    req.headers
        .get("content-type")
        .map(|v| v.split(';').next().unwrap_or("").trim())
        .unwrap_or("")
}

/// Whether the client asked for a binary reply (`Accept:
/// application/x-hpcqc-bin`) on a GET route.
fn wants_binary_reply(req: &Request) -> bool {
    req.headers.get("accept").is_some_and(|v| {
        v.split(',')
            .any(|p| p.split(';').next().unwrap_or("").trim() == wire::CONTENT_TYPE_BIN)
    })
}

/// An error in the binary framing the client negotiated: HTTP status for
/// routers/metrics, an Error frame in the body for the SDK.
fn bin_error(status: u16, msg: &str) -> Response {
    Response::bytes(
        status,
        wire::CONTENT_TYPE_BIN,
        wire::encode_error(status, msg),
    )
}

fn parse_hint(h: Option<&str>) -> Option<PatternHint> {
    match h {
        None => Some(PatternHint::None),
        Some(h) => PatternHint::parse(h),
    }
}

const HINT_ERR: &str = "hint must be qc-heavy|cc-heavy|qc-balanced|none";

fn to_wire_status(s: &DaemonTaskStatus) -> wire::WireStatus {
    match s {
        DaemonTaskStatus::Queued { position } => wire::WireStatus::Queued {
            position: *position,
        },
        DaemonTaskStatus::Running => wire::WireStatus::Running,
        DaemonTaskStatus::Completed => wire::WireStatus::Completed,
        DaemonTaskStatus::Failed(m) => wire::WireStatus::Failed(m.clone()),
        DaemonTaskStatus::Cancelled => wire::WireStatus::Cancelled,
    }
}

/// One slot of a JSON batch-submit reply (the JSON mirror of the binary
/// BatchReply frame): `{"task_id": n}` or `{"status": s, "error": msg}`.
fn slot_json(s: &wire::BatchSlot) -> serde_json::Value {
    match s {
        wire::BatchSlot::Ok { task_id } => serde_json::json!({ "task_id": task_id }),
        wire::BatchSlot::Err { status, message } => {
            serde_json::json!({ "status": status, "error": message })
        }
    }
}

fn outcome_slots(outcomes: Vec<Result<u64, DaemonError>>) -> Vec<wire::BatchSlot> {
    outcomes
        .into_iter()
        .map(|o| match o {
            Ok(id) => wire::BatchSlot::Ok { task_id: id },
            Err(e) => wire::BatchSlot::Err {
                status: daemon_status(&e),
                message: e.to_string(),
            },
        })
        .collect()
}

/// Run a batch of submit frames through [`MiddlewareService::submit_batch`],
/// producing one order-preserving slot per frame. Frames with an
/// unparseable hint get their error slot here and never reach the daemon.
fn submit_frames(svc: &MiddlewareService, frames: Vec<wire::SubmitFrame>) -> Vec<wire::BatchSlot> {
    let mut slots: Vec<Option<wire::BatchSlot>> = (0..frames.len()).map(|_| None).collect();
    let mut items = Vec::with_capacity(frames.len());
    let mut item_slot = Vec::with_capacity(frames.len());
    for (i, f) in frames.into_iter().enumerate() {
        match parse_hint(f.hint.as_deref()) {
            Some(hint) => {
                items.push(SubmitItem {
                    token: f.token,
                    ir: f.ir,
                    hint,
                    idempotency_key: f.idempotency_key,
                });
                item_slot.push(i);
            }
            None => {
                slots[i] = Some(wire::BatchSlot::Err {
                    status: 400,
                    message: HINT_ERR.into(),
                });
            }
        }
    }
    for (j, slot) in outcome_slots(svc.submit_batch(items))
        .into_iter()
        .enumerate()
    {
        slots[item_slot[j]] = Some(slot);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every frame got a slot"))
        .collect()
}

/// Route one request against the service.
pub fn route(svc: &MiddlewareService, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "sessions"]) => {
            let Ok(body) = req.body_str() else {
                return bad_request("body not UTF-8");
            };
            let Ok(open): Result<OpenSessionReq, _> = serde_json::from_str(body) else {
                return bad_request("expected {user, class}");
            };
            let Some(class) = PriorityClass::parse(&open.class) else {
                return bad_request("class must be production|test|development");
            };
            match svc.open_session(&open.user, class) {
                Ok(token) => Response::json(201, serde_json::json!({ "token": token }).to_string()),
                Err(e) => err_response(&e),
            }
        }
        ("DELETE", ["v1", "sessions", token]) => match svc.close_session(token) {
            Ok(()) => Response::json(200, "{}"),
            Err(e) => err_response(&e),
        },
        ("GET", ["v1", "sessions"]) => {
            let sessions = svc.list_sessions();
            Response::json(
                200,
                serde_json::to_string(&sessions).expect("sessions serialize"),
            )
        }
        ("GET", ["v1", "target"]) => match svc.device_spec() {
            Ok(spec) => Response::json(200, serde_json::to_string(&spec).expect("spec serializes")),
            Err(e) => err_response(&e),
        },
        ("POST", ["v1", "tasks"]) => match content_type(req) {
            wire::CONTENT_TYPE_BIN => match wire::decode_submit(&req.body) {
                Err(e) => bin_error(400, &format!("bad submit frame: {e}")),
                Ok(frame) => {
                    let Some(hint) = parse_hint(frame.hint.as_deref()) else {
                        return bin_error(400, HINT_ERR);
                    };
                    match svc.submit_with_key(
                        &frame.token,
                        frame.ir,
                        hint,
                        frame.idempotency_key.as_deref(),
                    ) {
                        Ok(id) => {
                            Response::bytes(201, wire::CONTENT_TYPE_BIN, wire::encode_task_id(id))
                        }
                        Err(e) => bin_error(daemon_status(&e), &e.to_string()),
                    }
                }
            },
            "" | "application/json" => {
                let Ok(body) = req.body_str() else {
                    return bad_request("body not UTF-8");
                };
                let submit: SubmitReq = match serde_json::from_str(body) {
                    Ok(s) => s,
                    Err(e) => return bad_request(&format!("bad submit body: {e}")),
                };
                let Some(hint) = parse_hint(submit.hint.as_deref()) else {
                    return bad_request(HINT_ERR);
                };
                match svc.submit_with_key(
                    &submit.token,
                    submit.ir,
                    hint,
                    submit.idempotency_key.as_deref(),
                ) {
                    Ok(id) => Response::json(201, serde_json::json!({ "task_id": id }).to_string()),
                    Err(e) => err_response(&e),
                }
            }
            other => Response::json(
                415,
                serde_json::json!({ "error": format!("unsupported content type {other:?}") })
                    .to_string(),
            ),
        },
        ("POST", ["v1", "tasks:batch"]) => match content_type(req) {
            wire::CONTENT_TYPE_BIN => match wire::decode_submit_batch(&req.body) {
                Err(e) => bin_error(400, &format!("bad batch frame: {e}")),
                Ok(frames) => {
                    let slots = submit_frames(svc, frames);
                    Response::bytes(
                        200,
                        wire::CONTENT_TYPE_BIN,
                        wire::encode_batch_reply(&slots),
                    )
                }
            },
            "" | "application/json" => {
                let Ok(body) = req.body_str() else {
                    return bad_request("body not UTF-8");
                };
                let reqs: Vec<SubmitReq> = match serde_json::from_str(body) {
                    Ok(r) => r,
                    Err(e) => return bad_request(&format!("bad batch body: {e}")),
                };
                if reqs.len() > wire::MAX_BATCH_FRAMES {
                    return bad_request(&format!(
                        "batch of {} exceeds the {}-frame cap",
                        reqs.len(),
                        wire::MAX_BATCH_FRAMES
                    ));
                }
                let frames = reqs
                    .into_iter()
                    .map(|r| wire::SubmitFrame {
                        token: r.token,
                        hint: r.hint,
                        idempotency_key: r.idempotency_key,
                        ir: r.ir,
                    })
                    .collect();
                let slots: Vec<serde_json::Value> =
                    submit_frames(svc, frames).iter().map(slot_json).collect();
                Response::json(200, serde_json::Value::Array(slots).to_string())
            }
            other => Response::json(
                415,
                serde_json::json!({ "error": format!("unsupported content type {other:?}") })
                    .to_string(),
            ),
        },
        ("GET", ["v1", "tasks", id]) => {
            let Ok(id) = id.parse::<u64>() else {
                return bad_request("task id must be a number");
            };
            match svc.task_status(id) {
                Ok(s) if wants_binary_reply(req) => Response::bytes(
                    200,
                    wire::CONTENT_TYPE_BIN,
                    wire::encode_status(&to_wire_status(&s)),
                ),
                Ok(s) => Response::json(200, serde_json::to_string(&s).expect("status serializes")),
                Err(e) if wants_binary_reply(req) => bin_error(daemon_status(&e), &e.to_string()),
                Err(e) => err_response(&e),
            }
        }
        ("GET", ["v1", "tasks", id, "warnings"]) => {
            let Ok(id) = id.parse::<u64>() else {
                return bad_request("task id must be a number");
            };
            let warnings = svc.task_warnings(id);
            Response::json(200, serde_json::json!({ "warnings": warnings }).to_string())
        }
        ("GET", ["v1", "tasks", id, "result"]) => {
            let Ok(id) = id.parse::<u64>() else {
                return bad_request("task id must be a number");
            };
            match svc.task_result(id) {
                Ok(r) if wants_binary_reply(req) => {
                    Response::bytes(200, wire::CONTENT_TYPE_BIN, wire::encode_result(&r))
                }
                Ok(r) => Response::json(200, serde_json::to_string(&r).expect("result serializes")),
                Err(e) if wants_binary_reply(req) => bin_error(daemon_status(&e), &e.to_string()),
                Err(e) => err_response(&e),
            }
        }
        ("DELETE", ["v1", "tasks", id]) => {
            let Ok(id) = id.parse::<u64>() else {
                return bad_request("task id must be a number");
            };
            let Some(token) = req.query.get("token") else {
                return bad_request("missing token query parameter");
            };
            match svc.cancel(token, id) {
                Ok(()) => Response::json(200, "{}"),
                Err(e) => err_response(&e),
            }
        }
        ("POST", ["v1", "pump"]) => {
            let n = svc.pump();
            Response::json(200, serde_json::json!({ "dispatched": n }).to_string())
        }
        ("GET", ["v1", "healthz"]) => {
            let health = svc.health();
            let body = serde_json::json!({ "status": health.as_str() }).to_string();
            match health {
                crate::daemon::DaemonHealth::Ok => Response::json(200, body),
                _ => Response::json(503, body),
            }
        }
        // Liveness vs readiness: healthz answers "is the process up", readyz
        // answers "should traffic come here" — a healthy follower is 200 on
        // the former and 503 on the latter. The gateway routes on this one.
        ("GET", ["v1", "readyz"]) => {
            let report = svc.readiness();
            let body = serde_json::to_string(&report).unwrap_or_else(|_| "{}".into());
            if report.ready {
                Response::json(200, body)
            } else {
                Response::json(503, body)
            }
        }
        ("GET", ["metrics"]) => Response::text(200, svc.metrics_text()),
        ("GET", ["v1", "admin", "qpu", "status"]) => match svc.qpu_status() {
            Some(s) => Response::json(
                200,
                serde_json::json!({ "status": format!("{s:?}") }).to_string(),
            ),
            None => Response::json(404, r#"{"error":"no admin access to a device"}"#),
        },
        ("POST", ["v1", "admin", "qpu", "status"]) => {
            let Ok(body) = req.body_str() else {
                return bad_request("body not UTF-8");
            };
            let Ok(sr): Result<StatusReq, _> = serde_json::from_str(body) else {
                return bad_request("expected {status}");
            };
            let status = match sr.status.as_str() {
                "operational" => QpuStatus::Operational,
                "calibrating" => QpuStatus::Calibrating,
                "maintenance" => QpuStatus::Maintenance,
                "down" => QpuStatus::Down,
                _ => return bad_request("status must be operational|calibrating|maintenance|down"),
            };
            match svc.set_qpu_status(status) {
                Ok(()) => Response::json(200, "{}"),
                Err(e) => err_response(&e),
            }
        }
        ("POST", ["v1", "admin", "qpu", "recalibrate"]) => {
            let Ok(body) = req.body_str() else {
                return bad_request("body not UTF-8");
            };
            let Ok(rr): Result<RecalibrateReq, _> = serde_json::from_str(body) else {
                return bad_request("expected {duration_secs}");
            };
            match svc.recalibrate(rr.duration_secs) {
                Ok(()) => Response::json(200, "{}"),
                Err(e) => err_response(&e),
            }
        }
        ("GET", ["v1", "telemetry", series]) => {
            let from: f64 = req
                .query
                .get("from")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.0);
            let to: f64 = req
                .query
                .get("to")
                .and_then(|s| s.parse().ok())
                .unwrap_or(f64::MAX);
            let pts = svc.telemetry_range(series, from, to);
            Response::json(200, serde_json::to_string(&pts).expect("points serialize"))
        }
        _ => Response::not_found(),
    }
}

/// Serve the daemon over HTTP on an ephemeral localhost port.
pub fn serve(svc: Arc<MiddlewareService>) -> std::io::Result<HttpServer> {
    serve_on(svc, 0)
}

/// Serve the daemon over HTTP on a specific localhost port (0 = ephemeral).
///
/// Transport telemetry (connection lifecycle, keep-alive reuse,
/// backpressure, deadline closes) lands in the daemon's own registry, so it
/// shows up on `GET /metrics` next to the scheduler counters.
pub fn serve_on(svc: Arc<MiddlewareService>, port: u16) -> std::io::Result<HttpServer> {
    let cfg = ServerConfig {
        metrics: Some(TransportMetrics::new(svc.registry().clone())),
        ..ServerConfig::default()
    };
    serve_with(svc, port, cfg)
}

/// [`serve_on`] with explicit transport tuning (connection cap, deadlines,
/// worker count). When `cfg.metrics` is `None` the daemon registry is wired
/// in, matching [`serve_on`].
pub fn serve_with(
    svc: Arc<MiddlewareService>,
    port: u16,
    mut cfg: ServerConfig,
) -> std::io::Result<HttpServer> {
    if cfg.metrics.is_none() {
        cfg.metrics = Some(TransportMetrics::new(svc.registry().clone()));
    }
    let handler: Handler = Arc::new(move |req: Request| route(&svc, &req));
    HttpServer::spawn_with(port, handler, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DaemonConfig;
    use crate::http::http_request;
    use hpcqc_emulator::SvBackend;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};
    use hpcqc_qrmi::LocalEmulatorResource;

    fn service() -> Arc<MiddlewareService> {
        let res = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        Arc::new(MiddlewareService::new(res, DaemonConfig::default()))
    }

    fn ir_json(shots: u32) -> String {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        let ir = ProgramIr::new(b.build().unwrap(), shots, "rest-test");
        serde_json::to_string(&ir).unwrap()
    }

    #[test]
    fn full_rest_workflow_over_sockets() {
        let server = serve(service()).unwrap();
        let addr = server.addr();

        // open session
        let (st, body) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"ada","class":"production"}"#),
        )
        .unwrap();
        assert_eq!(st, 201, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let token = v["token"].as_str().unwrap().to_string();

        // fetch target spec
        let (st, body) = http_request(&addr, "GET", "/v1/target", None).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("max_qubits"));

        // submit task
        let submit = format!(
            r#"{{"token":"{token}","ir":{},"hint":"qc-heavy"}}"#,
            ir_json(25)
        );
        let (st, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        assert_eq!(st, 201, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let task_id = v["task_id"].as_u64().unwrap();

        // queued
        let (st, body) = http_request(&addr, "GET", &format!("/v1/tasks/{task_id}"), None).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("Queued"), "{body}");

        // pump (simulation hook)
        let (st, _) = http_request(&addr, "POST", "/v1/pump", Some("{}")).unwrap();
        assert_eq!(st, 200);

        // completed + result
        let (_, body) = http_request(&addr, "GET", &format!("/v1/tasks/{task_id}"), None).unwrap();
        assert!(body.contains("Completed"), "{body}");
        let (st, body) =
            http_request(&addr, "GET", &format!("/v1/tasks/{task_id}/result"), None).unwrap();
        assert_eq!(st, 200);
        let res: hpcqc_emulator::SampleResult = serde_json::from_str(&body).unwrap();
        assert_eq!(res.shots, 25);

        // metrics
        let (st, body) = http_request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("daemon_tasks_submitted_total"));

        // close session
        let (st, _) =
            http_request(&addr, "DELETE", &format!("/v1/sessions/{token}"), None).unwrap();
        assert_eq!(st, 200);
    }

    #[test]
    fn warnings_route_exposes_analyzer_findings() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        let (_, body) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"ada","class":"production"}"#),
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let token = v["token"].as_str().unwrap().to_string();

        // stale client-side validation → accepted, but with a HQ0701 warning
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        let ir = ProgramIr::new(b.build().unwrap(), 25, "rest-test").with_validation_revision(999);
        let submit = format!(
            r#"{{"token":"{token}","ir":{}}}"#,
            serde_json::to_string(&ir).unwrap()
        );
        let (st, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        assert_eq!(st, 201, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let task_id = v["task_id"].as_u64().unwrap();

        let (st, body) =
            http_request(&addr, "GET", &format!("/v1/tasks/{task_id}/warnings"), None).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("HQ0701"), "{body}");

        // a task with no findings returns an empty list, not an error
        let submit = format!(r#"{{"token":"{token}","ir":{}}}"#, ir_json(25));
        let (_, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let clean_id = v["task_id"].as_u64().unwrap();
        let (st, body) = http_request(
            &addr,
            "GET",
            &format!("/v1/tasks/{clean_id}/warnings"),
            None,
        )
        .unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, r#"{"warnings":[]}"#);
    }

    fn ir(shots: u32) -> ProgramIr {
        serde_json::from_str(&ir_json(shots)).unwrap()
    }

    fn open_token(addr: &str) -> String {
        let (st, body) = http_request(
            addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"bin","class":"production"}"#),
        )
        .unwrap();
        assert_eq!(st, 201, "{body}");
        serde_json::from_str::<serde_json::Value>(&body).unwrap()["token"]
            .as_str()
            .unwrap()
            .to_string()
    }

    /// The full binary round trip over a real socket: Submit frame in,
    /// TaskId frame out, Status and Result frames via `Accept`.
    #[test]
    fn binary_submit_status_result_round_trip() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        let token = open_token(&addr);
        let client = crate::http::HttpClient::new(addr.clone());

        let frame = wire::SubmitFrame {
            token: token.clone(),
            hint: Some("qc-heavy".into()),
            idempotency_key: Some("bin-key-1".into()),
            ir: ir(25),
        };
        let raw = client
            .request_bytes(
                "POST",
                "/v1/tasks",
                wire::CONTENT_TYPE_BIN,
                Some(&wire::encode_submit(&frame)),
            )
            .unwrap();
        assert_eq!(raw.status, 201, "{:?}", raw);
        assert_eq!(raw.content_type, wire::CONTENT_TYPE_BIN);
        let id = wire::decode_task_id(&raw.body).unwrap();

        // same idempotency key replays to the same id
        let raw = client
            .request_bytes(
                "POST",
                "/v1/tasks",
                wire::CONTENT_TYPE_BIN,
                Some(&wire::encode_submit(&frame)),
            )
            .unwrap();
        assert_eq!(wire::decode_task_id(&raw.body).unwrap(), id);

        // binary status frame via Accept
        let raw = client
            .request_bytes_accept(
                "GET",
                &format!("/v1/tasks/{id}"),
                "application/json",
                Some(wire::CONTENT_TYPE_BIN),
                None,
            )
            .unwrap();
        assert_eq!(raw.status, 200);
        assert!(matches!(
            wire::decode_status(&raw.body).unwrap(),
            wire::WireStatus::Queued { .. }
        ));

        let (st, _) = http_request(&addr, "POST", "/v1/pump", Some("{}")).unwrap();
        assert_eq!(st, 200);

        let raw = client
            .request_bytes_accept(
                "GET",
                &format!("/v1/tasks/{id}/result"),
                "application/json",
                Some(wire::CONTENT_TYPE_BIN),
                None,
            )
            .unwrap();
        assert_eq!(raw.status, 200);
        let result = wire::decode_result(&raw.body).unwrap();
        assert_eq!(result.shots, 25);

        // binary errors carry an Error frame, not JSON
        let raw = client
            .request_bytes_accept(
                "GET",
                "/v1/tasks/999999",
                "application/json",
                Some(wire::CONTENT_TYPE_BIN),
                None,
            )
            .unwrap();
        assert_eq!(raw.status, 404);
        let e = wire::decode_error(&raw.body).unwrap();
        assert_eq!(e.status, 404);
    }

    /// Batch submit in both codecs: per-frame slots, order preserved, one
    /// bad frame does not poison its neighbours.
    #[test]
    fn batch_submit_binary_and_json() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        let token = open_token(&addr);
        let client = crate::http::HttpClient::new(addr.clone());

        let good = |key: &str| wire::SubmitFrame {
            token: token.clone(),
            hint: None,
            idempotency_key: Some(key.into()),
            ir: ir(10),
        };
        let frames = vec![
            good("batch-a"),
            wire::SubmitFrame {
                token: "sess-0-bogus".into(),
                hint: None,
                idempotency_key: None,
                ir: ir(10),
            },
            good("batch-b"),
        ];
        let raw = client
            .request_bytes(
                "POST",
                "/v1/tasks:batch",
                wire::CONTENT_TYPE_BIN,
                Some(&wire::encode_submit_batch(&frames)),
            )
            .unwrap();
        assert_eq!(raw.status, 200, "{:?}", raw);
        let slots = wire::decode_batch_reply(&raw.body).unwrap();
        assert_eq!(slots.len(), 3);
        let wire::BatchSlot::Ok { task_id: id_a } = slots[0] else {
            panic!("slot 0 should be Ok: {:?}", slots[0]);
        };
        assert!(
            matches!(&slots[1], wire::BatchSlot::Err { status: 401, .. }),
            "bogus token must fail alone: {:?}",
            slots[1]
        );
        let wire::BatchSlot::Ok { task_id: id_b } = slots[2] else {
            panic!("slot 2 should be Ok: {:?}", slots[2]);
        };
        assert!(id_b > id_a, "submission order preserved");

        // JSON flavor of the same route
        let body = format!(
            r#"[{{"token":"{token}","ir":{}}},{{"token":"nope","ir":{}}}]"#,
            ir_json(5),
            ir_json(5)
        );
        let (st, body) = http_request(&addr, "POST", "/v1/tasks:batch", Some(&body)).unwrap();
        assert_eq!(st, 200, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert!(arr[0]["task_id"].as_u64().is_some(), "{body}");
        assert_eq!(arr[1]["status"].as_u64(), Some(401), "{body}");

        // idempotency keys replay per-frame across batches
        let raw = client
            .request_bytes(
                "POST",
                "/v1/tasks:batch",
                wire::CONTENT_TYPE_BIN,
                Some(&wire::encode_submit_batch(&[good("batch-a")])),
            )
            .unwrap();
        let slots = wire::decode_batch_reply(&raw.body).unwrap();
        assert_eq!(slots[0], wire::BatchSlot::Ok { task_id: id_a });
    }

    /// An unrecognized submit content type is refused with 415 — the
    /// signal the SDK keys its JSON fallback on.
    #[test]
    fn unknown_submit_content_type_is_415() {
        let server = serve(service()).unwrap();
        let client = crate::http::HttpClient::new(server.addr());
        for path in ["/v1/tasks", "/v1/tasks:batch"] {
            let raw = client
                .request_bytes("POST", path, "application/x-msgpack", Some(b"\x00\x01"))
                .unwrap();
            assert_eq!(raw.status, 415, "{path}");
        }
        // a truncated binary frame is a 400 (bad frame), not a hang or 500
        let raw = client
            .request_bytes("POST", "/v1/tasks", wire::CONTENT_TYPE_BIN, Some(b"HQ\x01"))
            .unwrap();
        assert_eq!(raw.status, 400);
        assert!(wire::decode_error(&raw.body).is_ok());
    }

    #[test]
    fn auth_errors_map_to_http_codes() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        // submit with a bogus token → 401
        let submit = format!(r#"{{"token":"bogus","ir":{}}}"#, ir_json(5));
        let (st, _) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        assert_eq!(st, 401);
        // unknown task → 404
        let (st, _) = http_request(&addr, "GET", "/v1/tasks/999", None).unwrap();
        assert_eq!(st, 404);
        // bad class → 400
        let (st, _) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"vip"}"#),
        )
        .unwrap();
        assert_eq!(st, 400);
        // unknown route → 404
        let (st, _) = http_request(&addr, "GET", "/v2/everything", None).unwrap();
        assert_eq!(st, 404);
    }

    #[test]
    fn validation_errors_are_422() {
        let svc = service();
        let server = serve(svc).unwrap();
        let addr = server.addr();
        let (_, body) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"test"}"#),
        )
        .unwrap();
        let token = serde_json::from_str::<serde_json::Value>(&body).unwrap()["token"]
            .as_str()
            .unwrap()
            .to_string();
        // an over-amplitude program: violates even the permissive emulator spec
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 1e6, 0.0, 0.0).unwrap());
        let bad = ProgramIr::new(b.build().unwrap(), 10, "t");
        let submit = format!(
            r#"{{"token":"{token}","ir":{}}}"#,
            serde_json::to_string(&bad).unwrap()
        );
        let (st, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        assert_eq!(st, 422, "{body}");
    }

    #[test]
    fn cancel_via_rest_requires_token() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        let (_, body) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"test"}"#),
        )
        .unwrap();
        let token = serde_json::from_str::<serde_json::Value>(&body).unwrap()["token"]
            .as_str()
            .unwrap()
            .to_string();
        let submit = format!(r#"{{"token":"{token}","ir":{}}}"#, ir_json(5));
        let (_, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        let id = serde_json::from_str::<serde_json::Value>(&body).unwrap()["task_id"]
            .as_u64()
            .unwrap();
        let (st, _) = http_request(&addr, "DELETE", &format!("/v1/tasks/{id}"), None).unwrap();
        assert_eq!(st, 400, "token required");
        let (st, _) = http_request(
            &addr,
            "DELETE",
            &format!("/v1/tasks/{id}?token={token}"),
            None,
        )
        .unwrap();
        assert_eq!(st, 200);
    }

    #[test]
    fn admin_routes_404_without_device() {
        let server = serve(service()).unwrap();
        let (st, _) = http_request(server.addr(), "GET", "/v1/admin/qpu/status", None).unwrap();
        assert_eq!(st, 404);
    }

    #[test]
    fn malformed_submit_json_is_400() {
        let server = serve(service()).unwrap();
        let (st, body) =
            http_request(server.addr(), "POST", "/v1/tasks", Some("{not json")).unwrap();
        assert_eq!(st, 400, "{body}");
        // structurally valid JSON missing required fields is still a 400
        let (st, _) = http_request(server.addr(), "POST", "/v1/tasks", Some("{}")).unwrap();
        assert_eq!(st, 400);
    }

    #[test]
    fn unknown_session_token_is_401() {
        let server = serve(service()).unwrap();
        let submit = format!(r#"{{"token":"sess-0-doesnotexist","ir":{}}}"#, ir_json(5));
        let (st, body) = http_request(server.addr(), "POST", "/v1/tasks", Some(&submit)).unwrap();
        assert_eq!(st, 401, "{body}");
    }

    #[test]
    fn cancel_of_completed_task_is_409() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        let (_, body) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"test"}"#),
        )
        .unwrap();
        let token = serde_json::from_str::<serde_json::Value>(&body).unwrap()["token"]
            .as_str()
            .unwrap()
            .to_string();
        let submit = format!(r#"{{"token":"{token}","ir":{}}}"#, ir_json(5));
        let (_, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        let id = serde_json::from_str::<serde_json::Value>(&body).unwrap()["task_id"]
            .as_u64()
            .unwrap();
        let (st, _) = http_request(&addr, "POST", "/v1/pump", Some("{}")).unwrap();
        assert_eq!(st, 200);
        let (st, body) = http_request(
            &addr,
            "DELETE",
            &format!("/v1/tasks/{id}?token={token}"),
            None,
        )
        .unwrap();
        assert_eq!(st, 409, "{body}");
    }

    #[test]
    fn healthz_is_200_serving_503_draining() {
        let svc = service();
        let server = serve(Arc::clone(&svc)).unwrap();
        let addr = server.addr().to_string();
        let (st, body) = http_request(&addr, "GET", "/v1/healthz", None).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("ok"), "{body}");
        // readiness agrees while serving as leader
        let (st, body) = http_request(&addr, "GET", "/v1/readyz", None).unwrap();
        assert_eq!(st, 200, "{body}");
        assert!(body.contains(r#""role":"leader""#), "{body}");
        svc.shutdown(std::time::Duration::from_millis(50));
        let (st, body) = http_request(&addr, "GET", "/v1/healthz", None).unwrap();
        assert_eq!(st, 503, "{body}");
        assert!(body.contains("stopped"), "{body}");
        let (st, body) = http_request(&addr, "GET", "/v1/readyz", None).unwrap();
        assert_eq!(st, 503, "{body}");
        assert!(body.contains(r#""role":"stopped""#), "{body}");
        // a stopped daemon refuses new sessions with 503 too
        let (st, _) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"test"}"#),
        )
        .unwrap();
        assert_eq!(st, 503);
    }

    /// Liveness and readiness split: a healthy *follower* is alive (healthz
    /// 200) but must not take traffic (readyz 503) — and it refuses client
    /// work with 503 until promoted.
    #[test]
    fn follower_is_live_but_not_ready() {
        let svc = service();
        svc.set_role(crate::daemon::ReplicaRole::Follower);
        let server = serve(Arc::clone(&svc)).unwrap();
        let addr = server.addr().to_string();
        let (st, body) = http_request(&addr, "GET", "/v1/healthz", None).unwrap();
        assert_eq!(st, 200, "{body}");
        let (st, body) = http_request(&addr, "GET", "/v1/readyz", None).unwrap();
        assert_eq!(st, 503, "{body}");
        assert!(body.contains(r#""role":"follower""#), "{body}");
        let (st, _) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"test"}"#),
        )
        .unwrap();
        assert_eq!(st, 503, "followers admit no client work");
        svc.set_role(crate::daemon::ReplicaRole::Leader);
        let (st, body) = http_request(&addr, "GET", "/v1/readyz", None).unwrap();
        assert_eq!(st, 200, "{body}");
        assert!(body.contains(r#""ready":true"#), "{body}");
    }

    /// Regression: `status_text` used to miss 503/429, so backpressure
    /// responses went out as `HTTP/1.1 503 Unknown`. Assert the raw status
    /// line on the wire.
    #[test]
    fn status_lines_carry_reason_phrases() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;
        let svc = service();
        let server = serve(Arc::clone(&svc)).unwrap();
        svc.shutdown(std::time::Duration::from_millis(10));
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "HTTP/1.1 503 Service Unavailable");
        let wire = String::from_utf8(Response::json(429, "{}").encode(false)).unwrap();
        assert!(
            wire.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "got: {wire}"
        );
    }

    /// The REST transport reports its connection counters into the daemon
    /// registry: they are visible on `GET /metrics` like every other
    /// subsystem.
    #[test]
    fn transport_counters_show_up_on_metrics_route() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        let (st, _) = http_request(&addr, "GET", "/v1/healthz", None).unwrap();
        assert_eq!(st, 200);
        let (st, body) = http_request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(st, 200);
        assert!(
            body.contains("http_connections_accepted_total"),
            "transport counters missing from /metrics"
        );
        assert!(body.contains("http_requests_total"));
    }

    /// Per-lock contention/hold-time gauges from `hpcqc_sync` reach the real
    /// `GET /metrics` route: the queue lock (acquired on every submit/pump)
    /// must show up with acquisition counts and hold-time quantiles.
    #[test]
    fn lock_contention_metrics_show_up_on_metrics_route() {
        let svc = service();
        let tok = svc
            .open_session("lisa", crate::session::PriorityClass::Production)
            .unwrap();
        let ir: ProgramIr = serde_json::from_str(&ir_json(5)).unwrap();
        svc.submit(&tok, ir, hpcqc_scheduler::PatternHint::None)
            .unwrap();
        svc.pump();
        let server = serve(svc).unwrap();
        let (st, body) = http_request(server.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(st, 200);
        assert!(
            body.contains("lock_acquisitions{lock=\"middleware.daemon.queue\"}"),
            "queue lock stats missing from /metrics:\n{body}"
        );
        assert!(
            body.contains("lock_hold_seconds{lock=\"middleware.daemon.queue\",quantile=\"0.99\"}"),
            "hold-time quantiles missing from /metrics"
        );
        assert!(
            body.contains("lock_contended_acquisitions{lock=\"middleware.daemon.dispatch\"}"),
            "contention gauge missing from /metrics"
        );
    }
}
