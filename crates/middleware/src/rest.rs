//! REST API: routes over the daemon service.
//!
//! The JSON protocol spoken between the runtime's session client and the
//! daemon. Routes (all JSON unless noted):
//!
//! ```text
//! POST   /v1/sessions                {user, class}        → {token}
//! DELETE /v1/sessions/{token}                             → {}
//! GET    /v1/sessions                                     → [Session]   (admin)
//! GET    /v1/target                                       → DeviceSpec
//! POST   /v1/tasks                   {token, ir, hint,
//!                                     idempotency_key?}   → {task_id}
//! GET    /v1/tasks/{id}                                   → DaemonTaskStatus
//! GET    /v1/tasks/{id}/warnings                          → {warnings: [str]}
//! GET    /v1/tasks/{id}/result                            → SampleResult
//! DELETE /v1/tasks/{id}?token=T                           → {}
//! POST   /v1/pump                    {}                   → {dispatched} (drives the queue)
//! GET    /v1/healthz                                      → {status} (503 while draining)
//! GET    /v1/readyz                                       → ReadinessReport (503 unless a serving leader)
//! GET    /metrics                                         → Prometheus text
//! GET    /v1/admin/qpu/status                             → {status}
//! POST   /v1/admin/qpu/status        {status}             → {}
//! POST   /v1/admin/qpu/recalibrate   {duration_secs}      → {}
//! GET    /v1/telemetry/{series}?from=&to=                 → [Point]
//! ```

use crate::daemon::{DaemonError, MiddlewareService};
use crate::http::{Handler, Request, Response};
use crate::server::{HttpServer, ServerConfig};
use crate::session::PriorityClass;
use hpcqc_program::ProgramIr;
use hpcqc_qpu::QpuStatus;
use hpcqc_scheduler::PatternHint;
use hpcqc_telemetry::TransportMetrics;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

#[derive(Debug, Serialize, Deserialize)]
struct OpenSessionReq {
    user: String,
    class: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct SubmitReq {
    token: String,
    ir: ProgramIr,
    #[serde(default)]
    hint: Option<String>,
    /// Client-chosen dedup key: retrying a submit with the same key returns
    /// the originally assigned task id (survives daemon restarts).
    #[serde(default)]
    idempotency_key: Option<String>,
}

#[derive(Debug, Serialize, Deserialize)]
struct StatusReq {
    status: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct RecalibrateReq {
    duration_secs: f64,
}

fn err_response(e: &DaemonError) -> Response {
    let status = match e {
        DaemonError::Session(_) => 401,
        DaemonError::Forbidden(_) => 403,
        DaemonError::UnknownTask(_) => 404,
        DaemonError::Validation(_) => 422,
        DaemonError::Queue(_) => 409,
        DaemonError::Unavailable(_) => 503,
        DaemonError::Internal(_) => 500,
    };
    Response::json(
        status,
        serde_json::json!({ "error": e.to_string() }).to_string(),
    )
}

fn bad_request(msg: &str) -> Response {
    Response::json(400, serde_json::json!({ "error": msg }).to_string())
}

/// Route one request against the service.
pub fn route(svc: &MiddlewareService, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "sessions"]) => {
            let Ok(body) = req.body_str() else {
                return bad_request("body not UTF-8");
            };
            let Ok(open): Result<OpenSessionReq, _> = serde_json::from_str(body) else {
                return bad_request("expected {user, class}");
            };
            let Some(class) = PriorityClass::parse(&open.class) else {
                return bad_request("class must be production|test|development");
            };
            match svc.open_session(&open.user, class) {
                Ok(token) => Response::json(201, serde_json::json!({ "token": token }).to_string()),
                Err(e) => err_response(&e),
            }
        }
        ("DELETE", ["v1", "sessions", token]) => match svc.close_session(token) {
            Ok(()) => Response::json(200, "{}"),
            Err(e) => err_response(&e),
        },
        ("GET", ["v1", "sessions"]) => {
            let sessions = svc.list_sessions();
            Response::json(
                200,
                serde_json::to_string(&sessions).expect("sessions serialize"),
            )
        }
        ("GET", ["v1", "target"]) => match svc.device_spec() {
            Ok(spec) => Response::json(200, serde_json::to_string(&spec).expect("spec serializes")),
            Err(e) => err_response(&e),
        },
        ("POST", ["v1", "tasks"]) => {
            let Ok(body) = req.body_str() else {
                return bad_request("body not UTF-8");
            };
            let submit: SubmitReq = match serde_json::from_str(body) {
                Ok(s) => s,
                Err(e) => return bad_request(&format!("bad submit body: {e}")),
            };
            let hint = match submit.hint.as_deref() {
                None => PatternHint::None,
                Some(h) => match PatternHint::parse(h) {
                    Some(h) => h,
                    None => return bad_request("hint must be qc-heavy|cc-heavy|qc-balanced|none"),
                },
            };
            match svc.submit_with_key(
                &submit.token,
                submit.ir,
                hint,
                submit.idempotency_key.as_deref(),
            ) {
                Ok(id) => Response::json(201, serde_json::json!({ "task_id": id }).to_string()),
                Err(e) => err_response(&e),
            }
        }
        ("GET", ["v1", "tasks", id]) => {
            let Ok(id) = id.parse::<u64>() else {
                return bad_request("task id must be a number");
            };
            match svc.task_status(id) {
                Ok(s) => Response::json(200, serde_json::to_string(&s).expect("status serializes")),
                Err(e) => err_response(&e),
            }
        }
        ("GET", ["v1", "tasks", id, "warnings"]) => {
            let Ok(id) = id.parse::<u64>() else {
                return bad_request("task id must be a number");
            };
            let warnings = svc.task_warnings(id);
            Response::json(200, serde_json::json!({ "warnings": warnings }).to_string())
        }
        ("GET", ["v1", "tasks", id, "result"]) => {
            let Ok(id) = id.parse::<u64>() else {
                return bad_request("task id must be a number");
            };
            match svc.task_result(id) {
                Ok(r) => Response::json(200, serde_json::to_string(&r).expect("result serializes")),
                Err(e) => err_response(&e),
            }
        }
        ("DELETE", ["v1", "tasks", id]) => {
            let Ok(id) = id.parse::<u64>() else {
                return bad_request("task id must be a number");
            };
            let Some(token) = req.query.get("token") else {
                return bad_request("missing token query parameter");
            };
            match svc.cancel(token, id) {
                Ok(()) => Response::json(200, "{}"),
                Err(e) => err_response(&e),
            }
        }
        ("POST", ["v1", "pump"]) => {
            let n = svc.pump();
            Response::json(200, serde_json::json!({ "dispatched": n }).to_string())
        }
        ("GET", ["v1", "healthz"]) => {
            let health = svc.health();
            let body = serde_json::json!({ "status": health.as_str() }).to_string();
            match health {
                crate::daemon::DaemonHealth::Ok => Response::json(200, body),
                _ => Response::json(503, body),
            }
        }
        // Liveness vs readiness: healthz answers "is the process up", readyz
        // answers "should traffic come here" — a healthy follower is 200 on
        // the former and 503 on the latter. The gateway routes on this one.
        ("GET", ["v1", "readyz"]) => {
            let report = svc.readiness();
            let body = serde_json::to_string(&report).unwrap_or_else(|_| "{}".into());
            if report.ready {
                Response::json(200, body)
            } else {
                Response::json(503, body)
            }
        }
        ("GET", ["metrics"]) => Response::text(200, svc.metrics_text()),
        ("GET", ["v1", "admin", "qpu", "status"]) => match svc.qpu_status() {
            Some(s) => Response::json(
                200,
                serde_json::json!({ "status": format!("{s:?}") }).to_string(),
            ),
            None => Response::json(404, r#"{"error":"no admin access to a device"}"#),
        },
        ("POST", ["v1", "admin", "qpu", "status"]) => {
            let Ok(body) = req.body_str() else {
                return bad_request("body not UTF-8");
            };
            let Ok(sr): Result<StatusReq, _> = serde_json::from_str(body) else {
                return bad_request("expected {status}");
            };
            let status = match sr.status.as_str() {
                "operational" => QpuStatus::Operational,
                "calibrating" => QpuStatus::Calibrating,
                "maintenance" => QpuStatus::Maintenance,
                "down" => QpuStatus::Down,
                _ => return bad_request("status must be operational|calibrating|maintenance|down"),
            };
            match svc.set_qpu_status(status) {
                Ok(()) => Response::json(200, "{}"),
                Err(e) => err_response(&e),
            }
        }
        ("POST", ["v1", "admin", "qpu", "recalibrate"]) => {
            let Ok(body) = req.body_str() else {
                return bad_request("body not UTF-8");
            };
            let Ok(rr): Result<RecalibrateReq, _> = serde_json::from_str(body) else {
                return bad_request("expected {duration_secs}");
            };
            match svc.recalibrate(rr.duration_secs) {
                Ok(()) => Response::json(200, "{}"),
                Err(e) => err_response(&e),
            }
        }
        ("GET", ["v1", "telemetry", series]) => {
            let from: f64 = req
                .query
                .get("from")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.0);
            let to: f64 = req
                .query
                .get("to")
                .and_then(|s| s.parse().ok())
                .unwrap_or(f64::MAX);
            let pts = svc.telemetry_range(series, from, to);
            Response::json(200, serde_json::to_string(&pts).expect("points serialize"))
        }
        _ => Response::not_found(),
    }
}

/// Serve the daemon over HTTP on an ephemeral localhost port.
pub fn serve(svc: Arc<MiddlewareService>) -> std::io::Result<HttpServer> {
    serve_on(svc, 0)
}

/// Serve the daemon over HTTP on a specific localhost port (0 = ephemeral).
///
/// Transport telemetry (connection lifecycle, keep-alive reuse,
/// backpressure, deadline closes) lands in the daemon's own registry, so it
/// shows up on `GET /metrics` next to the scheduler counters.
pub fn serve_on(svc: Arc<MiddlewareService>, port: u16) -> std::io::Result<HttpServer> {
    let cfg = ServerConfig {
        metrics: Some(TransportMetrics::new(svc.registry().clone())),
        ..ServerConfig::default()
    };
    serve_with(svc, port, cfg)
}

/// [`serve_on`] with explicit transport tuning (connection cap, deadlines,
/// worker count). When `cfg.metrics` is `None` the daemon registry is wired
/// in, matching [`serve_on`].
pub fn serve_with(
    svc: Arc<MiddlewareService>,
    port: u16,
    mut cfg: ServerConfig,
) -> std::io::Result<HttpServer> {
    if cfg.metrics.is_none() {
        cfg.metrics = Some(TransportMetrics::new(svc.registry().clone()));
    }
    let handler: Handler = Arc::new(move |req: Request| route(&svc, &req));
    HttpServer::spawn_with(port, handler, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DaemonConfig;
    use crate::http::http_request;
    use hpcqc_emulator::SvBackend;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};
    use hpcqc_qrmi::LocalEmulatorResource;

    fn service() -> Arc<MiddlewareService> {
        let res = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        Arc::new(MiddlewareService::new(res, DaemonConfig::default()))
    }

    fn ir_json(shots: u32) -> String {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        let ir = ProgramIr::new(b.build().unwrap(), shots, "rest-test");
        serde_json::to_string(&ir).unwrap()
    }

    #[test]
    fn full_rest_workflow_over_sockets() {
        let server = serve(service()).unwrap();
        let addr = server.addr();

        // open session
        let (st, body) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"ada","class":"production"}"#),
        )
        .unwrap();
        assert_eq!(st, 201, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let token = v["token"].as_str().unwrap().to_string();

        // fetch target spec
        let (st, body) = http_request(&addr, "GET", "/v1/target", None).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("max_qubits"));

        // submit task
        let submit = format!(
            r#"{{"token":"{token}","ir":{},"hint":"qc-heavy"}}"#,
            ir_json(25)
        );
        let (st, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        assert_eq!(st, 201, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let task_id = v["task_id"].as_u64().unwrap();

        // queued
        let (st, body) = http_request(&addr, "GET", &format!("/v1/tasks/{task_id}"), None).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("Queued"), "{body}");

        // pump (simulation hook)
        let (st, _) = http_request(&addr, "POST", "/v1/pump", Some("{}")).unwrap();
        assert_eq!(st, 200);

        // completed + result
        let (_, body) = http_request(&addr, "GET", &format!("/v1/tasks/{task_id}"), None).unwrap();
        assert!(body.contains("Completed"), "{body}");
        let (st, body) =
            http_request(&addr, "GET", &format!("/v1/tasks/{task_id}/result"), None).unwrap();
        assert_eq!(st, 200);
        let res: hpcqc_emulator::SampleResult = serde_json::from_str(&body).unwrap();
        assert_eq!(res.shots, 25);

        // metrics
        let (st, body) = http_request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("daemon_tasks_submitted_total"));

        // close session
        let (st, _) =
            http_request(&addr, "DELETE", &format!("/v1/sessions/{token}"), None).unwrap();
        assert_eq!(st, 200);
    }

    #[test]
    fn warnings_route_exposes_analyzer_findings() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        let (_, body) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"ada","class":"production"}"#),
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let token = v["token"].as_str().unwrap().to_string();

        // stale client-side validation → accepted, but with a HQ0701 warning
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        let ir = ProgramIr::new(b.build().unwrap(), 25, "rest-test").with_validation_revision(999);
        let submit = format!(
            r#"{{"token":"{token}","ir":{}}}"#,
            serde_json::to_string(&ir).unwrap()
        );
        let (st, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        assert_eq!(st, 201, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let task_id = v["task_id"].as_u64().unwrap();

        let (st, body) =
            http_request(&addr, "GET", &format!("/v1/tasks/{task_id}/warnings"), None).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("HQ0701"), "{body}");

        // a task with no findings returns an empty list, not an error
        let submit = format!(r#"{{"token":"{token}","ir":{}}}"#, ir_json(25));
        let (_, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let clean_id = v["task_id"].as_u64().unwrap();
        let (st, body) = http_request(
            &addr,
            "GET",
            &format!("/v1/tasks/{clean_id}/warnings"),
            None,
        )
        .unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, r#"{"warnings":[]}"#);
    }

    #[test]
    fn auth_errors_map_to_http_codes() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        // submit with a bogus token → 401
        let submit = format!(r#"{{"token":"bogus","ir":{}}}"#, ir_json(5));
        let (st, _) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        assert_eq!(st, 401);
        // unknown task → 404
        let (st, _) = http_request(&addr, "GET", "/v1/tasks/999", None).unwrap();
        assert_eq!(st, 404);
        // bad class → 400
        let (st, _) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"vip"}"#),
        )
        .unwrap();
        assert_eq!(st, 400);
        // unknown route → 404
        let (st, _) = http_request(&addr, "GET", "/v2/everything", None).unwrap();
        assert_eq!(st, 404);
    }

    #[test]
    fn validation_errors_are_422() {
        let svc = service();
        let server = serve(svc).unwrap();
        let addr = server.addr();
        let (_, body) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"test"}"#),
        )
        .unwrap();
        let token = serde_json::from_str::<serde_json::Value>(&body).unwrap()["token"]
            .as_str()
            .unwrap()
            .to_string();
        // an over-amplitude program: violates even the permissive emulator spec
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 1e6, 0.0, 0.0).unwrap());
        let bad = ProgramIr::new(b.build().unwrap(), 10, "t");
        let submit = format!(
            r#"{{"token":"{token}","ir":{}}}"#,
            serde_json::to_string(&bad).unwrap()
        );
        let (st, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        assert_eq!(st, 422, "{body}");
    }

    #[test]
    fn cancel_via_rest_requires_token() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        let (_, body) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"test"}"#),
        )
        .unwrap();
        let token = serde_json::from_str::<serde_json::Value>(&body).unwrap()["token"]
            .as_str()
            .unwrap()
            .to_string();
        let submit = format!(r#"{{"token":"{token}","ir":{}}}"#, ir_json(5));
        let (_, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        let id = serde_json::from_str::<serde_json::Value>(&body).unwrap()["task_id"]
            .as_u64()
            .unwrap();
        let (st, _) = http_request(&addr, "DELETE", &format!("/v1/tasks/{id}"), None).unwrap();
        assert_eq!(st, 400, "token required");
        let (st, _) = http_request(
            &addr,
            "DELETE",
            &format!("/v1/tasks/{id}?token={token}"),
            None,
        )
        .unwrap();
        assert_eq!(st, 200);
    }

    #[test]
    fn admin_routes_404_without_device() {
        let server = serve(service()).unwrap();
        let (st, _) = http_request(server.addr(), "GET", "/v1/admin/qpu/status", None).unwrap();
        assert_eq!(st, 404);
    }

    #[test]
    fn malformed_submit_json_is_400() {
        let server = serve(service()).unwrap();
        let (st, body) =
            http_request(server.addr(), "POST", "/v1/tasks", Some("{not json")).unwrap();
        assert_eq!(st, 400, "{body}");
        // structurally valid JSON missing required fields is still a 400
        let (st, _) = http_request(server.addr(), "POST", "/v1/tasks", Some("{}")).unwrap();
        assert_eq!(st, 400);
    }

    #[test]
    fn unknown_session_token_is_401() {
        let server = serve(service()).unwrap();
        let submit = format!(r#"{{"token":"sess-0-doesnotexist","ir":{}}}"#, ir_json(5));
        let (st, body) = http_request(server.addr(), "POST", "/v1/tasks", Some(&submit)).unwrap();
        assert_eq!(st, 401, "{body}");
    }

    #[test]
    fn cancel_of_completed_task_is_409() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        let (_, body) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"test"}"#),
        )
        .unwrap();
        let token = serde_json::from_str::<serde_json::Value>(&body).unwrap()["token"]
            .as_str()
            .unwrap()
            .to_string();
        let submit = format!(r#"{{"token":"{token}","ir":{}}}"#, ir_json(5));
        let (_, body) = http_request(&addr, "POST", "/v1/tasks", Some(&submit)).unwrap();
        let id = serde_json::from_str::<serde_json::Value>(&body).unwrap()["task_id"]
            .as_u64()
            .unwrap();
        let (st, _) = http_request(&addr, "POST", "/v1/pump", Some("{}")).unwrap();
        assert_eq!(st, 200);
        let (st, body) = http_request(
            &addr,
            "DELETE",
            &format!("/v1/tasks/{id}?token={token}"),
            None,
        )
        .unwrap();
        assert_eq!(st, 409, "{body}");
    }

    #[test]
    fn healthz_is_200_serving_503_draining() {
        let svc = service();
        let server = serve(Arc::clone(&svc)).unwrap();
        let addr = server.addr().to_string();
        let (st, body) = http_request(&addr, "GET", "/v1/healthz", None).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("ok"), "{body}");
        // readiness agrees while serving as leader
        let (st, body) = http_request(&addr, "GET", "/v1/readyz", None).unwrap();
        assert_eq!(st, 200, "{body}");
        assert!(body.contains(r#""role":"leader""#), "{body}");
        svc.shutdown(std::time::Duration::from_millis(50));
        let (st, body) = http_request(&addr, "GET", "/v1/healthz", None).unwrap();
        assert_eq!(st, 503, "{body}");
        assert!(body.contains("stopped"), "{body}");
        let (st, body) = http_request(&addr, "GET", "/v1/readyz", None).unwrap();
        assert_eq!(st, 503, "{body}");
        assert!(body.contains(r#""role":"stopped""#), "{body}");
        // a stopped daemon refuses new sessions with 503 too
        let (st, _) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"test"}"#),
        )
        .unwrap();
        assert_eq!(st, 503);
    }

    /// Liveness and readiness split: a healthy *follower* is alive (healthz
    /// 200) but must not take traffic (readyz 503) — and it refuses client
    /// work with 503 until promoted.
    #[test]
    fn follower_is_live_but_not_ready() {
        let svc = service();
        svc.set_role(crate::daemon::ReplicaRole::Follower);
        let server = serve(Arc::clone(&svc)).unwrap();
        let addr = server.addr().to_string();
        let (st, body) = http_request(&addr, "GET", "/v1/healthz", None).unwrap();
        assert_eq!(st, 200, "{body}");
        let (st, body) = http_request(&addr, "GET", "/v1/readyz", None).unwrap();
        assert_eq!(st, 503, "{body}");
        assert!(body.contains(r#""role":"follower""#), "{body}");
        let (st, _) = http_request(
            &addr,
            "POST",
            "/v1/sessions",
            Some(r#"{"user":"x","class":"test"}"#),
        )
        .unwrap();
        assert_eq!(st, 503, "followers admit no client work");
        svc.set_role(crate::daemon::ReplicaRole::Leader);
        let (st, body) = http_request(&addr, "GET", "/v1/readyz", None).unwrap();
        assert_eq!(st, 200, "{body}");
        assert!(body.contains(r#""ready":true"#), "{body}");
    }

    /// Regression: `status_text` used to miss 503/429, so backpressure
    /// responses went out as `HTTP/1.1 503 Unknown`. Assert the raw status
    /// line on the wire.
    #[test]
    fn status_lines_carry_reason_phrases() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;
        let svc = service();
        let server = serve(Arc::clone(&svc)).unwrap();
        svc.shutdown(std::time::Duration::from_millis(10));
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "HTTP/1.1 503 Service Unavailable");
        let wire = String::from_utf8(Response::json(429, "{}").encode(false)).unwrap();
        assert!(
            wire.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "got: {wire}"
        );
    }

    /// The REST transport reports its connection counters into the daemon
    /// registry: they are visible on `GET /metrics` like every other
    /// subsystem.
    #[test]
    fn transport_counters_show_up_on_metrics_route() {
        let server = serve(service()).unwrap();
        let addr = server.addr();
        let (st, _) = http_request(&addr, "GET", "/v1/healthz", None).unwrap();
        assert_eq!(st, 200);
        let (st, body) = http_request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(st, 200);
        assert!(
            body.contains("http_connections_accepted_total"),
            "transport counters missing from /metrics"
        );
        assert!(body.contains("http_requests_total"));
    }

    /// Per-lock contention/hold-time gauges from `hpcqc_sync` reach the real
    /// `GET /metrics` route: the queue lock (acquired on every submit/pump)
    /// must show up with acquisition counts and hold-time quantiles.
    #[test]
    fn lock_contention_metrics_show_up_on_metrics_route() {
        let svc = service();
        let tok = svc
            .open_session("lisa", crate::session::PriorityClass::Production)
            .unwrap();
        let ir: ProgramIr = serde_json::from_str(&ir_json(5)).unwrap();
        svc.submit(&tok, ir, hpcqc_scheduler::PatternHint::None)
            .unwrap();
        svc.pump();
        let server = serve(svc).unwrap();
        let (st, body) = http_request(server.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(st, 200);
        assert!(
            body.contains("lock_acquisitions{lock=\"middleware.daemon.queue\"}"),
            "queue lock stats missing from /metrics:\n{body}"
        );
        assert!(
            body.contains("lock_hold_seconds{lock=\"middleware.daemon.queue\",quantile=\"0.99\"}"),
            "hold-time quantiles missing from /metrics"
        );
        assert!(
            body.contains("lock_contended_acquisitions{lock=\"middleware.daemon.dispatch\"}"),
            "contention gauge missing from /metrics"
        );
    }
}
