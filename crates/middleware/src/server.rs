//! Readiness-driven HTTP server: one event thread, a poller, and a small
//! handler pool.
//!
//! Replaces the thread-per-connection front end: a quantum access node
//! serves many interactive SDK sessions (paper §3.3), and a thread per
//! connection melts under thousands of keep-alive clients. Instead one
//! event thread multiplexes every connection through an epoll-backed
//! [`mio::Poll`]:
//!
//! * **non-blocking accept** with a bounded connection table — at the cap
//!   the next arrival is answered `503` and the listener leaves the poll
//!   set (accept pause) until the table drains below a low watermark;
//! * **incremental per-connection parsing** — bytes accumulate in a
//!   per-connection buffer and requests are cut out as they complete, so
//!   HTTP/1.1 keep-alive and pipelined requests work; one request is in
//!   flight per connection, further pipelined bytes wait in the buffer
//!   (bounded — read interest is dropped past a cap, pushing backpressure
//!   into TCP);
//! * **buffered writes** — partial writes park the remainder and re-arm
//!   write interest;
//! * **deadlines** — a sweeper closes connections that dribble a request
//!   slower than `request_deadline` (slowloris defense) or idle past
//!   `idle_timeout` between requests;
//! * **handler offload** — requests run on a small worker pool so a slow
//!   handler cannot stall the wire; completions return through a
//!   [`mio::Waker`]. With `workers = 0` (the default on a single-core
//!   node) handlers run inline on the event thread;
//! * **wakeup shutdown** — `Drop` stops the loop through the waker, not
//!   the old connect-to-self trick that raced the accept loop;
//! * **segmented `writev` output** — each connection queues response
//!   segments (head, then the body `Vec` moved without a copy) and flushes
//!   them with one vectored write, so a keep-alive burst of pipelined
//!   responses costs one syscall, not one per response;
//! * **`SO_REUSEPORT` shards** — with [`ServerConfig::shards`] > 1 the
//!   server binds N listeners to the same port and runs N independent
//!   event loops; the kernel hash-balances connections across them, so
//!   there is no shared accept queue, connection table, or poller between
//!   shards. On a single core this is ~1× (documented honestly in
//!   BENCH_rest.json); it exists so multi-core access nodes scale the
//!   ingest path without a dispatcher thread.

use crate::http::{
    error_response, parse_head_bytes, Handler, HttpError, ParsedHead, Request, Response,
    MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
use hpcqc_sync::{rank, TrackedMutex};
use hpcqc_telemetry::TransportMetrics;
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const LISTENER: Token = Token(usize::MAX);
const WAKER: Token = Token(usize::MAX - 1);
/// Pipelined input buffered per connection while a request is in flight
/// before read interest is paused (backpressure flows into TCP).
const PIPELINE_BUF_CAP: usize = 64 << 10;
/// Bytes read per connection per readiness event (fairness under load;
/// level-triggered polling re-arms leftovers immediately).
const READ_BUDGET: usize = 64 << 10;

/// Tuning knobs for [`HttpServer`]. `Default` suits tests and the daemon.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Connection-table hard cap; the arrival that finds the table full is
    /// answered `503` and accepting pauses. 0 = default (4096).
    pub max_connections: usize,
    /// Keep-alive connections idle longer than this are closed.
    /// Zero = default (30 s).
    pub idle_timeout: Duration,
    /// A connection that has started a request must deliver all of it
    /// within this window or be closed (slowloris defense).
    /// Zero = default (10 s).
    pub request_deadline: Duration,
    /// Handler threads *per shard*. `None` = spare cores (cores − 1,
    /// capped at 4); `Some(0)` = run handlers inline on the event thread.
    pub workers: Option<usize>,
    /// `SO_REUSEPORT` event-loop shards sharing the port. 0 or 1 = one
    /// event loop (the classic layout). Values > 1 require kernel
    /// `SO_REUSEPORT` (Linux); elsewhere the server degrades to 1 shard.
    pub shards: usize,
    /// Transport telemetry sink (connection lifecycle, backpressure,
    /// deadline closes). Shards share the sink; counters aggregate.
    pub metrics: Option<TransportMetrics>,
}

impl ServerConfig {
    fn max_connections(&self) -> usize {
        if self.max_connections == 0 {
            4096
        } else {
            self.max_connections
        }
    }

    fn idle_timeout(&self) -> Duration {
        if self.idle_timeout.is_zero() {
            Duration::from_secs(30)
        } else {
            self.idle_timeout
        }
    }

    fn request_deadline(&self) -> Duration {
        if self.request_deadline.is_zero() {
            Duration::from_secs(10)
        } else {
            self.request_deadline
        }
    }

    fn worker_count(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .saturating_sub(1)
                .min(4)
        })
    }

    fn shard_count(&self) -> usize {
        match self.shards {
            0 | 1 => 1,
            n if mio::net::reuseport_supported() => n.min(64),
            _ => 1, // no SO_REUSEPORT on this platform: single accept queue
        }
    }
}

/// A request handed to the worker pool: connection slot, generation (stale
/// completions for a recycled slot are dropped), and the parsed request.
type Job = (usize, u64, Request);
type Completion = (usize, u64, Response);

/// A running HTTP server bound to 127.0.0.1 — one event loop per shard.
pub struct HttpServer {
    port: u16,
    shards: usize,
    stop: Arc<AtomicBool>,
    wakers: Vec<Arc<Waker>>,
    event_threads: Vec<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Bind an ephemeral localhost port and serve `handler` until dropped.
    pub fn spawn(handler: Handler) -> std::io::Result<Self> {
        Self::spawn_on(0, handler)
    }

    /// Bind a specific localhost port (0 = ephemeral) and serve `handler`
    /// until dropped.
    pub fn spawn_on(port: u16, handler: Handler) -> std::io::Result<Self> {
        Self::spawn_with(port, handler, ServerConfig::default())
    }

    /// [`spawn_on`](Self::spawn_on) with explicit tuning.
    pub fn spawn_with(port: u16, handler: Handler, cfg: ServerConfig) -> std::io::Result<Self> {
        let shard_count = cfg.shard_count();
        // First listener resolves the port (0 = ephemeral); the rest bind
        // the resolved port with SO_REUSEPORT so the kernel splits the
        // accept load across shards.
        let first = if shard_count == 1 {
            TcpListener::bind(("127.0.0.1", port))?
        } else {
            mio::net::bind_reuseport(port)?
        };
        let port = first.local_addr()?.port();
        let mut listeners = vec![first];
        for _ in 1..shard_count {
            listeners.push(mio::net::bind_reuseport(port)?);
        }

        let stop = Arc::new(AtomicBool::new(false));
        let mut wakers = Vec::with_capacity(shard_count);
        let mut event_threads = Vec::with_capacity(shard_count);
        let mut worker_threads = Vec::new();
        let worker_count = cfg.worker_count();

        for (shard, listener) in listeners.into_iter().enumerate() {
            listener.set_nonblocking(true)?;
            let poll = Poll::new()?;
            poll.registry()
                .register(&listener, LISTENER, Interest::READABLE)?;
            let waker = Arc::new(Waker::new(poll.registry(), WAKER)?);
            wakers.push(waker.clone());
            let completions: Arc<TrackedMutex<Vec<Completion>>> = Arc::new(TrackedMutex::new(
                "middleware.server.completions",
                rank::SERVER_COMPLETIONS,
                Vec::new(),
            ));

            let handler = handler.clone();
            let jobs_tx = if worker_count == 0 {
                None
            } else {
                let (tx, rx) = std::sync::mpsc::channel::<Job>();
                let rx = Arc::new(Mutex::new(rx));
                for i in 0..worker_count {
                    let rx = rx.clone();
                    let handler = handler.clone();
                    let completions = completions.clone();
                    let waker = waker.clone();
                    worker_threads.push(
                        std::thread::Builder::new()
                            .name(format!("http-worker-{shard}-{i}"))
                            .spawn(move || worker_loop(&rx, &handler, &completions, &waker))
                            .expect("spawn http worker"),
                    );
                }
                Some(tx)
            };

            let stop2 = stop.clone();
            let metrics = cfg.metrics.clone();
            let (max_connections, idle_timeout, request_deadline) = (
                cfg.max_connections(),
                cfg.idle_timeout(),
                cfg.request_deadline(),
            );
            event_threads.push(
                std::thread::Builder::new()
                    .name(format!("http-event-loop-{shard}"))
                    .spawn(move || {
                        EventLoop {
                            poll,
                            listener,
                            handler,
                            max_connections,
                            idle_timeout,
                            request_deadline,
                            metrics,
                            conns: Vec::new(),
                            free: Vec::new(),
                            free_pending: Vec::new(),
                            active: 0,
                            accept_paused: false,
                            next_gen: 0,
                            jobs_tx,
                            completions,
                            stop: stop2,
                            scratch: vec![0u8; 16 << 10],
                        }
                        .run();
                    })
                    .expect("spawn http event loop"),
            );
        }

        Ok(HttpServer {
            port,
            shards: shard_count,
            stop,
            wakers,
            event_threads,
            worker_threads,
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// How many event-loop shards are actually running (the configured
    /// count, clamped by platform support).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Base URL, e.g. `127.0.0.1:45123`.
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake every shard's poller through its waker eventfd — unlike the
        // old connect-to-self trick this cannot race the accept loop or
        // hang when a table is full and accepting is paused.
        for w in &self.wakers {
            let _ = w.wake();
        }
        for t in self.event_threads.drain(..) {
            let _ = t.join();
        }
        // Each event loop dropped its job sender on exit; workers finish
        // their in-flight handler and see the closed channel.
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    handler: &Handler,
    completions: &TrackedMutex<Vec<Completion>>,
    waker: &Waker,
) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        let Ok((idx, gen, req)) = job else { break };
        let resp = run_handler(handler, req);
        completions.lock().push((idx, gen, resp));
        let _ = waker.wake();
    }
}

/// A handler panic answers 500 and kills neither the worker nor the
/// connection's peer silently.
fn run_handler(handler: &Handler, req: Request) -> Response {
    catch_unwind(AssertUnwindSafe(|| handler(req)))
        .unwrap_or_else(|_| Response::json(500, r#"{"error":"handler panicked"}"#))
}

/// Per-connection state in the slab.
struct Conn {
    stream: TcpStream,
    gen: u64,
    /// Accumulated unparsed input.
    rbuf: Vec<u8>,
    /// Pending output as a queue of segments flushed with `writev`: a
    /// response contributes its head and — without copying — its body
    /// `Vec`; pipelined responses stack further segments. `wpos` offsets
    /// into the front segment, `wlen` caches total unwritten bytes.
    wq: VecDeque<Vec<u8>>,
    wpos: usize,
    wlen: usize,
    /// Parsed head of the request currently being assembled (body pending).
    head: Option<ParsedHead>,
    /// A request from this connection is with a handler.
    busy: bool,
    /// Whether the in-flight request permits keep-alive.
    req_keep_alive: bool,
    close_after_write: bool,
    /// No further reads: the peer closed (EOF) or the server gave up on
    /// this connection's input after a parse error.
    reads_done: bool,
    /// Requests completed on this connection (≥ 1 ⇒ keep-alive reuse).
    served: u64,
    /// Interest bits currently registered with the poller (0 = none).
    registered: u8,
    last_activity: Instant,
    /// When the currently-incomplete request started arriving.
    request_started: Option<Instant>,
}

const REG_READ: u8 = 0b01;
const REG_WRITE: u8 = 0b10;
/// Segments gathered into one `writev` call (IOV_MAX is far higher, but a
/// keep-alive burst rarely stacks more than a few responses).
const MAX_IOVECS: usize = 64;

impl Conn {
    /// Queue a response for the wire: the head as one segment and the body
    /// `Vec` *moved* as a second — the flush gathers both (plus any
    /// pipelined successors) into a single `writev`.
    fn enqueue_response(&mut self, resp: Response, keep_alive: bool) {
        let mut head = Vec::new();
        resp.encode_head_into(keep_alive, &mut head);
        self.wlen += head.len() + resp.body.len();
        self.wq.push_back(head);
        if !resp.body.is_empty() {
            self.wq.push_back(resp.body);
        }
    }
}

enum Extract {
    /// Nothing further to do (need more bytes, or a request is in flight).
    Pending,
    /// A complete request was cut out of the buffer.
    Ready(Request),
    /// The connection was closed (error or clean EOF).
    Closed,
}

struct EventLoop {
    poll: Poll,
    listener: TcpListener,
    handler: Handler,
    max_connections: usize,
    idle_timeout: Duration,
    request_deadline: Duration,
    metrics: Option<TransportMetrics>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slots freed during the current event batch; recycled only at the
    /// next loop turn so stale events in this batch cannot touch a new
    /// connection.
    free_pending: Vec<usize>,
    active: usize,
    accept_paused: bool,
    next_gen: u64,
    /// `None` ⇒ handlers run inline on the event thread.
    jobs_tx: Option<Sender<Job>>,
    completions: Arc<TrackedMutex<Vec<Completion>>>,
    stop: Arc<AtomicBool>,
    scratch: Vec<u8>,
}

impl EventLoop {
    fn run(mut self) {
        let sweep_interval = (self.request_deadline / 4)
            .min(self.idle_timeout / 4)
            .clamp(Duration::from_millis(5), Duration::from_millis(100));
        let mut events = Events::with_capacity(1024);
        let mut next_sweep = Instant::now() + sweep_interval;
        while !self.stop.load(Ordering::SeqCst) {
            self.free.append(&mut self.free_pending);
            let timeout = next_sweep.saturating_duration_since(Instant::now());
            let _ = self.poll.poll(&mut events, Some(timeout));
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            for ev in &events {
                match ev.token() {
                    LISTENER => self.accept_ready(),
                    WAKER => {}
                    Token(idx) => self.conn_event(idx, ev.is_readable(), ev.is_writable()),
                }
            }
            self.drain_completions();
            let now = Instant::now();
            if now >= next_sweep {
                self.sweep(now);
                next_sweep = now + sweep_interval;
            }
        }
        // Shutdown: close every connection, then drop the job sender so
        // workers drain and exit.
        for idx in 0..self.conns.len() {
            self.close(idx);
        }
        let _ = self.poll.registry().deregister(&self.listener);
    }

    fn metrics(&self) -> Option<&TransportMetrics> {
        self.metrics.as_ref()
    }

    // ---- accept path ----

    fn accept_ready(&mut self) {
        loop {
            if self.active >= self.max_connections {
                // Full table: the listener stays registered so the *next*
                // arrival is load-shed with a 503 — clients see
                // backpressure, not silence — and only then does accepting
                // pause; later arrivals queue in the kernel backlog until
                // the table drains below the watermark.
                match self.listener.accept() {
                    Ok((mut s, _)) => {
                        let resp = Response::json(503, r#"{"error":"connection table full"}"#);
                        let _ = s.write_all(&resp.encode(false));
                        if let Some(m) = self.metrics() {
                            m.rejected();
                            m.request(503);
                        }
                        self.pause_accept();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    // Persistent accept errors with a pending connection
                    // would spin a level-triggered poller: pause, let the
                    // sweeper re-arm below the watermark.
                    Err(_) => self.pause_accept(),
                }
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.pause_accept();
                    return;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        self.next_gen += 1;
        let conn = Conn {
            stream,
            gen: self.next_gen,
            rbuf: Vec::new(),
            wq: VecDeque::new(),
            wpos: 0,
            wlen: 0,
            head: None,
            busy: false,
            req_keep_alive: true,
            close_after_write: false,
            reads_done: false,
            served: 0,
            registered: 0,
            last_activity: Instant::now(),
            request_started: None,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.conns[i] = Some(conn);
                i
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.active += 1;
        if let Some(m) = self.metrics() {
            m.accepted();
        }
        self.update_interest(idx);
    }

    fn pause_accept(&mut self) {
        if !self.accept_paused {
            self.accept_paused = true;
            let _ = self.poll.registry().deregister(&self.listener);
            if let Some(m) = self.metrics() {
                m.accept_paused();
            }
        }
    }

    fn maybe_resume_accept(&mut self) {
        let low_watermark = self
            .max_connections
            .saturating_sub((self.max_connections / 8).max(1));
        if self.accept_paused && self.active <= low_watermark {
            self.accept_paused = false;
            let _ = self
                .poll
                .registry()
                .register(&self.listener, LISTENER, Interest::READABLE);
            if let Some(m) = self.metrics() {
                m.accept_resumed();
            }
        }
    }

    // ---- connection I/O ----

    fn conn_event(&mut self, idx: usize, readable: bool, writable: bool) {
        if !matches!(self.conns.get(idx), Some(Some(_))) {
            return; // stale event for a slot closed earlier in this batch
        }
        if writable && !self.flush_write(idx) {
            return;
        }
        if readable {
            self.do_read(idx);
        }
    }

    /// Pull available bytes into the connection buffer (bounded per event),
    /// then advance the request state machine.
    fn do_read(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if conn.reads_done {
            return;
        }
        let mut budget = READ_BUDGET;
        loop {
            if conn.busy && conn.rbuf.len() >= PIPELINE_BUF_CAP {
                break; // pipelined input parked until the handler returns
            }
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.reads_done = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&self.scratch[..n]);
                    conn.last_activity = Instant::now();
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
        self.advance(idx);
    }

    /// Run the per-connection state machine until it needs more bytes, a
    /// request is in flight, or the connection closes. Inline mode loops
    /// here so a buffer of pipelined requests is served without recursion.
    fn advance(&mut self, idx: usize) {
        loop {
            match self.try_extract(idx) {
                Extract::Pending => break,
                Extract::Closed => return,
                Extract::Ready(req) => {
                    let gen = match self.conns[idx].as_mut() {
                        Some(c) => {
                            c.busy = true;
                            c.request_started = None;
                            c.gen
                        }
                        None => return,
                    };
                    match &self.jobs_tx {
                        Some(tx) => {
                            let _ = tx.send((idx, gen, req));
                            break;
                        }
                        None => {
                            let resp = run_handler(&self.handler, req);
                            if !self.finish(idx, gen, resp) {
                                return;
                            }
                        }
                    }
                }
            }
        }
        self.update_interest(idx);
    }

    /// Try to cut one complete request out of the connection buffer.
    fn try_extract(&mut self, idx: usize) -> Extract {
        let Some(conn) = self.conns[idx].as_mut() else {
            return Extract::Closed;
        };
        if conn.busy || conn.wlen > 0 {
            return Extract::Pending;
        }
        // ---- head ----
        if conn.head.is_none() && !conn.rbuf.is_empty() {
            match find_head_end(&conn.rbuf) {
                Some(end) if end > MAX_HEAD_BYTES => {
                    return self.error_close(idx, &HttpError::TooLarge);
                }
                Some(end) => match parse_head_bytes(&conn.rbuf[..end]) {
                    Ok(head) if head.content_length > MAX_BODY_BYTES => {
                        return self.error_close(idx, &HttpError::TooLarge);
                    }
                    Ok(head) => {
                        conn.rbuf.drain(..end);
                        conn.head = Some(head);
                    }
                    Err(e) => return self.error_close(idx, &e),
                },
                None if conn.rbuf.len() > MAX_HEAD_BYTES => {
                    return self.error_close(idx, &HttpError::TooLarge);
                }
                None => {}
            }
        }
        let Some(conn) = self.conns[idx].as_mut() else {
            return Extract::Closed;
        };
        // ---- body ----
        let body_len = conn.head.as_ref().map(|h| h.content_length);
        if let Some(len) = body_len {
            if conn.rbuf.len() >= len {
                let head = conn.head.take().expect("head just checked");
                let mut req = head.request;
                req.body = conn.rbuf.drain(..len).collect();
                conn.req_keep_alive = head.keep_alive;
                conn.request_started = None;
                return Extract::Ready(req);
            }
        }
        // ---- partial request bookkeeping / EOF ----
        let partial = conn.head.is_some() || !conn.rbuf.is_empty();
        if partial {
            if conn.request_started.is_none() {
                conn.request_started = Some(Instant::now());
            }
        } else {
            conn.request_started = None;
        }
        if conn.reads_done {
            // EOF with nothing completable: clean close (empty buffer) or
            // truncated request (partial buffer) — either way, close.
            self.close(idx);
            return Extract::Closed;
        }
        Extract::Pending
    }

    /// Answer a protocol error and mark the connection for close; input is
    /// no longer read (the stream position is unrecoverable).
    fn error_close(&mut self, idx: usize, e: &HttpError) -> Extract {
        let resp = error_response(e);
        if let Some(m) = self.metrics() {
            m.request(resp.status);
        }
        let Some(conn) = self.conns[idx].as_mut() else {
            return Extract::Closed;
        };
        conn.rbuf.clear();
        conn.head = None;
        conn.reads_done = true;
        conn.close_after_write = true;
        conn.request_started = None;
        conn.enqueue_response(resp, false);
        if self.flush_write(idx) {
            self.update_interest(idx);
        }
        Extract::Closed
    }

    /// A handler produced `resp` for request `gen` on slot `idx`. Returns
    /// true when the connection is still open with an empty write buffer —
    /// i.e. the caller may continue extracting pipelined requests.
    fn finish(&mut self, idx: usize, gen: u64, resp: Response) -> bool {
        let stopping = self.stop.load(Ordering::SeqCst);
        let status = resp.status;
        let served;
        {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return false;
            };
            if conn.gen != gen {
                return false; // slot was recycled; response belongs to the past
            }
            conn.busy = false;
            conn.served += 1;
            served = conn.served;
            let close = conn.close_after_write || !conn.req_keep_alive || stopping;
            conn.close_after_write = close;
            conn.enqueue_response(resp, !close);
            conn.last_activity = Instant::now();
        }
        if let Some(m) = self.metrics() {
            m.request(status);
            if served > 1 {
                m.keepalive_reuse();
            }
        }
        self.flush_write(idx)
            && self.conns[idx]
                .as_ref()
                .is_some_and(|c| c.wlen == 0 && !c.close_after_write)
    }

    /// Write as much pending output as the socket takes. Returns false when
    /// the connection was closed.
    fn flush_write(&mut self, idx: usize) -> bool {
        enum Outcome {
            Drained { close_after: bool },
            Blocked,
            Broken,
        }
        let outcome = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return false;
            };
            loop {
                if conn.wlen == 0 {
                    conn.wq.clear();
                    conn.wpos = 0;
                    break Outcome::Drained {
                        close_after: conn.close_after_write,
                    };
                }
                // Gather the segment queue (front offset by wpos) into one
                // vectored write: head + body + pipelined successors go out
                // in a single syscall without ever being memcpy'd together.
                let mut iov = [IoSlice::new(&[]); MAX_IOVECS];
                let mut n_iov = 0;
                for (i, seg) in conn.wq.iter().enumerate().take(MAX_IOVECS) {
                    iov[n_iov] = IoSlice::new(if i == 0 { &seg[conn.wpos..] } else { seg });
                    n_iov += 1;
                }
                match conn.stream.write_vectored(&iov[..n_iov]) {
                    Ok(0) => break Outcome::Broken,
                    Ok(mut n) => {
                        conn.wlen -= n;
                        conn.last_activity = Instant::now();
                        // Consume written bytes across whole segments.
                        while n > 0 {
                            let front_left =
                                conn.wq.front().expect("bytes imply a segment").len() - conn.wpos;
                            if n >= front_left {
                                n -= front_left;
                                conn.wq.pop_front();
                                conn.wpos = 0;
                            } else {
                                conn.wpos += n;
                                n = 0;
                            }
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break Outcome::Blocked,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break Outcome::Broken,
                }
            }
        };
        match outcome {
            Outcome::Broken | Outcome::Drained { close_after: true } => {
                self.close(idx);
                false
            }
            Outcome::Drained { close_after: false } | Outcome::Blocked => {
                self.update_interest(idx);
                true
            }
        }
    }

    /// Reconcile the poller's interest set with the connection's state.
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        let want_read = !conn.reads_done && (!conn.busy || conn.rbuf.len() < PIPELINE_BUF_CAP);
        let want_write = conn.wlen > 0;
        let desired = (want_read as u8 * REG_READ) | (want_write as u8 * REG_WRITE);
        if desired == conn.registered {
            return;
        }
        let registry = self.poll.registry();
        let result = match desired {
            0 => registry.deregister(&conn.stream),
            _ => {
                let interest = match (want_read, want_write) {
                    (true, true) => Interest::READABLE.add(Interest::WRITABLE),
                    (true, false) => Interest::READABLE,
                    _ => Interest::WRITABLE,
                };
                if conn.registered == 0 {
                    registry.register(&conn.stream, Token(idx), interest)
                } else {
                    registry.reregister(&conn.stream, Token(idx), interest)
                }
            }
        };
        match result {
            Ok(()) => conn.registered = desired,
            Err(_) => self.close(idx),
        }
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) {
            if conn.registered != 0 {
                let _ = self.poll.registry().deregister(&conn.stream);
            }
            self.active -= 1;
            self.free_pending.push(idx);
            if let Some(m) = self.metrics() {
                m.closed();
            }
            self.maybe_resume_accept();
        }
    }

    // ---- deferred work ----

    fn drain_completions(&mut self) {
        let done = {
            let mut guard = self.completions.lock();
            std::mem::take(&mut *guard)
        };
        for (idx, gen, resp) in done {
            if self.finish(idx, gen, resp) {
                self.advance(idx); // pipelined requests may be waiting
            }
        }
    }

    /// Enforce read and idle deadlines; also re-arms accept after fd-level
    /// accept errors once below the watermark.
    fn sweep(&mut self, now: Instant) {
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_ref() else {
                continue;
            };
            if conn.busy {
                continue; // handler latency is not a wire deadline
            }
            if let Some(started) = conn.request_started {
                if now.duration_since(started) > self.request_deadline {
                    if let Some(m) = self.metrics() {
                        m.deadline_close("read");
                    }
                    self.close(idx);
                }
            } else if now.duration_since(conn.last_activity) > self.idle_timeout {
                if let Some(m) = self.metrics() {
                    m.deadline_close("idle");
                }
                self.close(idx);
            }
        }
        self.maybe_resume_accept();
    }
}

/// Position one past the `\r\n\r\n` (or bare `\n\n`) head terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::http_request;
    use std::io::{BufRead, BufReader};

    fn ok_handler() -> Handler {
        Arc::new(|req: Request| Response::json(200, format!(r#"{{"path":{:?}}}"#, req.path)))
    }

    #[test]
    fn find_head_end_variants() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\nrest"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn inline_mode_round_trip() {
        let server = HttpServer::spawn_with(
            0,
            ok_handler(),
            ServerConfig {
                workers: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        let (status, body) = http_request(server.addr(), "GET", "/inline", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("/inline"));
    }

    #[test]
    fn pooled_mode_round_trip() {
        let server = HttpServer::spawn_with(
            0,
            ok_handler(),
            ServerConfig {
                workers: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        let (status, body) = http_request(server.addr(), "GET", "/pooled", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("/pooled"));
    }

    #[test]
    fn handler_panic_answers_500() {
        let server = HttpServer::spawn(Arc::new(|req: Request| {
            if req.path == "/boom" {
                panic!("handler exploded");
            }
            Response::json(200, "{}")
        }))
        .unwrap();
        let (status, body) = http_request(server.addr(), "GET", "/boom", None).unwrap();
        assert_eq!(status, 500);
        assert!(body.contains("panicked"), "body: {body}");
        // The server survives.
        let (status, _) = http_request(server.addr(), "GET", "/fine", None).unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn connection_cap_rejects_with_503_and_resumes() {
        let metrics = TransportMetrics::default();
        let server = HttpServer::spawn_with(
            0,
            ok_handler(),
            ServerConfig {
                max_connections: 2,
                metrics: Some(metrics.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        // Fill the table with two parked keep-alive connections.
        let hold1 = TcpStream::connect(server.addr()).unwrap();
        let hold2 = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // The third arrival is shed with a 503.
        let shed = TcpStream::connect(server.addr()).unwrap();
        let mut line = String::new();
        BufReader::new(shed).read_line(&mut line).unwrap();
        assert!(line.contains("503"), "got: {line}");
        drop(hold1);
        drop(hold2);
        // After the table drains, accepting resumes and requests succeed.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match http_request(server.addr(), "GET", "/after", None) {
                Ok((200, _)) => break,
                _ if Instant::now() > deadline => panic!("accept never resumed"),
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        assert!(metrics.value("http_connections_rejected_total") >= 1.0);
        assert!(metrics.value("http_accept_pauses_total") >= 1.0);
        assert!(metrics.value("http_accept_resumes_total") >= 1.0);
    }

    #[test]
    fn sharded_server_round_trip() {
        let server = HttpServer::spawn_with(
            0,
            ok_handler(),
            ServerConfig {
                shards: 2,
                workers: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        if mio::net::reuseport_supported() {
            assert_eq!(server.shards(), 2);
        } else {
            assert_eq!(server.shards(), 1, "no SO_REUSEPORT: degrade to one shard");
        }
        // Many short-lived connections: the kernel spreads them across the
        // shard listeners; every one must be answered regardless of shard.
        for i in 0..32 {
            let (status, body) =
                http_request(server.addr(), "GET", &format!("/shard-{i}"), None).unwrap();
            assert_eq!(status, 200);
            assert!(body.contains(&format!("/shard-{i}")));
        }
        // Keep-alive clients work against a sharded listener too.
        let client = crate::http::HttpClient::new(server.addr());
        for _ in 0..8 {
            assert_eq!(client.request("GET", "/ka", None).unwrap().0, 200);
        }
    }

    #[test]
    fn pipelined_requests_coalesce_responses() {
        // Two pipelined requests arrive in one segment; both answers must
        // come back, in order, over the shared writev-backed queue.
        let server = HttpServer::spawn_with(
            0,
            ok_handler(),
            ServerConfig {
                workers: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                b"GET /first HTTP/1.1\r\nhost: x\r\n\r\nGET /second HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
            )
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut all = Vec::new();
        reader.read_to_end(&mut all).unwrap();
        let text = String::from_utf8_lossy(&all);
        let first = text.find("/first").expect("first response present");
        let second = text.find("/second").expect("second response present");
        assert!(first < second, "responses out of order: {text}");
        assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
    }

    #[test]
    fn large_body_flushes_across_partial_writes() {
        // A body far larger than the socket buffer forces the Blocked path
        // and multi-round writev flushes; the client must still receive
        // every byte intact.
        let payload = "x".repeat(768 << 10);
        let expected = payload.clone();
        let server = HttpServer::spawn(Arc::new(move |_req: Request| {
            Response::json(200, payload.clone())
        }))
        .unwrap();
        let (status, body) = http_request(server.addr(), "GET", "/big", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.len(), expected.len());
        assert_eq!(body, expected);
    }

    #[test]
    fn drop_under_load_shuts_down_bounded() {
        let server = HttpServer::spawn(ok_handler()).unwrap();
        let addr = server.addr();
        // Park several idle keep-alive connections plus one mid-request
        // dribble, then drop the server under that load.
        let parked: Vec<TcpStream> = (0..16)
            .map(|_| TcpStream::connect(&addr).unwrap())
            .collect();
        let mut dribble = TcpStream::connect(&addr).unwrap();
        dribble.write_all(b"GET /slow HTTP/1.1\r\n").unwrap();
        let started = Instant::now();
        drop(server);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "drop must not hang on open connections: {:?}",
            started.elapsed()
        );
        drop(parked);
        drop(dribble);
    }
}
