//! Minimal HTTP/1.1 transport over `std::net`.
//!
//! The daemon's REST API (paper §3.3) runs on a hand-rolled HTTP server:
//! thread-per-connection, `Connection: close` semantics, bounded request
//! sizes. No external web framework — the protocol slice needed by the
//! middleware is small and auditable, which matters for a service installed
//! with elevated access on a quantum access node (§3.4).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on accepted request bodies (1 MiB: programs are small).
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Upper bound on the request head (start line + headers).
pub const MAX_HEAD_BYTES: usize = 16 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters (no percent-decoding: the API uses plain
    /// tokens and numbers).
    pub query: BTreeMap<String, String>,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    /// Body as UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not UTF-8".into()))
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into().into_bytes(),
        }
    }

    pub fn not_found() -> Self {
        Response::json(404, r#"{"error":"not found"}"#)
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.status,
            self.status_text(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Parser/transport errors.
#[derive(Debug, Clone, PartialEq)]
pub enum HttpError {
    Malformed(String),
    TooLarge,
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => write!(f, "request too large"),
            HttpError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Parse one request from a buffered reader.
///
/// Total over `read`: malformed inputs produce `Err`, never panics —
/// property-tested against arbitrary byte soup.
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    // ---- head ----
    let mut head = Vec::new();
    let mut line = String::new();
    // request line
    let n = reader
        .read_line(&mut line)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    if n == 0 {
        return Err(HttpError::Malformed("empty request".into()));
    }
    head.extend_from_slice(line.as_bytes());
    let start = line.trim_end().to_string();
    let mut parts = start.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    if method.is_empty() || !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!("bad method {method:?}")));
    }
    // headers
    let mut headers = BTreeMap::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-headers".into()));
        }
        head.extend_from_slice(line.as_bytes());
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((k, v)) = trimmed.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {trimmed:?}")));
        };
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }
    // ---- body ----
    let len: usize = match headers.get("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; len];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    // ---- target ----
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_str.split('&').filter(|s| !s.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => query.insert(k.to_string(), v.to_string()),
            None => query.insert(pair.to_string(), String::new()),
        };
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// The request handler type.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// A running HTTP server bound to 127.0.0.1.
pub struct HttpServer {
    port: u16,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Bind an ephemeral localhost port and serve `handler` until dropped.
    pub fn spawn(handler: Handler) -> std::io::Result<Self> {
        Self::spawn_on(0, handler)
    }

    /// Bind a specific localhost port (0 = ephemeral) and serve `handler`
    /// until dropped.
    pub fn spawn_on(port: u16, handler: Handler) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let port = listener.local_addr()?.port();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let handler = handler.clone();
                std::thread::spawn(move || handle_connection(stream, handler));
            }
        });
        Ok(HttpServer {
            port,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Base URL, e.g. `127.0.0.1:45123`.
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // wake the accept loop
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, handler: Handler) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let response = match parse_request(&mut reader) {
        Ok(req) => handler(req),
        Err(HttpError::TooLarge) => Response::json(413, r#"{"error":"request too large"}"#),
        Err(e) => Response::json(400, format!(r#"{{"error":"{e}"}}"#)),
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Tiny blocking HTTP client for the runtime's session client and tests.
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), HttpError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| HttpError::Io(e.to_string()))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut content_length = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 || line.trim_end().is_empty() {
            break;
        }
        if let Some((k, v)) = line.trim_end().split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|_| HttpError::Malformed("response body not UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(s: &str) -> Result<Request, HttpError> {
        parse_request(&mut Cursor::new(s.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /v1/tasks/7?token=abc&verbose HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/tasks/7");
        assert_eq!(r.query["token"], "abc");
        assert_eq!(r.query["verbose"], "");
        assert_eq!(r.headers["host"], "x");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            parse("POST /v1/sessions HTTP/1.1\r\nContent-Length: 15\r\n\r\n{\"user\":\"ada\"}x")
                .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body.len(), 15);
        assert_eq!(r.body_str().unwrap(), "{\"user\":\"ada\"}x");
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse("").is_err());
        assert!(parse("GET\r\n\r\n").is_err());
        assert!(parse("GET /x\r\n\r\n").is_err(), "missing version");
        assert!(parse("GET /x SPDY/3\r\n\r\n").is_err());
        assert!(
            parse("get /x HTTP/1.1\r\n\r\n").is_err(),
            "lowercase method"
        );
        assert!(parse("GET /x HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: peanut\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let r = parse(&format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        ));
        assert_eq!(r, Err(HttpError::TooLarge));
    }

    #[test]
    fn rejects_truncated_body() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn server_round_trip_over_real_socket() {
        let server = HttpServer::spawn(Arc::new(|req: Request| {
            if req.path == "/ping" {
                Response::json(200, r#"{"pong":true}"#)
            } else {
                Response::not_found()
            }
        }))
        .unwrap();
        let (status, body) = http_request(server.addr(), "GET", "/ping", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"pong":true}"#);
        let (status, _) = http_request(server.addr(), "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn server_echoes_posted_body() {
        let server = HttpServer::spawn(Arc::new(|req: Request| {
            Response::json(200, req.body_str().unwrap_or("").to_string())
        }))
        .unwrap();
        let (status, body) =
            http_request(server.addr(), "POST", "/echo", Some(r#"{"k":42}"#)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"k":42}"#);
    }

    #[test]
    fn server_handles_concurrent_clients() {
        let server = HttpServer::spawn(Arc::new(|_req: Request| {
            Response::json(200, r#"{"ok":true}"#)
        }))
        .unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        let (status, _) = http_request(&addr, "GET", "/", None).unwrap();
                        assert_eq!(status, 200);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn malformed_request_gets_400_over_socket() {
        let server =
            HttpServer::spawn(Arc::new(|_req: Request| Response::json(200, "{}"))).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        BufReader::new(stream).read_line(&mut buf).unwrap();
        assert!(buf.contains("400"), "got: {buf}");
    }
}
