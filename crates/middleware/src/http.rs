//! Minimal HTTP/1.1 protocol layer over `std::net`.
//!
//! The daemon's REST API (paper §3.3) runs on a hand-rolled HTTP stack: no
//! external web framework — the protocol slice needed by the middleware is
//! small and auditable, which matters for a service installed with elevated
//! access on a quantum access node (§3.4).
//!
//! This module owns the *protocol*: request/response types, the head parser
//! shared by the blocking and incremental paths, bounded-size reads, and the
//! blocking clients ([`http_request`] one-shot, [`HttpClient`] keep-alive).
//! The readiness-driven event-loop server lives in [`crate::server`] and is
//! re-exported here as [`HttpServer`].
//!
//! Safety properties (property-tested against arbitrary byte soup):
//! * parsing is total — malformed inputs produce `Err`, never panics;
//! * every read is bounded *before* it happens — a peer cannot make the
//!   server buffer more than [`MAX_HEAD_BYTES`] of head or
//!   [`MAX_BODY_BYTES`] of body, not even transiently;
//! * error bodies are always valid JSON — parser error text is escaped
//!   through the JSON serializer, never string-interpolated.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

pub use crate::server::{HttpServer, ServerConfig};

/// Upper bound on accepted request bodies (1 MiB: programs are small).
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Upper bound on the request head (start line + headers).
pub const MAX_HEAD_BYTES: usize = 16 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters (no percent-decoding: the API uses plain
    /// tokens and numbers).
    pub query: BTreeMap<String, String>,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    /// Body as UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not UTF-8".into()))
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into().into_bytes(),
        }
    }

    /// A response with an explicit content type and raw byte body — the
    /// binary wire codec and the gateway's opaque forwarding use this.
    pub fn bytes(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Response {
            status,
            content_type,
            body,
        }
    }

    pub fn not_found() -> Self {
        Response::json(404, r#"{"error":"not found"}"#)
    }

    pub(crate) fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            415 => "Unsupported Media Type",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Preformatted status line for the codes the API actually emits. The
    /// submit hot path encodes one response per request; `format!` with five
    /// interpolations was measurable there, a static-slice copy is not.
    fn status_line(&self) -> Option<&'static str> {
        Some(match self.status {
            200 => "HTTP/1.1 200 OK\r\n",
            201 => "HTTP/1.1 201 Created\r\n",
            204 => "HTTP/1.1 204 No Content\r\n",
            400 => "HTTP/1.1 400 Bad Request\r\n",
            401 => "HTTP/1.1 401 Unauthorized\r\n",
            403 => "HTTP/1.1 403 Forbidden\r\n",
            404 => "HTTP/1.1 404 Not Found\r\n",
            408 => "HTTP/1.1 408 Request Timeout\r\n",
            409 => "HTTP/1.1 409 Conflict\r\n",
            413 => "HTTP/1.1 413 Payload Too Large\r\n",
            415 => "HTTP/1.1 415 Unsupported Media Type\r\n",
            422 => "HTTP/1.1 422 Unprocessable Entity\r\n",
            429 => "HTTP/1.1 429 Too Many Requests\r\n",
            500 => "HTTP/1.1 500 Internal Server Error\r\n",
            503 => "HTTP/1.1 503 Service Unavailable\r\n",
            _ => return None,
        })
    }

    /// Append the serialized head + body to `out` without intermediate
    /// allocations: preformatted status lines, static header fragments, and
    /// an integer fast path for `content-length` (no `format!` anywhere on
    /// the common codes). The event-loop server appends straight into the
    /// per-connection write buffer, so back-to-back pipelined responses
    /// coalesce into one buffer — and one `writev` syscall.
    pub fn encode_into(&self, keep_alive: bool, out: &mut Vec<u8>) {
        self.encode_head_into(keep_alive, out);
        out.extend_from_slice(&self.body);
    }

    /// Serialize only the head (status line + headers + blank line). The
    /// event-loop server queues the head and the body as separate `writev`
    /// segments, so the body `Vec` is *moved* onto the wire without a copy.
    pub fn encode_head_into(&self, keep_alive: bool, out: &mut Vec<u8>) {
        out.reserve(128 + self.content_type.len());
        match self.status_line() {
            Some(line) => out.extend_from_slice(line.as_bytes()),
            None => {
                out.extend_from_slice(b"HTTP/1.1 ");
                write_uint(out, self.status as u64);
                out.push(b' ');
                out.extend_from_slice(self.status_text().as_bytes());
                out.extend_from_slice(b"\r\n");
            }
        }
        out.extend_from_slice(b"content-type: ");
        out.extend_from_slice(self.content_type.as_bytes());
        out.extend_from_slice(b"\r\ncontent-length: ");
        write_uint(out, self.body.len() as u64);
        if keep_alive {
            out.extend_from_slice(b"\r\nconnection: keep-alive\r\n\r\n");
        } else {
            out.extend_from_slice(b"\r\nconnection: close\r\n\r\n");
        }
    }

    /// Serialize head + body into one wire buffer.
    ///
    /// `keep_alive` selects the `connection:` header; the server decides it
    /// per-request (client's `connection: close`, server backpressure,
    /// shutdown drain).
    pub fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(keep_alive, &mut out);
        out
    }
}

/// Append the decimal digits of `n` (itoa fast path: one stack buffer, no
/// `format!` machinery).
fn write_uint(out: &mut Vec<u8>, mut n: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

/// Parser/transport errors.
#[derive(Debug, Clone, PartialEq)]
pub enum HttpError {
    Malformed(String),
    TooLarge,
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => write!(f, "request too large"),
            HttpError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Map a parse failure to the response the server sends before closing.
///
/// The error text goes through the JSON serializer, so quotes, backslashes
/// and control characters in `Malformed` payloads (which embed client input
/// via `{:?}`) cannot break the body out of the JSON string.
pub fn error_response(e: &HttpError) -> Response {
    let status = match e {
        HttpError::TooLarge => 413,
        _ => 400,
    };
    Response::json(
        status,
        serde_json::json!({ "error": e.to_string() }).to_string(),
    )
}

fn io_err(e: std::io::Error) -> HttpError {
    HttpError::Io(e.to_string())
}

/// Read one `\n`-terminated line of at most `max` bytes into `line`
/// (cleared first). Returns the byte count (0 = EOF).
///
/// The cap is enforced *by the read itself* via [`Read::take`]: a peer
/// streaming an endless headerless line costs at most `max + 1` buffered
/// bytes before [`HttpError::TooLarge`], instead of an unbounded
/// allocation.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    max: usize,
) -> Result<usize, HttpError> {
    line.clear();
    let mut limited = reader.take(max as u64 + 1);
    let n = limited.read_line(line).map_err(io_err)?;
    if n > max {
        return Err(HttpError::TooLarge);
    }
    Ok(n)
}

/// A parsed request head: the [`Request`] (body still empty) plus the
/// framing facts the transport needs to finish and answer it.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedHead {
    /// The request with an empty body.
    pub request: Request,
    /// Declared `content-length` (0 when absent). Not checked against
    /// [`MAX_BODY_BYTES`] here — the caller enforces its own budget.
    pub content_length: usize,
    /// Whether the client permits connection reuse: HTTP/1.1 defaults to
    /// keep-alive unless `connection: close`; HTTP/1.0 defaults to close
    /// unless `connection: keep-alive`.
    pub keep_alive: bool,
}

/// Parse a complete request head (start line + headers + terminating blank
/// line) from raw bytes.
///
/// Shared by the blocking [`parse_request`] and the event-loop server's
/// incremental per-connection parser. Total: never panics.
pub fn parse_head_bytes(head: &[u8]) -> Result<ParsedHead, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = text.split('\n');
    // ---- start line ----
    let start = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?
        .trim_end();
    if start.is_empty() {
        return Err(HttpError::Malformed("empty request".into()));
    }
    let mut parts = start.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    if method.is_empty() || !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!("bad method {method:?}")));
    }
    // ---- headers ----
    let mut headers = BTreeMap::new();
    for line in lines {
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((k, v)) = trimmed.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {trimmed:?}")));
        };
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }
    // ---- framing ----
    let content_length: usize = match headers.get("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
    };
    let connection = headers
        .get("connection")
        .map(|v| v.to_ascii_lowercase())
        .unwrap_or_default();
    let keep_alive = if version == "HTTP/1.0" {
        connection == "keep-alive"
    } else {
        connection != "close"
    };
    // ---- target ----
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_str.split('&').filter(|s| !s.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => query.insert(k.to_string(), v.to_string()),
            None => query.insert(pair.to_string(), String::new()),
        };
    }
    Ok(ParsedHead {
        request: Request {
            method,
            path,
            query,
            headers,
            body: Vec::new(),
        },
        content_length,
        keep_alive,
    })
}

/// Parse one request from a buffered reader (blocking path: tests, tools).
///
/// Total over `read`: malformed inputs produce `Err`, never panics —
/// property-tested against arbitrary byte soup. Every line read is bounded
/// by the remaining head budget before it happens.
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    // ---- head ----
    let mut head = Vec::new();
    let mut line = String::new();
    // request line: budgeted like any other head line
    let n = read_line_bounded(reader, &mut line, MAX_HEAD_BYTES)?;
    if n == 0 {
        return Err(HttpError::Malformed("empty request".into()));
    }
    head.extend_from_slice(line.as_bytes());
    // headers, until the blank line, inside the remaining budget
    loop {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let n = read_line_bounded(reader, &mut line, MAX_HEAD_BYTES - head.len())?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-headers".into()));
        }
        head.extend_from_slice(line.as_bytes());
        if line.trim_end().is_empty() {
            break;
        }
    }
    let parsed = parse_head_bytes(&head)?;
    // ---- body ----
    if parsed.content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; parsed.content_length];
    reader.read_exact(&mut body).map_err(io_err)?;
    let mut request = parsed.request;
    request.body = body;
    Ok(request)
}

/// The request handler type.
pub type Handler = std::sync::Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// One response as read off the wire, body untouched. `close` reports
/// whether the server announced `connection: close`.
#[derive(Debug, Clone, PartialEq)]
pub struct RawResponse {
    pub status: u16,
    /// The server's `content-type` header (empty when absent). Carried so
    /// the gateway can forward proxied bodies — JSON or binary — opaquely.
    pub content_type: String,
    pub body: Vec<u8>,
    pub close: bool,
}

/// Read one response from a buffered reader. Shared by [`http_request`] and
/// [`HttpClient`]. The body stays raw bytes: binary frames must not go
/// through a UTF-8 gate.
fn read_response_raw<R: BufRead>(reader: &mut R) -> Result<RawResponse, HttpError> {
    let mut status_line = String::new();
    let n = read_line_bounded(reader, &mut status_line, MAX_HEAD_BYTES)?;
    if n == 0 {
        return Err(HttpError::Io("connection closed before response".into()));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut content_length = 0usize;
    let mut content_type = String::new();
    let mut close = false;
    let mut line = String::new();
    let mut head_budget = MAX_HEAD_BYTES;
    loop {
        let n = read_line_bounded(reader, &mut line, head_budget)?;
        head_budget = head_budget.saturating_sub(n);
        if n == 0 || line.trim_end().is_empty() {
            break;
        }
        if let Some((k, v)) = line.trim_end().split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
            } else if k.trim().eq_ignore_ascii_case("content-type") {
                content_type = v.trim().to_string();
            } else if k.trim().eq_ignore_ascii_case("connection")
                && v.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(io_err)?;
    Ok(RawResponse {
        status,
        content_type,
        body,
        close,
    })
}

/// String-body convenience over [`read_response_raw`] for the JSON paths.
fn read_response<R: BufRead>(reader: &mut R) -> Result<(u16, String, bool), HttpError> {
    let raw = read_response_raw(reader)?;
    String::from_utf8(raw.body)
        .map(|b| (raw.status, b, raw.close))
        .map_err(|_| HttpError::Malformed("response body not UTF-8".into()))
}

fn serialize_request_head(
    method: &str,
    path: &str,
    content_type: &str,
    accept: Option<&str>,
    body_len: usize,
    keep_alive: bool,
) -> String {
    let accept = match accept {
        Some(a) => format!("accept: {a}\r\n"),
        None => String::new(),
    };
    format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-type: {content_type}\r\n{accept}content-length: {body_len}\r\nconnection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" },
    )
}

/// Tiny blocking one-shot HTTP client (`connection: close`) for tests and
/// tools. Long-lived clients should prefer [`HttpClient`], which reuses the
/// connection across requests.
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), HttpError> {
    let mut stream = TcpStream::connect(addr).map_err(io_err)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(io_err)?;
    let body = body.unwrap_or("");
    let head = serialize_request_head(method, path, "application/json", None, body.len(), false);
    stream.write_all(head.as_bytes()).map_err(io_err)?;
    stream.write_all(body.as_bytes()).map_err(io_err)?;
    let mut reader = BufReader::new(stream);
    let (status, body, _close) = read_response(&mut reader)?;
    Ok((status, body))
}

/// Blocking keep-alive HTTP client.
///
/// Holds one TCP connection to the daemon and reuses it across requests
/// (HTTP/1.1 persistent connections); reconnects transparently when the
/// server closes it, retrying the request once if the failure happened on a
/// reused connection (the server may have idle-closed it between requests —
/// a race inherent to HTTP keep-alive, and safe to retry here because the
/// REST API's submit path is idempotent by design).
///
/// Thread-safe: concurrent requests serialize on the single connection.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    stream: Mutex<Option<BufReader<TcpStream>>>,
}

impl Clone for HttpClient {
    /// Clones share the address but open their own connection lazily.
    fn clone(&self) -> Self {
        HttpClient::new(self.addr.clone())
    }
}

impl HttpClient {
    pub fn new(addr: impl Into<String>) -> Self {
        HttpClient {
            addr: addr.into(),
            stream: Mutex::new(None),
        }
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Issue one JSON request, reusing the pooled connection when possible.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), HttpError> {
        let raw = self.request_bytes(method, path, "application/json", body.map(str::as_bytes))?;
        String::from_utf8(raw.body)
            .map(|b| (raw.status, b))
            .map_err(|_| HttpError::Malformed("response body not UTF-8".into()))
    }

    /// Issue one request with an explicit content type and a raw byte body;
    /// the response body comes back untouched. The binary submit path and
    /// the gateway's opaque forwarding are built on this.
    pub fn request_bytes(
        &self,
        method: &str,
        path: &str,
        content_type: &str,
        body: Option<&[u8]>,
    ) -> Result<RawResponse, HttpError> {
        self.request_bytes_accept(method, path, content_type, None, body)
    }

    /// [`request_bytes`](Self::request_bytes) with an explicit `Accept`
    /// header — how the SDK asks for binary Status/Result frames on GETs.
    pub fn request_bytes_accept(
        &self,
        method: &str,
        path: &str,
        content_type: &str,
        accept: Option<&str>,
        body: Option<&[u8]>,
    ) -> Result<RawResponse, HttpError> {
        let mut guard = self.stream.lock().unwrap_or_else(|p| p.into_inner());
        let body = body.unwrap_or(b"");
        for attempt in 0..2 {
            let reused = guard.is_some();
            if guard.is_none() {
                let stream = TcpStream::connect(&self.addr).map_err(io_err)?;
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .map_err(io_err)?;
                let _ = stream.set_nodelay(true);
                *guard = Some(BufReader::new(stream));
            }
            let reader = guard.as_mut().expect("connection just ensured");
            // head and body go out as one buffer: one write syscall/request
            let mut req =
                serialize_request_head(method, path, content_type, accept, body.len(), true)
                    .into_bytes();
            req.extend_from_slice(body);
            let result = reader
                .get_mut()
                .write_all(&req)
                .map_err(io_err)
                .and_then(|()| read_response_raw(reader));
            match result {
                Ok(raw) => {
                    if raw.close {
                        *guard = None;
                    }
                    return Ok(raw);
                }
                Err(e) => {
                    // A stale pooled connection fails on first use; retry
                    // once on a fresh one. First-use failures are real.
                    *guard = None;
                    if !reused || attempt == 1 {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("request loop returns within two attempts")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::sync::Arc;

    fn parse(s: &str) -> Result<Request, HttpError> {
        parse_request(&mut Cursor::new(s.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /v1/tasks/7?token=abc&verbose HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/tasks/7");
        assert_eq!(r.query["token"], "abc");
        assert_eq!(r.query["verbose"], "");
        assert_eq!(r.headers["host"], "x");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            parse("POST /v1/sessions HTTP/1.1\r\nContent-Length: 15\r\n\r\n{\"user\":\"ada\"}x")
                .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body.len(), 15);
        assert_eq!(r.body_str().unwrap(), "{\"user\":\"ada\"}x");
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse("").is_err());
        assert!(parse("GET\r\n\r\n").is_err());
        assert!(parse("GET /x\r\n\r\n").is_err(), "missing version");
        assert!(parse("GET /x SPDY/3\r\n\r\n").is_err());
        assert!(
            parse("get /x HTTP/1.1\r\n\r\n").is_err(),
            "lowercase method"
        );
        assert!(parse("GET /x HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: peanut\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let r = parse(&format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        ));
        assert_eq!(r, Err(HttpError::TooLarge));
    }

    #[test]
    fn rejects_truncated_body() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    /// Regression: a 10 MB headerless line used to be buffered whole by
    /// `read_line` before the size check ran — the bound must be enforced
    /// by the read itself, inside the head budget.
    #[test]
    fn oversized_request_line_is_bounded_not_buffered() {
        let mut soup = vec![b'A'; 10 << 20]; // 10 MB, no newline anywhere
        let r = parse_request(&mut Cursor::new(std::mem::take(&mut soup)));
        assert_eq!(r, Err(HttpError::TooLarge));
        // Same for an endless header line after a valid request line.
        let mut buf = b"GET /x HTTP/1.1\r\n".to_vec();
        buf.extend(std::iter::repeat_n(b'h', 10 << 20));
        let r = parse_request(&mut Cursor::new(buf));
        assert_eq!(r, Err(HttpError::TooLarge));
    }

    #[test]
    fn head_exactly_at_budget_is_accepted() {
        // A request whose head is close to (but under) MAX_HEAD_BYTES parses.
        let filler = "x".repeat(MAX_HEAD_BYTES - 100);
        let r = parse(&format!("GET /x HTTP/1.1\r\npad: {filler}\r\n\r\n"));
        assert!(r.is_ok(), "under-budget head must parse: {r:?}");
        let filler = "x".repeat(MAX_HEAD_BYTES);
        let r = parse(&format!("GET /x HTTP/1.1\r\npad: {filler}\r\n\r\n"));
        assert_eq!(r, Err(HttpError::TooLarge));
    }

    #[test]
    fn parse_head_bytes_reports_framing() {
        let h = parse_head_bytes(b"POST /v1/tasks HTTP/1.1\r\ncontent-length: 10\r\n\r\n").unwrap();
        assert_eq!(h.request.method, "POST");
        assert_eq!(h.content_length, 10);
        assert!(h.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let h = parse_head_bytes(b"GET /x HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        assert!(!h.keep_alive);
        let h = parse_head_bytes(b"GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(!h.keep_alive, "HTTP/1.0 defaults to close");
        let h = parse_head_bytes(b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(h.keep_alive);
        assert!(parse_head_bytes(&[0xff, 0xfe, b'\n', b'\n']).is_err());
    }

    /// Regression: parse-error text used to be interpolated into the JSON
    /// body unescaped, so a quote in the client's input broke the body out
    /// of the JSON string.
    #[test]
    fn error_bodies_are_valid_json_for_hostile_input() {
        let hostile = [
            parse("GET /x \"quoted\"\r\n\r\n").unwrap_err(),
            parse("GET /x HTTP/9\\\"}{\r\n\r\n").unwrap_err(),
            parse("GET /x HTTP/1.1\r\nbad\"header\\line\r\n\r\n").unwrap_err(),
            HttpError::Malformed("quote \" backslash \\ control \x07 end".into()),
            HttpError::TooLarge,
            HttpError::Io("disk \"full\"".into()),
        ];
        for err in hostile {
            let resp = error_response(&err);
            let body = std::str::from_utf8(&resp.body).unwrap();
            let parsed: serde_json::Value = serde_json::from_str(body)
                .unwrap_or_else(|e| panic!("error body must be JSON, got {body:?}: {e}"));
            assert!(parsed.get("error").is_some(), "body: {body}");
        }
    }

    #[test]
    fn status_text_covers_backpressure_codes() {
        assert_eq!(
            Response::json(503, "{}").status_text(),
            "Service Unavailable"
        );
        assert_eq!(Response::json(429, "{}").status_text(), "Too Many Requests");
        assert_eq!(Response::json(408, "{}").status_text(), "Request Timeout");
        let wire = Response::json(503, "{}").encode(false);
        let text = String::from_utf8(wire).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "got: {text}"
        );
        assert!(text.contains("connection: close\r\n"));
    }

    #[test]
    fn encode_sets_connection_header() {
        let ka = String::from_utf8(Response::json(200, "{}").encode(true)).unwrap();
        assert!(ka.contains("connection: keep-alive\r\n"));
        assert!(ka.ends_with("\r\n\r\n{}"));
        let cl = String::from_utf8(Response::json(200, "{}").encode(false)).unwrap();
        assert!(cl.contains("connection: close\r\n"));
    }

    #[test]
    fn server_round_trip_over_real_socket() {
        let server = HttpServer::spawn(Arc::new(|req: Request| {
            if req.path == "/ping" {
                Response::json(200, r#"{"pong":true}"#)
            } else {
                Response::not_found()
            }
        }))
        .unwrap();
        let (status, body) = http_request(server.addr(), "GET", "/ping", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"pong":true}"#);
        let (status, _) = http_request(server.addr(), "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn server_echoes_posted_body() {
        let server = HttpServer::spawn(Arc::new(|req: Request| {
            Response::json(200, req.body_str().unwrap_or("").to_string())
        }))
        .unwrap();
        let (status, body) =
            http_request(server.addr(), "POST", "/echo", Some(r#"{"k":42}"#)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"k":42}"#);
    }

    #[test]
    fn server_handles_concurrent_clients() {
        let server = HttpServer::spawn(Arc::new(|_req: Request| {
            Response::json(200, r#"{"ok":true}"#)
        }))
        .unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        let (status, _) = http_request(&addr, "GET", "/", None).unwrap();
                        assert_eq!(status, 200);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn malformed_request_gets_400_over_socket() {
        let server =
            HttpServer::spawn(Arc::new(|_req: Request| Response::json(200, "{}"))).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        BufReader::new(stream).read_line(&mut buf).unwrap();
        assert!(buf.contains("400"), "got: {buf}");
    }

    #[test]
    fn keep_alive_client_reuses_one_connection() {
        // Connection-level reuse is asserted via server telemetry in the
        // conformance suite; here assert the client-visible behavior.
        let server = HttpServer::spawn(Arc::new(|_req: Request| {
            Response::json(200, r#"{"ok":true}"#)
        }))
        .unwrap();
        let client = HttpClient::new(server.addr());
        for _ in 0..10 {
            let (status, body) = client.request("GET", "/ping", None).unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, r#"{"ok":true}"#);
        }
    }

    #[test]
    fn keep_alive_client_survives_server_restart() {
        let handler: Handler = Arc::new(|_req: Request| Response::json(200, "{}"));
        let server = HttpServer::spawn(handler.clone()).unwrap();
        let port = server.port();
        let client = HttpClient::new(server.addr());
        assert_eq!(client.request("GET", "/", None).unwrap().0, 200);
        drop(server);
        // Pooled connection is now dead; a fresh server on the same port
        // must be reachable through the same client (reconnect-and-retry).
        let _server = HttpServer::spawn_on(port, handler).unwrap();
        assert_eq!(client.request("GET", "/", None).unwrap().0, 200);
    }
}
