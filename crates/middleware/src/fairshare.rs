//! Fair-share usage tracking for the multi-user queue.
//!
//! §3.3's middleware manages "multiple concurrent users"; with only strict
//! class priorities, one heavy user inside a class can starve peers. The
//! standard HPC answer is fair-share: recent resource usage decays a user's
//! priority. [`FairshareTracker`] keeps exponentially-decayed QPU seconds
//! per user; the task queue folds the normalized usage into its effective
//! rank, so within a class, light users dispatch ahead of heavy ones.

use hpcqc_sync::{rank, TrackedMutex as Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Exponentially-decayed per-user usage accounting.
///
/// Usage decays with the configured half-life, evaluated lazily: each
/// record stores `(value, as_of)` and decay is applied on read.
#[derive(Clone)]
pub struct FairshareTracker {
    inner: Arc<Mutex<HashMap<String, (f64, f64)>>>,
    /// Bumped on every `charge`. Usage is otherwise a pure function of
    /// `now`, so `(generation, now)` keys a memo of any derived value —
    /// the task queue uses this to take one [`normalized_snapshot`]
    /// (Self::normalized_snapshot) per dispatch decision instead of
    /// locking the tracker for every pairwise comparison.
    generation: Arc<AtomicU64>,
    /// Usage half-life, seconds.
    pub half_life_secs: f64,
}

impl FairshareTracker {
    pub fn new(half_life_secs: f64) -> Self {
        assert!(half_life_secs > 0.0, "half-life must be positive");
        FairshareTracker {
            inner: Arc::new(Mutex::new(
                "middleware.fairshare",
                rank::FAIRSHARE,
                HashMap::new(),
            )),
            generation: Arc::new(AtomicU64::new(0)),
            half_life_secs,
        }
    }

    /// Mutation counter for memoizing readers; see the field docs.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    fn decayed(&self, value: f64, as_of: f64, now: f64) -> f64 {
        if now <= as_of {
            return value;
        }
        value * 0.5f64.powf((now - as_of) / self.half_life_secs)
    }

    /// Charge `secs` of device usage to `user` at time `now`.
    pub fn charge(&self, user: &str, secs: f64, now: f64) {
        let mut map = self.inner.lock();
        let entry = map.entry(user.to_string()).or_insert((0.0, now));
        let current = self.decayed(entry.0, entry.1, now);
        *entry = (current + secs, now);
        // Under the map lock, so a snapshot cannot be tagged with a
        // generation newer than the data it read.
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Decayed usage of `user` at time `now` (0 for unknown users).
    pub fn usage(&self, user: &str, now: f64) -> f64 {
        let map = self.inner.lock();
        match map.get(user) {
            Some(&(v, t)) => self.decayed(v, t, now),
            None => 0.0,
        }
    }

    /// Normalized usage in [0, 1): `u / (u + scale)` — saturating, so one
    /// user can never be penalized past a full priority class.
    pub fn normalized_usage(&self, user: &str, scale: f64, now: f64) -> f64 {
        let u = self.usage(user, now);
        u / (u + scale.max(1e-9))
    }

    /// Normalized usage for *every* known user at `now`, under one lock
    /// acquisition. Values are computed by the same arithmetic as
    /// [`normalized_usage`](Self::normalized_usage), so they are bitwise
    /// identical to per-user calls and memoizing callers stay exact
    /// (unknown users are simply absent and read as 0).
    pub fn normalized_snapshot(&self, scale: f64, now: f64) -> HashMap<String, f64> {
        let map = self.inner.lock();
        map.iter()
            .map(|(user, &(v, t))| {
                let u = self.decayed(v, t, now);
                (user.clone(), u / (u + scale.max(1e-9)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_and_decays() {
        let f = FairshareTracker::new(100.0);
        f.charge("alice", 50.0, 0.0);
        assert!((f.usage("alice", 0.0) - 50.0).abs() < 1e-12);
        // one half-life later
        assert!((f.usage("alice", 100.0) - 25.0).abs() < 1e-9);
        // charging applies decay first
        f.charge("alice", 10.0, 100.0);
        assert!((f.usage("alice", 100.0) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_user_has_zero_usage() {
        let f = FairshareTracker::new(100.0);
        assert_eq!(f.usage("ghost", 10.0), 0.0);
        assert_eq!(f.normalized_usage("ghost", 100.0, 10.0), 0.0);
    }

    #[test]
    fn normalized_usage_saturates_below_one() {
        let f = FairshareTracker::new(1e9); // effectively no decay
        f.charge("hog", 1e9, 0.0);
        let n = f.normalized_usage("hog", 100.0, 0.0);
        assert!(n > 0.99 && n < 1.0, "normalized {n}");
        f.charge("light", 10.0, 0.0);
        let l = f.normalized_usage("light", 100.0, 0.0);
        assert!(l < 0.15, "light user near zero: {l}");
    }

    #[test]
    fn usage_ordering_is_stable_under_common_decay() {
        let f = FairshareTracker::new(50.0);
        f.charge("a", 100.0, 0.0);
        f.charge("b", 10.0, 0.0);
        for &t in &[0.0, 25.0, 100.0, 1000.0] {
            assert!(f.usage("a", t) >= f.usage("b", t), "ordering at t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn zero_half_life_rejected() {
        FairshareTracker::new(0.0);
    }

    #[test]
    fn generation_bumps_on_charge_only() {
        let f = FairshareTracker::new(100.0);
        let g0 = f.generation();
        f.usage("alice", 5.0);
        f.normalized_usage("alice", 100.0, 5.0);
        assert_eq!(f.generation(), g0, "reads do not invalidate memos");
        f.charge("alice", 1.0, 5.0);
        assert_eq!(f.generation(), g0 + 1);
    }

    #[test]
    fn snapshot_is_bitwise_identical_to_per_user_reads() {
        let f = FairshareTracker::new(100.0);
        f.charge("alice", 50.0, 0.0);
        f.charge("bob", 3.0, 10.0);
        let now = 37.5;
        let snap = f.normalized_snapshot(600.0, now);
        for user in ["alice", "bob"] {
            assert_eq!(
                snap[user].to_bits(),
                f.normalized_usage(user, 600.0, now).to_bits(),
                "memoized {user} penalty must be exact, not approximate"
            );
        }
        assert!(
            !snap.contains_key("ghost"),
            "unknown users read as 0 via absence"
        );
    }
}
