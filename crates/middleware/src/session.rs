//! User sessions and priority classes.
//!
//! As the runtime connects to the middleware daemon, a unique session is
//! created and a session token returned (paper §3.3). Every subsequent job
//! submission carries the token; the session pins the user's priority class
//! (production / test / development), which the daemon maps to queue
//! priorities — mirroring how the classes map to Slurm partitions one level
//! below.

use hpcqc_sync::{rank, TrackedMutex as Mutex};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The three job classes of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PriorityClass {
    /// Top priority; may preempt lower classes.
    Production,
    /// Test runs / scalability tests.
    Test,
    /// Development runs; lowest priority, shot-limited.
    Development,
}

impl PriorityClass {
    /// Numeric rank: lower = more important.
    pub fn rank(&self) -> u8 {
        match self {
            PriorityClass::Production => 0,
            PriorityClass::Test => 1,
            PriorityClass::Development => 2,
        }
    }

    /// Parse the REST string form.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "production" => Some(PriorityClass::Production),
            "test" => Some(PriorityClass::Test),
            "development" => Some(PriorityClass::Development),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            PriorityClass::Production => "production",
            PriorityClass::Test => "test",
            PriorityClass::Development => "development",
        }
    }

    /// The matching Slurm partition name (§3.3: classes correspond to
    /// partitions).
    pub fn partition(&self) -> &'static str {
        self.as_str()
    }
}

/// A live session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Session {
    pub token: String,
    pub user: String,
    pub class: PriorityClass,
    /// Creation time (seconds, daemon clock).
    pub created_at: f64,
    /// Last successful validation (seconds, daemon clock); the idle TTL is
    /// measured from here, not from creation.
    #[serde(default)]
    pub last_active: f64,
    /// Tasks currently held against this session (decremented on cancel).
    pub task_count: u64,
}

/// Errors from session operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    UnknownToken,
    /// The token was valid but the session sat idle past the TTL; it has
    /// been removed.
    Expired,
    /// Maximum concurrent sessions reached (site policy).
    TooManySessions(usize),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownToken => write!(f, "unknown or expired session token"),
            SessionError::Expired => write!(f, "session expired (idle past TTL)"),
            SessionError::TooManySessions(max) => {
                write!(f, "session limit reached ({max} concurrent sessions)")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Thread-safe session registry.
#[derive(Clone)]
pub struct SessionManager {
    inner: Arc<Mutex<HashMap<String, Session>>>,
    counter: Arc<AtomicU64>,
    /// Site policy: maximum concurrent sessions (0 = unlimited).
    pub max_sessions: usize,
}

impl SessionManager {
    pub fn new(max_sessions: usize) -> Self {
        SessionManager {
            inner: Arc::new(Mutex::new(
                "middleware.sessions",
                rank::SESSIONS,
                HashMap::new(),
            )),
            counter: Arc::new(AtomicU64::new(1)),
            max_sessions,
        }
    }

    /// Open a session; returns its token.
    ///
    /// Tokens embed a non-guessable component derived from a counter and the
    /// user (this is a simulator: real deployments would use a CSPRNG, but
    /// the *interface* — opaque bearer token — is identical).
    pub fn open(
        &self,
        user: &str,
        class: PriorityClass,
        now: f64,
    ) -> Result<Session, SessionError> {
        let mut map = self.inner.lock();
        if self.max_sessions > 0 && map.len() >= self.max_sessions {
            return Err(SessionError::TooManySessions(self.max_sessions));
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // FNV-style mix so tokens aren't trivially sequential
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ n.wrapping_mul(0x100_0000_01b3);
        for b in user.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let token = format!("sess-{n}-{h:016x}");
        let s = Session {
            token: token.clone(),
            user: user.into(),
            class,
            created_at: now,
            last_active: now,
            task_count: 0,
        };
        map.insert(token, s.clone());
        Ok(s)
    }

    /// Validate a token, returning the session. No TTL is applied — use
    /// [`SessionManager::validate_active`] on request paths.
    pub fn validate(&self, token: &str) -> Result<Session, SessionError> {
        self.inner
            .lock()
            .get(token)
            .cloned()
            .ok_or(SessionError::UnknownToken)
    }

    /// Validate a token *and* enforce the idle TTL: a session idle for
    /// `ttl_secs` or longer (0 disables) is removed and reported as
    /// [`SessionError::Expired`]. On success the session's `last_active`
    /// advances to `now`, so activity keeps a session alive.
    pub fn validate_active(
        &self,
        token: &str,
        now: f64,
        ttl_secs: f64,
    ) -> Result<Session, SessionError> {
        let mut map = self.inner.lock();
        let s = map.get_mut(token).ok_or(SessionError::UnknownToken)?;
        if ttl_secs > 0.0 && now - s.last_active >= ttl_secs {
            map.remove(token);
            return Err(SessionError::Expired);
        }
        s.last_active = s.last_active.max(now);
        Ok(s.clone())
    }

    /// Record a task submission against the session.
    pub fn record_task(&self, token: &str) -> Result<(), SessionError> {
        let mut map = self.inner.lock();
        let s = map.get_mut(token).ok_or(SessionError::UnknownToken)?;
        s.task_count += 1;
        Ok(())
    }

    /// Refund a task slot (cancellation): the inverse of
    /// [`SessionManager::record_task`], so per-session accounting does not
    /// leak cancelled work.
    pub fn release_task(&self, token: &str) -> Result<(), SessionError> {
        let mut map = self.inner.lock();
        let s = map.get_mut(token).ok_or(SessionError::UnknownToken)?;
        s.task_count = s.task_count.saturating_sub(1);
        Ok(())
    }

    /// Close a session.
    pub fn close(&self, token: &str) -> Result<Session, SessionError> {
        self.inner
            .lock()
            .remove(token)
            .ok_or(SessionError::UnknownToken)
    }

    /// Currently open sessions, sorted by creation time.
    pub fn list(&self) -> Vec<Session> {
        let mut v: Vec<Session> = self.inner.lock().values().cloned().collect();
        v.sort_by(|a, b| {
            a.created_at
                .total_cmp(&b.created_at)
                .then(a.token.cmp(&b.token))
        });
        v
    }

    /// Number of open sessions.
    pub fn count(&self) -> usize {
        self.inner.lock().len()
    }

    /// Expire sessions idle since `cutoff` or earlier; returns the removed
    /// sessions (for journaling and metrics).
    pub fn gc(&self, cutoff: f64) -> Vec<Session> {
        let mut map = self.inner.lock();
        let mut expired = Vec::new();
        map.retain(|_, s| {
            if s.last_active > cutoff {
                true
            } else {
                expired.push(s.clone());
                false
            }
        });
        expired
    }

    /// The next token counter value (persisted across restarts so recovered
    /// daemons never mint a token that collides with a live session).
    pub fn counter_watermark(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Restore sessions and the token counter from a recovery replay. The
    /// counter only moves forward.
    pub fn restore(&self, sessions: Vec<Session>, counter: u64) {
        let mut map = self.inner.lock();
        for s in sessions {
            map.insert(s.token.clone(), s);
        }
        self.counter.fetch_max(counter, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_validate_close_lifecycle() {
        let m = SessionManager::new(0);
        let s = m.open("alice", PriorityClass::Production, 10.0).unwrap();
        assert!(s.token.starts_with("sess-"));
        let v = m.validate(&s.token).unwrap();
        assert_eq!(v.user, "alice");
        assert_eq!(v.class, PriorityClass::Production);
        m.close(&s.token).unwrap();
        assert_eq!(m.validate(&s.token), Err(SessionError::UnknownToken));
        assert_eq!(m.close(&s.token), Err(SessionError::UnknownToken));
    }

    #[test]
    fn tokens_are_unique() {
        let m = SessionManager::new(0);
        let a = m.open("u", PriorityClass::Development, 0.0).unwrap();
        let b = m.open("u", PriorityClass::Development, 0.0).unwrap();
        assert_ne!(a.token, b.token);
    }

    #[test]
    fn session_limit_enforced() {
        let m = SessionManager::new(2);
        m.open("a", PriorityClass::Test, 0.0).unwrap();
        m.open("b", PriorityClass::Test, 0.0).unwrap();
        assert_eq!(
            m.open("c", PriorityClass::Test, 0.0),
            Err(SessionError::TooManySessions(2))
        );
        // closing one frees a slot
        let s = m.list()[0].clone();
        m.close(&s.token).unwrap();
        assert!(m.open("c", PriorityClass::Test, 0.0).is_ok());
    }

    #[test]
    fn task_counting() {
        let m = SessionManager::new(0);
        let s = m.open("u", PriorityClass::Test, 0.0).unwrap();
        m.record_task(&s.token).unwrap();
        m.record_task(&s.token).unwrap();
        assert_eq!(m.validate(&s.token).unwrap().task_count, 2);
        assert_eq!(m.record_task("bogus"), Err(SessionError::UnknownToken));
    }

    #[test]
    fn priority_class_ordering_and_parse() {
        assert!(PriorityClass::Production.rank() < PriorityClass::Test.rank());
        assert!(PriorityClass::Test.rank() < PriorityClass::Development.rank());
        for c in [
            PriorityClass::Production,
            PriorityClass::Test,
            PriorityClass::Development,
        ] {
            assert_eq!(PriorityClass::parse(c.as_str()), Some(c));
            assert_eq!(c.partition(), c.as_str());
        }
        assert_eq!(PriorityClass::parse("vip"), None);
    }

    #[test]
    fn validate_active_enforces_ttl_and_touches() {
        let m = SessionManager::new(0);
        let s = m.open("u", PriorityClass::Test, 0.0).unwrap();
        // activity at t=50 keeps it alive and advances last_active
        let v = m.validate_active(&s.token, 50.0, 100.0).unwrap();
        assert_eq!(v.last_active, 50.0);
        // idle 100s from t=50: expired exactly at the TTL boundary
        assert_eq!(
            m.validate_active(&s.token, 150.0, 100.0),
            Err(SessionError::Expired)
        );
        // expiry removed it: a second check sees an unknown token
        assert_eq!(
            m.validate_active(&s.token, 150.0, 100.0),
            Err(SessionError::UnknownToken)
        );
        // ttl 0 disables enforcement entirely
        let s2 = m.open("v", PriorityClass::Test, 0.0).unwrap();
        assert!(m.validate_active(&s2.token, 1e9, 0.0).is_ok());
    }

    #[test]
    fn release_task_refunds_accounting() {
        let m = SessionManager::new(0);
        let s = m.open("u", PriorityClass::Test, 0.0).unwrap();
        m.record_task(&s.token).unwrap();
        m.record_task(&s.token).unwrap();
        m.release_task(&s.token).unwrap();
        assert_eq!(m.validate(&s.token).unwrap().task_count, 1);
        // never underflows
        m.release_task(&s.token).unwrap();
        m.release_task(&s.token).unwrap();
        assert_eq!(m.validate(&s.token).unwrap().task_count, 0);
        assert_eq!(m.release_task("bogus"), Err(SessionError::UnknownToken));
    }

    #[test]
    fn gc_uses_last_active_and_returns_expired() {
        let m = SessionManager::new(0);
        let a = m.open("a", PriorityClass::Test, 0.0).unwrap();
        let b = m.open("b", PriorityClass::Test, 0.0).unwrap();
        // b stays active at t=80; a does not
        m.validate_active(&b.token, 80.0, 0.0).unwrap();
        let expired = m.gc(50.0);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].token, a.token);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn restore_preserves_sessions_and_counter() {
        let m = SessionManager::new(0);
        let s = m.open("u", PriorityClass::Production, 3.0).unwrap();
        let counter = m.counter_watermark();
        let fresh = SessionManager::new(0);
        fresh.restore(vec![s.clone()], counter);
        assert_eq!(fresh.validate(&s.token).unwrap().user, "u");
        // a new session on the restored manager can never reuse the token
        let n = fresh.open("u", PriorityClass::Production, 4.0).unwrap();
        assert_ne!(n.token, s.token);
    }

    #[test]
    fn list_sorted_by_creation() {
        let m = SessionManager::new(0);
        m.open("a", PriorityClass::Test, 5.0).unwrap();
        m.open("b", PriorityClass::Test, 1.0).unwrap();
        let l = m.list();
        assert_eq!(l[0].user, "b");
        assert_eq!(l[1].user, "a");
        assert_eq!(m.count(), 2);
    }
}
