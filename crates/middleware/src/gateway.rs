//! Consistent-hash gateway: one front door over N replicated shards.
//!
//! The replication layer (journal shipping + [`promote`]) makes a *single*
//! shard survivable; this module makes the fleet usable. The gateway owns a
//! consistent-hash ring of shards — each a leader daemon plus an optional
//! follower — and:
//!
//! * **routes** REST traffic by session placement: the session token (path,
//!   query, or JSON request body) or the submitting user hashes onto the
//!   ring, so a session's whole lifetime lands on one shard and virtual
//!   nodes keep the load spread even. Bodies proxy as opaque bytes — binary
//!   wire frames and batch payloads are never parsed here; their placement
//!   key is the `?token=` query parameter,
//! * **health-checks** shards via their `GET /v1/readyz` probes — readiness,
//!   not liveness: a draining leader or an unpromoted follower answers 503
//!   there while `healthz` stays green,
//! * **fails over**: when a shard's active replica stops being ready, the
//!   gateway probes the configured follower and — once that follower is
//!   promoted and answers ready — moves the shard's traffic to it,
//! * **aggregates** `GET /metrics` and the `GET /v1/sessions` quota view
//!   across every shard, so operators keep one pane of glass.
//!
//! The gateway itself serves on the same epoll event-loop server as the
//! daemons ([`crate::server`]), so the whole fleet speaks one transport.
//!
//! [`promote`]: crate::daemon::MiddlewareService::promote

use crate::http::{http_request, Handler, HttpClient, Request, Response};
use crate::server::{HttpServer, ServerConfig};
use hpcqc_sync::{rank, TrackedMutex};
use hpcqc_telemetry::{labels, Registry, ReplicationMetrics};
use hpcqc_wire as wire;
use std::sync::Arc;

/// One shard: a leader daemon and (optionally) its warm-standby follower.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Stable shard name — the ring hashes this, so renaming a shard moves
    /// its sessions.
    pub name: String,
    /// `host:port` of the shard's leader.
    pub primary: String,
    /// `host:port` where the shard's follower serves once promoted.
    pub follower: Option<String>,
}

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    pub shards: Vec<ShardConfig>,
    /// Virtual nodes per shard on the hash ring (evens out placement).
    pub virtual_nodes: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            shards: Vec::new(),
            virtual_nodes: 64,
        }
    }
}

/// Live routing state for one shard.
struct ShardState {
    cfg: ShardConfig,
    /// Address currently receiving this shard's traffic.
    active: String,
    /// Last probe verdict (readyz 200 on `active`).
    ready: bool,
    /// Pooled keep-alive client to `active`.
    client: Arc<HttpClient>,
}

/// The routing table guarded by one lock ([`rank::GATEWAY_ROUTES`] — the
/// outermost rank in the hierarchy: the guard is always dropped before any
/// proxy I/O, and never held across a daemon call).
struct RouteTable {
    shards: Vec<ShardState>,
    /// Sorted `(hash point, shard index)` ring.
    ring: Vec<(u64, usize)>,
    /// Cursor for keyless requests (spread over ready shards).
    round_robin: u64,
    /// Sticky placement: session token → shard index, learned from session
    /// creation responses. Tokens are minted by the shard, so the hash ring
    /// alone cannot recover where a session lives — this table can. Entries
    /// are dropped when the session closes through the gateway; on a gateway
    /// restart the table rebuilds as sessions are recreated (stale tokens
    /// fall back to the ring and get the shard's own 401).
    sessions: std::collections::HashMap<String, usize>,
}

/// How a request names its placement on the ring.
enum RouteKey {
    /// An existing session's token: must reach the shard that minted it.
    Token(String),
    /// A session-creating user: any ready shard, chosen by consistent hash
    /// so one user's sessions (and quota) colocate.
    User(String),
    /// No placement information: spread over ready shards.
    Keyless,
}

/// 64-bit FNV-1a with a murmur-style avalanche (ring placement; unrelated to
/// the WAL's 32-bit frame CRC). Raw FNV clusters on short, similar strings
/// like `s0#17` / `s1#17` — the finalizer spreads the vnode points so arc
/// lengths (and thus session placement) stay even.
fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// The consistent-hash gateway. Cheap to share: wrap in an [`Arc`] and hand
/// clones of the [`handler`](Self::handler) to the server.
pub struct Gateway {
    routes: TrackedMutex<RouteTable>,
    registry: Registry,
}

impl Gateway {
    pub fn new(cfg: GatewayConfig) -> Self {
        let vnodes = cfg.virtual_nodes.max(1);
        let mut ring = Vec::with_capacity(cfg.shards.len() * vnodes);
        for (i, shard) in cfg.shards.iter().enumerate() {
            for v in 0..vnodes {
                ring.push((hash64(format!("{}#{v}", shard.name).as_bytes()), i));
            }
        }
        ring.sort_unstable();
        let shards = cfg
            .shards
            .into_iter()
            .map(|cfg| ShardState {
                active: cfg.primary.clone(),
                // Optimistic until the first probe: a gateway brought up
                // before its shards must not blackhole the initial requests.
                ready: true,
                client: Arc::new(HttpClient::new(cfg.primary.clone())),
                cfg,
            })
            .collect();
        Gateway {
            routes: TrackedMutex::new(
                "middleware.gateway.routes",
                rank::GATEWAY_ROUTES,
                RouteTable {
                    shards,
                    ring,
                    round_robin: 0,
                    sessions: Default::default(),
                },
            ),
            registry: Registry::new(),
        }
    }

    /// The gateway's own metrics registry (probes, failovers, routing).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn replication_metrics(&self) -> ReplicationMetrics {
        ReplicationMetrics::new(self.registry.clone())
    }

    /// The session-placement key for `req`: the session token from the path
    /// (`/v1/sessions/{token}`), the `token` query parameter, or — for JSON
    /// bodies only — the request body (`token`, else `user` for session
    /// creation, else the first element's `token` for batch arrays — so all
    /// of a user's sessions land on one shard and its quota view stays
    /// local). Binary wire bodies are never sniffed: a binary submit that
    /// must hit its session's shard carries `?token=` instead (the SDK adds
    /// it), so routing stays body-opaque.
    fn placement_key(req: &Request) -> RouteKey {
        let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        if let ["v1", "sessions", token] = segs.as_slice() {
            return RouteKey::Token((*token).to_string());
        }
        if let Some(token) = req.query.get("token") {
            return RouteKey::Token(token.clone());
        }
        let binary = req
            .headers
            .get("content-type")
            .is_some_and(|ct| ct.split(';').next().unwrap_or("").trim() == wire::CONTENT_TYPE_BIN);
        if binary {
            return RouteKey::Keyless;
        }
        if let Ok(body) = req.body_str() {
            if let Ok(v) = serde_json::from_str::<serde_json::Value>(body) {
                if let Some(token) = v["token"].as_str().or_else(|| v[0]["token"].as_str()) {
                    return RouteKey::Token(token.to_string());
                }
                if let Some(user) = v["user"].as_str() {
                    return RouteKey::User(user.to_string());
                }
            }
        }
        RouteKey::Keyless
    }

    /// Pick the shard for `key`. Returns the shard's index, name, client and
    /// readiness; the routing lock is released before any I/O.
    fn pick(&self, key: &RouteKey) -> Option<(usize, String, Arc<HttpClient>, bool)> {
        let mut t = self.routes.lock();
        if t.shards.is_empty() {
            return None;
        }
        let ring_start = |t: &RouteTable, k: &str| {
            let h = hash64(k.as_bytes());
            match t.ring.binary_search(&(h, usize::MAX)) {
                Ok(i) | Err(i) => i % t.ring.len(),
            }
        };
        let idx = match key {
            // A token is pinned: its session state lives on exactly one
            // shard, so an unready shard means 503-and-retry, never a
            // spill to a shard that has no idea who this token is.
            RouteKey::Token(token) => match t.sessions.get(token) {
                Some(&i) => i,
                None => t.ring[ring_start(&t, token)].1,
            },
            // Users and keyless requests may spill: walk the ring from the
            // hash point to the first *ready* shard — consistent hashing's
            // natural failover, only the failed shard's keys move. If
            // nothing is ready, keep the original pick and let the proxy
            // surface the 503.
            RouteKey::User(_) | RouteKey::Keyless => {
                let start = match key {
                    RouteKey::User(user) => ring_start(&t, user),
                    _ => {
                        t.round_robin = t.round_robin.wrapping_add(1);
                        (t.round_robin as usize).wrapping_mul(t.ring.len() / t.shards.len().max(1))
                            % t.ring.len()
                    }
                };
                let mut idx = t.ring[start].1;
                for step in 0..t.ring.len() {
                    let (_, i) = t.ring[(start + step) % t.ring.len()];
                    if t.shards[i].ready {
                        idx = i;
                        break;
                    }
                }
                idx
            }
        };
        let s = &t.shards[idx];
        Some((idx, s.cfg.name.clone(), Arc::clone(&s.client), s.ready))
    }

    /// Mark `shard` unready after a transport failure (next probe may
    /// restore it or fail it over).
    fn mark_unready(&self, shard: &str) {
        let mut t = self.routes.lock();
        if let Some(s) = t.shards.iter_mut().find(|s| s.cfg.name == shard) {
            s.ready = false;
        }
    }

    /// Probe every shard's `readyz` once; fail traffic over to the follower
    /// when the active replica is not ready but the follower is. Returns the
    /// number of ready shards. Run periodically (see [`spawn_prober`]).
    ///
    /// [`spawn_prober`]: Self::spawn_prober
    pub fn probe_once(&self) -> usize {
        let targets: Vec<(String, String, Option<String>)> = {
            let t = self.routes.lock();
            t.shards
                .iter()
                .map(|s| (s.cfg.name.clone(), s.active.clone(), s.cfg.follower.clone()))
                .collect()
        };
        let m = self.replication_metrics();
        let mut ready_count = 0;
        for (name, active, follower) in targets {
            let active_ready = probe_ready(&active);
            m.probe(&name, active_ready);
            if active_ready {
                ready_count += 1;
                self.set_ready(&name, true);
                continue;
            }
            // Active replica is out. If a follower exists, is not already
            // the active address, and answers ready (i.e. it was promoted),
            // move the shard's traffic over.
            let promoted = follower.filter(|f| *f != active).filter(|f| probe_ready(f));
            match promoted {
                Some(addr) => {
                    self.fail_over(&name, &addr);
                    m.shard_failover(&name);
                    ready_count += 1;
                }
                None => self.set_ready(&name, false),
            }
        }
        ready_count
    }

    fn set_ready(&self, shard: &str, ready: bool) {
        let mut t = self.routes.lock();
        if let Some(s) = t.shards.iter_mut().find(|s| s.cfg.name == shard) {
            s.ready = ready;
        }
    }

    fn fail_over(&self, shard: &str, addr: &str) {
        let mut t = self.routes.lock();
        if let Some(s) = t.shards.iter_mut().find(|s| s.cfg.name == shard) {
            s.active = addr.to_string();
            s.client = Arc::new(HttpClient::new(addr.to_string()));
            s.ready = true;
        }
    }

    /// Explicitly move `shard`'s traffic to its configured follower (the
    /// orchestrated-failover path: promote, then repoint). Returns the new
    /// active address, or `None` if the shard has no follower.
    pub fn promote_shard(&self, shard: &str) -> Option<String> {
        let follower = {
            let t = self.routes.lock();
            t.shards
                .iter()
                .find(|s| s.cfg.name == shard)?
                .cfg
                .follower
                .clone()?
        };
        self.fail_over(shard, &follower);
        self.replication_metrics().shard_failover(shard);
        Some(follower)
    }

    /// Route one request. Aggregation routes (`/metrics`, `/v1/sessions`,
    /// the gateway's own healthz/readyz) are answered here; everything else
    /// proxies to its shard.
    pub fn route(&self, req: &Request) -> Response {
        let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segs.as_slice()) {
            ("GET", ["v1", "healthz"]) => Response::json(200, r#"{"status":"ok"}"#),
            ("GET", ["v1", "readyz"]) => self.readyz(),
            ("GET", ["metrics"]) => self.aggregate_metrics(),
            ("GET", ["v1", "sessions"]) => self.aggregate_sessions(),
            _ => self.proxy(req),
        }
    }

    /// Gateway readiness: 200 while at least one shard can take traffic,
    /// with the per-shard routing table in the body.
    fn readyz(&self) -> Response {
        let t = self.routes.lock();
        let shards: Vec<serde_json::Value> = t
            .shards
            .iter()
            .map(|s| {
                serde_json::json!({
                    "name": s.cfg.name,
                    "active": s.active,
                    "ready": s.ready,
                })
            })
            .collect();
        let any_ready = t.shards.iter().any(|s| s.ready);
        drop(t);
        let body = serde_json::json!({ "ready": any_ready, "shards": shards }).to_string();
        Response::json(if any_ready { 200 } else { 503 }, body)
    }

    /// One exposition for the whole fleet: the gateway's own registry plus
    /// every reachable shard's `/metrics`, delimited by shard comments.
    fn aggregate_metrics(&self) -> Response {
        let targets: Vec<(String, Arc<HttpClient>)> = {
            let t = self.routes.lock();
            t.shards
                .iter()
                .map(|s| (s.cfg.name.clone(), Arc::clone(&s.client)))
                .collect()
        };
        let mut out = self.registry.expose();
        for (name, client) in targets {
            match client.request("GET", "/metrics", None) {
                Ok((200, body)) => {
                    out.push_str(&format!("# shard: {name}\n"));
                    out.push_str(&body);
                    if !body.ends_with('\n') {
                        out.push('\n');
                    }
                }
                _ => out.push_str(&format!("# shard: {name} (unreachable)\n")),
            }
        }
        Response::text(200, out)
    }

    /// The fleet-wide session/quota view: every shard's `GET /v1/sessions`
    /// merged into one array. Unreachable shards degrade the view rather
    /// than failing it (their sessions are listed once they return).
    fn aggregate_sessions(&self) -> Response {
        let targets: Vec<Arc<HttpClient>> = {
            let t = self.routes.lock();
            t.shards.iter().map(|s| Arc::clone(&s.client)).collect()
        };
        let mut all = Vec::new();
        for client in targets {
            if let Ok((200, body)) = client.request("GET", "/v1/sessions", None) {
                if let Ok(serde_json::Value::Array(items)) = serde_json::from_str(&body) {
                    all.extend(items);
                }
            }
        }
        Response::json(200, serde_json::Value::Array(all).to_string())
    }

    /// Proxy `req` to its shard by consistent-hash placement.
    fn proxy(&self, req: &Request) -> Response {
        let key = Self::placement_key(req);
        let Some((idx, shard, client, ready)) = self.pick(&key) else {
            return Response::json(503, r#"{"error":"no shards configured"}"#);
        };
        if !ready {
            return Response::json(
                503,
                format!(r#"{{"error":"shard {shard} has no ready replica"}}"#),
            );
        }
        self.registry.counter_add(
            "gateway_requests_total",
            "Requests routed, by shard",
            labels(&[("shard", &shard)]),
            1.0,
        );
        let mut path = req.path.clone();
        if !req.query.is_empty() {
            let qs: Vec<String> = req.query.iter().map(|(k, v)| format!("{k}={v}")).collect();
            path = format!("{path}?{}", qs.join("&"));
        }
        // Bodies forward as raw bytes with the client's own content-type and
        // accept headers: binary wire frames and JSON alike pass through
        // without a parse (or a UTF-8 gate) at the gateway.
        let content_type = req
            .headers
            .get("content-type")
            .map(String::as_str)
            .unwrap_or("application/json");
        let accept = req.headers.get("accept").map(String::as_str);
        let body = (!req.body.is_empty()).then_some(req.body.as_slice());
        match client.request_bytes_accept(&req.method, &path, content_type, accept, body) {
            Ok(raw) => {
                self.note_session_change(req, &key, idx, raw.status, &raw.body);
                Response::bytes(raw.status, static_content_type(&raw.content_type), raw.body)
            }
            Err(e) => {
                // Transport failure: quarantine the shard until the next
                // probe and tell the client to retry (503, same contract as
                // a draining daemon — `submit_reliable` rides through it).
                self.mark_unready(&shard);
                Response::json(
                    503,
                    serde_json::json!({ "error": format!("shard {shard} unreachable: {e}") })
                        .to_string(),
                )
            }
        }
    }

    /// Keep the sticky table in step with session lifecycle: a 2xx session
    /// creation pins the minted token to the shard that answered; a 2xx
    /// close (or an expired/unknown token's 401) unpins it. Only session
    /// *creation responses* (always JSON) are parsed — sticky learning never
    /// needs to look inside a submit body, so binary and batch traffic stays
    /// opaque end to end.
    fn note_session_change(
        &self,
        req: &Request,
        key: &RouteKey,
        idx: usize,
        status: u16,
        body: &[u8],
    ) {
        let creating = req.method == "POST"
            && req.path.trim_end_matches('/') == "/v1/sessions"
            && (200..300).contains(&status);
        if creating {
            if let Ok(v) = serde_json::from_slice::<serde_json::Value>(body) {
                if let Some(token) = v["token"].as_str() {
                    self.routes.lock().sessions.insert(token.to_string(), idx);
                }
            }
            return;
        }
        if let RouteKey::Token(token) = key {
            let closed = req.method == "DELETE" && (200..300).contains(&status);
            if closed || status == 401 {
                self.routes.lock().sessions.remove(token);
            }
        }
    }

    /// A [`Handler`] routing into this gateway (for serving or testing).
    pub fn handler(self: &Arc<Self>) -> Handler {
        let gw = Arc::clone(self);
        Arc::new(move |req: Request| gw.route(&req))
    }

    /// Serve the gateway on `port` (0 = ephemeral) over the epoll event-loop
    /// server.
    pub fn serve(self: &Arc<Self>, port: u16) -> std::io::Result<HttpServer> {
        HttpServer::spawn_with(port, self.handler(), ServerConfig::default())
    }

    /// Run [`probe_once`](Self::probe_once) every `interval` until the
    /// returned handle is stopped.
    pub fn spawn_prober(self: &Arc<Self>, interval: std::time::Duration) -> ProberHandle {
        let gw = Arc::clone(self);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                gw.probe_once();
                std::thread::sleep(interval);
            }
        });
        ProberHandle { stop, thread }
    }
}

/// Map a proxied response's `content-type` onto the static strings
/// [`Response`] carries. The REST API only ever answers with these three
/// families; unknown or absent types default to JSON (the API's own
/// default).
fn static_content_type(ct: &str) -> &'static str {
    match ct.split(';').next().unwrap_or("").trim() {
        t if t == wire::CONTENT_TYPE_BIN => wire::CONTENT_TYPE_BIN,
        "text/plain" => "text/plain; version=0.0.4",
        _ => "application/json",
    }
}

/// One-shot readiness probe (fresh connection: a probe must never be fooled
/// by — or wedge on — a pooled connection to a dead process).
fn probe_ready(addr: &str) -> bool {
    matches!(http_request(addr, "GET", "/v1/readyz", None), Ok((200, _)))
}

/// Handle to a background probe loop ([`Gateway::spawn_prober`]).
pub struct ProberHandle {
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl ProberHandle {
    pub fn stop(self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = self.thread.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{DaemonConfig, MiddlewareService, ReplicaRole};
    use crate::rest::serve;
    use hpcqc_emulator::SvBackend;
    use hpcqc_qrmi::LocalEmulatorResource;

    fn resource() -> Arc<LocalEmulatorResource> {
        Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ))
    }

    fn shard_daemon() -> (Arc<MiddlewareService>, HttpServer) {
        let svc = Arc::new(MiddlewareService::new(resource(), DaemonConfig::default()));
        let server = serve(Arc::clone(&svc)).unwrap();
        (svc, server)
    }

    fn get(gw: &Arc<Gateway>, path: &str) -> (u16, String) {
        let req = Request {
            method: "GET".into(),
            path: path.split('?').next().unwrap().to_string(),
            query: path
                .split_once('?')
                .map(|(_, q)| {
                    q.split('&')
                        .filter_map(|kv| kv.split_once('='))
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                        .collect()
                })
                .unwrap_or_default(),
            headers: Default::default(),
            body: Vec::new(),
        };
        let resp = gw.route(&req);
        (resp.status, String::from_utf8(resp.body).unwrap())
    }

    fn post(gw: &Arc<Gateway>, path: &str, body: &str) -> (u16, String) {
        let req = Request {
            method: "POST".into(),
            path: path.to_string(),
            query: Default::default(),
            headers: Default::default(),
            body: body.as_bytes().to_vec(),
        };
        let resp = gw.route(&req);
        (resp.status, String::from_utf8(resp.body).unwrap())
    }

    #[test]
    fn ring_spreads_sessions_and_placement_is_sticky() {
        let gw = Gateway::new(GatewayConfig {
            shards: vec![
                ShardConfig {
                    name: "s0".into(),
                    primary: "127.0.0.1:1".into(),
                    follower: None,
                },
                ShardConfig {
                    name: "s1".into(),
                    primary: "127.0.0.1:2".into(),
                    follower: None,
                },
                ShardConfig {
                    name: "s2".into(),
                    primary: "127.0.0.1:3".into(),
                    follower: None,
                },
            ],
            ..GatewayConfig::default()
        });
        let mut counts = std::collections::HashMap::new();
        for i in 0..300 {
            let key = RouteKey::User(format!("user-{i}"));
            let (_, a, _, _) = gw.pick(&key).unwrap();
            let (_, b, _, _) = gw.pick(&key).unwrap();
            assert_eq!(a, b, "placement must be deterministic");
            *counts.entry(a).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 3, "all shards take sessions: {counts:?}");
        for (shard, n) in &counts {
            assert!(
                (50..=200).contains(n),
                "virtual nodes keep placement roughly even, {shard} got {n}"
            );
        }
    }

    #[test]
    fn routes_sessions_end_to_end_and_aggregates_views() {
        let (_svc_a, server_a) = shard_daemon();
        let (_svc_b, server_b) = shard_daemon();
        let gw = Arc::new(Gateway::new(GatewayConfig {
            shards: vec![
                ShardConfig {
                    name: "a".into(),
                    primary: server_a.addr().to_string(),
                    follower: None,
                },
                ShardConfig {
                    name: "b".into(),
                    primary: server_b.addr().to_string(),
                    follower: None,
                },
            ],
            ..GatewayConfig::default()
        }));
        // open enough sessions that both shards see some
        let mut tokens = Vec::new();
        for i in 0..8 {
            let (st, body) = post(
                &gw,
                "/v1/sessions",
                &format!(r#"{{"user":"u{i}","class":"test"}}"#),
            );
            assert_eq!(st, 201, "{body}");
            let v: serde_json::Value = serde_json::from_str(&body).unwrap();
            tokens.push(v["token"].as_str().unwrap().to_string());
        }
        // the aggregated quota view sees every session, whichever shard
        let (st, body) = get(&gw, "/v1/sessions");
        assert_eq!(st, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 8, "{body}");
        // token-keyed routes reach the session's shard (close succeeds)
        for token in &tokens {
            let req = Request {
                method: "DELETE".into(),
                path: format!("/v1/sessions/{token}"),
                query: Default::default(),
                headers: Default::default(),
                body: Vec::new(),
            };
            let resp = gw.route(&req);
            assert_eq!(resp.status, 200, "session must close via its shard");
        }
        // aggregated metrics carry both shard expositions + gateway counters
        let (st, body) = get(&gw, "/metrics");
        assert_eq!(st, 200);
        assert!(body.contains("# shard: a\n"), "missing shard a section");
        assert!(body.contains("# shard: b\n"), "missing shard b section");
        assert!(body.contains("gateway_requests_total"));
    }

    #[test]
    fn probe_fails_over_to_promoted_follower_and_routes_there() {
        let (svc_a, server_a) = shard_daemon();
        let (svc_b, server_b) = shard_daemon();
        // b starts as an unpromoted follower: alive, not ready
        svc_b.set_role(ReplicaRole::Follower);
        let gw = Arc::new(Gateway::new(GatewayConfig {
            shards: vec![ShardConfig {
                name: "s0".into(),
                primary: server_a.addr().to_string(),
                follower: Some(server_b.addr().to_string()),
            }],
            ..GatewayConfig::default()
        }));
        assert_eq!(gw.probe_once(), 1, "primary serving");
        let (st, _) = post(&gw, "/v1/sessions", r#"{"user":"u","class":"test"}"#);
        assert_eq!(st, 201);
        // leader drains; follower not yet promoted → shard has no ready
        // replica and the gateway says so on its own readyz
        svc_a.shutdown(std::time::Duration::from_millis(20));
        assert_eq!(gw.probe_once(), 0);
        let (st, body) = get(&gw, "/v1/readyz");
        assert_eq!(st, 503, "{body}");
        // promotion flips the follower's readyz; the next probe moves traffic
        svc_b.set_role(ReplicaRole::Leader);
        assert_eq!(gw.probe_once(), 1);
        let (st, body) = get(&gw, "/v1/readyz");
        assert_eq!(st, 200, "{body}");
        assert!(body.contains(&format!(r#""active":"{}""#, server_b.addr())));
        let (st, _) = post(&gw, "/v1/sessions", r#"{"user":"u2","class":"test"}"#);
        assert_eq!(st, 201, "traffic flows to the promoted follower");
        let text = gw.registry().expose();
        assert!(text.contains(r#"gateway_shard_failovers_total{shard="s0"} 1"#));
    }

    /// One request with arbitrary headers and a raw byte body (query split
    /// off the path like the real parser does).
    fn raw_req(method: &str, path: &str, headers: &[(&str, &str)], body: Vec<u8>) -> Request {
        let (p, q) = path.split_once('?').unwrap_or((path, ""));
        Request {
            method: method.into(),
            path: p.to_string(),
            query: q
                .split('&')
                .filter(|s| !s.is_empty())
                .filter_map(|kv| kv.split_once('='))
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: headers
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body,
        }
    }

    /// Binary submits, batch submits (binary and JSON), and binary status
    /// reads flow through the gateway across a two-shard ring. Placement
    /// comes from `?token=` (requests) and the sticky table (learned from
    /// session-creation *responses*) — never from parsing the proxied body:
    /// a misrouted frame would surface as the foreign shard's 401.
    #[test]
    fn binary_and_batch_bodies_proxy_opaquely_across_two_shards() {
        use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder};
        use hpcqc_wire as wire;

        fn ir(shots: u32) -> ProgramIr {
            let reg = Register::linear(2, 6.0).unwrap();
            let mut b = SequenceBuilder::new(reg);
            b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
            ProgramIr::new(b.build().unwrap(), shots, "gw-bin-test")
        }

        let (_svc_a, server_a) = shard_daemon();
        let (_svc_b, server_b) = shard_daemon();
        let gw = Arc::new(Gateway::new(GatewayConfig {
            shards: vec![
                ShardConfig {
                    name: "a".into(),
                    primary: server_a.addr().to_string(),
                    follower: None,
                },
                ShardConfig {
                    name: "b".into(),
                    primary: server_b.addr().to_string(),
                    follower: None,
                },
            ],
            ..GatewayConfig::default()
        }));

        // Sessions opened through the gateway spread over both shards (the
        // split is deterministic: fixed user names, fixed hash).
        let mut tokens = Vec::new();
        for i in 0..16 {
            let (st, body) = post(
                &gw,
                "/v1/sessions",
                &format!(r#"{{"user":"w{i}","class":"production"}}"#),
            );
            assert_eq!(st, 201, "{body}");
            let v: serde_json::Value = serde_json::from_str(&body).unwrap();
            tokens.push(v["token"].as_str().unwrap().to_string());
        }
        for addr in [server_a.addr(), server_b.addr()] {
            let (st, body) = http_request(&addr, "GET", "/v1/sessions", None).unwrap();
            assert_eq!(st, 200);
            let v: serde_json::Value = serde_json::from_str(&body).unwrap();
            assert!(
                !v.as_array().unwrap().is_empty(),
                "both shards must hold sessions for an end-to-end ring test"
            );
        }

        // Every token's binary submit reaches its own shard with the body
        // untouched (sticky placement via ?token=, not body parsing).
        let mut task_ids = Vec::new();
        for token in &tokens {
            let frame = wire::SubmitFrame {
                token: token.clone(),
                hint: None,
                idempotency_key: None,
                ir: ir(5),
            };
            let resp = gw.route(&raw_req(
                "POST",
                &format!("/v1/tasks?token={token}"),
                &[("content-type", wire::CONTENT_TYPE_BIN)],
                wire::encode_submit(&frame),
            ));
            assert_eq!(
                resp.status,
                201,
                "binary submit via gateway: {}",
                String::from_utf8_lossy(&resp.body)
            );
            assert_eq!(resp.content_type, wire::CONTENT_TYPE_BIN);
            task_ids.push((
                token.clone(),
                wire::decode_task_id(&resp.body).expect("TaskId frame"),
            ));
        }

        // A binary batch proxies as one opaque body; every slot lands.
        let token = &tokens[0];
        let frames: Vec<wire::SubmitFrame> = (0..3)
            .map(|i| wire::SubmitFrame {
                token: token.clone(),
                hint: None,
                idempotency_key: Some(format!("gw-batch-{i}")),
                ir: ir(5),
            })
            .collect();
        let resp = gw.route(&raw_req(
            "POST",
            &format!("/v1/tasks:batch?token={token}"),
            &[("content-type", wire::CONTENT_TYPE_BIN)],
            wire::encode_submit_batch(&frames),
        ));
        assert_eq!(
            resp.status,
            200,
            "batch via gateway: {}",
            String::from_utf8_lossy(&resp.body)
        );
        assert_eq!(resp.content_type, wire::CONTENT_TYPE_BIN);
        let slots = wire::decode_batch_reply(&resp.body).expect("BatchReply frame");
        assert_eq!(slots.len(), 3);
        for slot in &slots {
            assert!(matches!(slot, wire::BatchSlot::Ok { .. }), "{slot:?}");
        }

        // A JSON batch routes by its first frame's token (body sniff still
        // works for JSON), no ?token= needed.
        let ir_json = serde_json::to_string(&ir(5)).unwrap();
        let json_batch = format!(
            r#"[{{"token":"{token}","ir":{ir_json},"idempotency_key":"gw-json-b0"}},{{"token":"{token}","ir":{ir_json},"idempotency_key":"gw-json-b1"}}]"#
        );
        let (st, body) = post(&gw, "/v1/tasks:batch", &json_batch);
        assert_eq!(st, 200, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2, "{body}");

        // Binary status reads follow the same placement and come back as
        // opaque Status frames (Accept pass-through).
        for (token, id) in &task_ids {
            let resp = gw.route(&raw_req(
                "GET",
                &format!("/v1/tasks/{id}?token={token}"),
                &[("accept", wire::CONTENT_TYPE_BIN)],
                Vec::new(),
            ));
            assert_eq!(resp.status, 200);
            assert_eq!(resp.content_type, wire::CONTENT_TYPE_BIN);
            wire::decode_status(&resp.body).expect("Status frame");
        }
    }

    #[test]
    fn transport_failure_quarantines_the_shard_until_reprobed() {
        let (_svc, server) = shard_daemon();
        let dead = ShardConfig {
            name: "dead".into(),
            primary: "127.0.0.1:1".into(), // nothing listens here
            follower: Some(server.addr().to_string()),
        };
        let gw = Arc::new(Gateway::new(GatewayConfig {
            shards: vec![dead],
            ..GatewayConfig::default()
        }));
        // optimistic start: first request hits the dead primary, gets 503,
        // and marks the shard unready
        let (st, body) = post(&gw, "/v1/sessions", r#"{"user":"u","class":"test"}"#);
        assert_eq!(st, 503, "{body}");
        let (st, _) = post(&gw, "/v1/sessions", r#"{"user":"u","class":"test"}"#);
        assert_eq!(st, 503, "still quarantined");
        // the probe finds the (already-serving-leader) follower and fails over
        assert_eq!(gw.probe_once(), 1);
        let (st, body) = post(&gw, "/v1/sessions", r#"{"user":"u","class":"test"}"#);
        assert_eq!(st, 201, "{body}");
    }
}
