//! Durable daemon state: write-ahead journal + compacted snapshots.
//!
//! The daemon is the long-lived multi-user service on the quantum access
//! node (paper §3.3–§3.5); if its state dies with the process, the
//! second-level scheduler is the least reliable component in the stack.
//! This module makes every state transition durable the way `slurmctld`
//! does with its StateSaveLocation: an append-only write-ahead log of
//! [`JournalRecord`]s plus periodic compacted [`DaemonSnapshot`]s.
//!
//! On-disk layout inside the journal directory:
//!
//! ```text
//! wal.log        length-prefixed, checksummed JSON records (append-only)
//! snapshot.json  last compacted full-state snapshot (atomic rename)
//! ```
//!
//! Each WAL record is framed as
//! `[len: u32 LE][fnv1a32(payload): u32 LE][payload: len JSON bytes]`, so a
//! torn tail (the crash happened mid-`write`) is detected by a short read or
//! a checksum mismatch and replay stops at the last intact record instead of
//! refusing to start. Recovery = load `snapshot.json` (if any), then replay
//! the WAL tail over it — see [`MiddlewareService::recover`].
//!
//! [`MiddlewareService::recover`]: crate::daemon::MiddlewareService::recover

use crate::session::{PriorityClass, Session};
use crate::taskqueue::QuantumTask;
use hpcqc_emulator::SampleResult;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// One durable state transition. Appended *after* the in-memory transition
/// succeeds; replay applies them in order over the latest snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A session was opened (the full session, so replay can restore it).
    SessionOpened { session: Session },
    /// A session was closed by its owner.
    SessionClosed { token: String },
    /// Sessions were expired by the idle TTL.
    SessionsExpired { tokens: Vec<String> },
    /// A task was admitted (queued, or completed instantly from the dev
    /// cache — in that case a `TaskCompleted` record follows immediately).
    TaskSubmitted {
        task: QuantumTask,
        idempotency_key: Option<String>,
        warnings: Vec<String>,
    },
    /// A task left the queue for the device. If no terminal/requeue record
    /// follows, the daemon died mid-dispatch and recovery requeues it.
    TaskDispatched { id: u64, resource: String, at: f64 },
    /// A preempted/sliced task went back to the queue with work remaining.
    TaskRequeued { id: u64 },
    /// An execution attempt failed and the task was requeued; `resource`
    /// joins the task's excluded set.
    TaskAttemptFailed {
        id: u64,
        resource: String,
        error: String,
    },
    /// Terminal: completed with a result. `at` carries the post-execution
    /// daemon clock so recovery does not rewind time.
    TaskCompleted {
        id: u64,
        result: SampleResult,
        at: f64,
    },
    /// Terminal: failed permanently (validation can't fail here — rejected
    /// tasks are never journaled — so this is the poison cap).
    TaskFailed { id: u64, error: String },
    /// Terminal: cancelled by the owner.
    TaskCancelled { id: u64 },
    /// Admin changed the device status (string form of `QpuStatus`).
    QpuStatusChanged { status: String },
    /// The daemon clock advanced (simulated idle time).
    ClockAdvanced { to: f64 },
}

/// Full daemon state at a point in time; written by compaction, loaded as
/// the replay base. Running tasks are normalized back to queued — a snapshot
/// never claims work that has not finished.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DaemonSnapshot {
    pub clock: f64,
    /// Task-id high-water mark: the next id to assign.
    pub next_task: u64,
    /// Session-token counter high-water mark (token uniqueness across
    /// restarts).
    pub session_counter: u64,
    pub sessions: Vec<Session>,
    /// Queued (and formerly running) tasks, arrival order.
    pub queued: Vec<QuantumTask>,
    pub completed: Vec<(u64, SampleResult)>,
    pub failed: Vec<(u64, String)>,
    pub cancelled: Vec<u64>,
    /// (task id, class, submitted_at) for every known task.
    pub task_meta: Vec<(u64, PriorityClass, f64)>,
    /// (task id, attempts, excluded resources) for tasks with failures.
    pub failures: Vec<(u64, u32, Vec<String>)>,
    /// Warning-level analyzer findings per task (job records).
    pub warnings: Vec<(u64, Vec<String>)>,
    /// Idempotency key → original task id.
    pub idempotency: Vec<(String, u64)>,
    /// Last admin-set device status, if any.
    pub qpu_status: Option<String>,
}

/// Journal tuning knobs (part of `DaemonConfig`).
///
/// Never persisted — lives only in `DaemonConfig` — so new knobs need no
/// on-disk compatibility story.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JournalConfig {
    /// fsync the WAL every N appended records (1 = every record, the
    /// default; 0 disables periodic fsync — drain/compaction still fsync).
    /// Also an **upper bound on the group-commit batch**: a batch never
    /// buffers more records than `fsync_every`, so the durability window
    /// promised by this knob is preserved under group commit.
    pub fsync_every: usize,
    /// Compact (snapshot + truncate the WAL) every N appended records
    /// (0 = never compact automatically).
    pub compact_every: usize,
    /// Group commit: buffer appends and flush them as one `write` + one
    /// `fsync` once this many records are batched. 1 (the default) is
    /// write-through — every append hits the OS immediately, exactly the
    /// pre-group-commit behavior. Capped by `fsync_every` when that is
    /// non-zero.
    pub group_max_records: usize,
    /// Group commit: flush early once the batch holds this many framed
    /// bytes (0 = no byte trigger).
    pub group_max_bytes: usize,
    /// Group commit: flush early once the oldest buffered record has waited
    /// this long, checked on the next append (0 = no age trigger). The
    /// dispatcher's idle path also flushes, so a quiescent daemon never
    /// strands a batch.
    pub group_max_age_secs: f64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            fsync_every: 1,
            compact_every: 256,
            group_max_records: 1,
            group_max_bytes: 0,
            group_max_age_secs: 0.0,
        }
    }
}

/// What one append did (for metrics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendOutcome {
    /// Framed bytes appended (header + payload).
    pub bytes: usize,
    /// Whether this append flushed the group-commit buffer to the OS.
    pub flushed: bool,
    /// Whether this append fsynced the WAL.
    pub fsynced: bool,
    /// Whether the compaction policy wants a snapshot after this append.
    /// Computed while the buffer state is already held, so callers do not
    /// have to re-lock the journal just to ask (the lock audit measured
    /// that second acquisition doubling buffer-lock traffic).
    pub wants_compaction: bool,
}

/// Result of reading a journal directory back.
#[derive(Debug, Default)]
pub struct Replay {
    /// The compaction base, when `snapshot.json` exists.
    pub snapshot: Option<DaemonSnapshot>,
    /// Intact WAL records after the snapshot, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of torn/corrupt tail discarded (0 on a clean shutdown).
    pub truncated_bytes: usize,
}

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.json";

/// FNV-1a 32-bit over the record payload; cheap, dependency-free, and more
/// than enough to reject a torn or bit-flipped record.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Append-only writer over a journal directory.
///
/// Appends go through a group-commit buffer: frames accumulate in memory
/// and are flushed to the WAL as one `write` (and at most one `fsync`) per
/// batch, per the [`JournalConfig`] policy. Dropping the journal does
/// **not** flush — an unflushed batch dies with the process, exactly like a
/// crash; callers that need durability call [`Journal::sync`] (drain and
/// compaction do).
pub struct Journal {
    dir: PathBuf,
    wal: File,
    cfg: JournalConfig,
    /// Framed records awaiting the next batch flush.
    buf: Vec<u8>,
    buf_records: usize,
    /// When the oldest buffered record was appended (age trigger).
    buf_oldest: Option<std::time::Instant>,
    appends_since_fsync: usize,
    records_since_compact: usize,
}

impl Journal {
    /// Open (creating if needed) the journal in `dir`. Appends go to the end
    /// of any existing WAL — call [`Journal::load`] first when recovering.
    pub fn open(dir: impl AsRef<Path>, cfg: JournalConfig) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(WAL_FILE))?;
        Ok(Journal {
            dir,
            wal,
            cfg,
            buf: Vec::new(),
            buf_records: 0,
            buf_oldest: None,
            appends_since_fsync: 0,
            records_since_compact: 0,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records buffered but not yet flushed to the OS.
    pub fn pending_records(&self) -> usize {
        self.buf_records
    }

    /// Appends since the last fsync (buffered or flushed-but-unsynced).
    pub fn unsynced_appends(&self) -> usize {
        self.appends_since_fsync
    }

    /// Effective batch size: `group_max_records`, capped by `fsync_every`
    /// (which bounds how many appends may be un-durable), never below 1.
    fn batch_limit(&self) -> usize {
        let g = self.cfg.group_max_records.max(1);
        if self.cfg.fsync_every > 0 {
            g.min(self.cfg.fsync_every)
        } else {
            g
        }
    }

    /// Append one record into the group-commit buffer; flush (one `write`,
    /// at most one `fsync`) when the batch policy says so.
    pub fn append(&mut self, rec: &JournalRecord) -> std::io::Result<AppendOutcome> {
        let payload = serde_json::to_string(rec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
            .into_bytes();
        let frame_len = payload.len() + 8;
        self.buf.reserve(frame_len);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&fnv1a32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.buf_records += 1;
        self.buf_oldest.get_or_insert_with(std::time::Instant::now);
        self.appends_since_fsync += 1;
        self.records_since_compact += 1;

        let age_tripped = self.cfg.group_max_age_secs > 0.0
            && self
                .buf_oldest
                .is_some_and(|t| t.elapsed().as_secs_f64() >= self.cfg.group_max_age_secs);
        let must_flush = self.buf_records >= self.batch_limit()
            || (self.cfg.group_max_bytes > 0 && self.buf.len() >= self.cfg.group_max_bytes)
            || age_tripped;
        let mut fsynced = false;
        if must_flush {
            self.flush()?;
            fsynced = self.cfg.fsync_every > 0 && self.appends_since_fsync >= self.cfg.fsync_every;
            if fsynced {
                self.wal.sync_data()?;
                self.appends_since_fsync = 0;
            }
        }
        Ok(AppendOutcome {
            bytes: frame_len,
            flushed: must_flush,
            fsynced,
            wants_compaction: self.wants_compaction(),
        })
    }

    /// Write the buffered batch to the WAL (no fsync).
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.wal.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.buf_records = 0;
        self.buf_oldest = None;
        Ok(())
    }

    /// Flush any buffered batch and force the WAL to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.flush()?;
        self.wal.sync_data()?;
        self.appends_since_fsync = 0;
        Ok(())
    }

    /// Whether the compaction policy says it is time to snapshot.
    pub fn wants_compaction(&self) -> bool {
        self.cfg.compact_every > 0 && self.records_since_compact >= self.cfg.compact_every
    }

    /// Compact: atomically persist `snap` as the new replay base and
    /// truncate the WAL. Crash-safe — the snapshot is written to a temp file,
    /// fsynced, then renamed over the old one before the WAL is cut.
    pub fn compact(&mut self, snap: &DaemonSnapshot) -> std::io::Result<()> {
        let tmp = self.dir.join("snapshot.json.tmp");
        {
            let mut f = File::create(&tmp)?;
            let body = serde_json::to_string(snap)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
                .into_bytes();
            f.write_all(&body)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // the snapshot covers everything the WAL (and the unflushed batch)
        // said: drop the buffer and start a fresh log
        self.buf.clear();
        self.buf_records = 0;
        self.buf_oldest = None;
        self.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.dir.join(WAL_FILE))?;
        self.wal.sync_data()?;
        self.appends_since_fsync = 0;
        self.records_since_compact = 0;
        Ok(())
    }

    /// Read a journal directory back: snapshot (if any) plus every intact
    /// WAL record. A torn or corrupt tail is measured and discarded, never
    /// an error — crash recovery must always make it back up.
    pub fn load(dir: impl AsRef<Path>) -> std::io::Result<Replay> {
        let dir = dir.as_ref();
        let mut replay = Replay::default();
        let snap_path = dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            let body = std::fs::read(&snap_path)?;
            replay.snapshot = serde_json::from_slice(&body).ok();
        }
        let wal_path = dir.join(WAL_FILE);
        if !wal_path.exists() {
            return Ok(replay);
        }
        let mut buf = Vec::new();
        File::open(&wal_path)?.read_to_end(&mut buf)?;
        let mut pos = 0usize;
        while pos + 8 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let Some(end) = start.checked_add(len).filter(|&e| e <= buf.len()) else {
                break; // torn tail: frame header promises more than exists
            };
            let payload = &buf[start..end];
            if fnv1a32(payload) != crc {
                break; // corrupt record: stop at the last intact prefix
            }
            match serde_json::from_slice::<JournalRecord>(payload) {
                Ok(rec) => replay.records.push(rec),
                Err(_) => break, // checksummed but unparseable: same policy
            }
            pos = end;
        }
        replay.truncated_bytes = buf.len() - pos;
        Ok(replay)
    }
}

// ---------------------------------------------------------------------------
// SharedJournal: the concurrent group-commit front end
// ---------------------------------------------------------------------------

/// Group-commit buffer state — everything a submitter touches. Kept apart
/// from [`FileState`] so that the (cheap) encode-and-buffer step never waits
/// behind a `write`+`fsync` another thread is performing.
struct BufState {
    cfg: JournalConfig,
    /// Framed records awaiting the next batch flush.
    buf: Vec<u8>,
    buf_records: usize,
    /// When the oldest buffered record was appended (age trigger).
    buf_oldest: Option<std::time::Instant>,
    appends_since_fsync: usize,
    records_since_compact: usize,
    /// Next write ticket to issue. Batches hit the WAL in ticket order.
    next_ticket: u64,
}

/// WAL file state — only batch flushers and compaction touch this.
struct FileState {
    wal: File,
}

/// A [`Journal`] that can be appended to from many threads without the
/// convoy: the buffer and the file live under *separate* tracked locks
/// ([`hpcqc_sync::rank::JOURNAL_BUF`] / [`JOURNAL_FILE`]), so a submitter
/// whose append merely lands in the batch pays a few hundred nanoseconds of
/// buffer-lock work, while the one-in-`group_max_records` append that trips
/// the batch carries the `write`+`fsync` alone.
///
/// Batches are sequenced onto the WAL by a ticket protocol: the trip-taker
/// draws a ticket while still holding the buffer lock (so tickets order
/// batches exactly as their records were appended) and writers wait their
/// turn on a condvar before touching the file. The ticket is advanced even
/// when the write errors — a failed flush must never wedge later batches.
///
/// Durability semantics are identical to [`Journal`]: `append` returns only
/// after any batch it tripped is on disk (and fsynced when the policy says
/// so), `sync` makes everything buffered durable, and dropping the journal
/// loses exactly the unflushed batch.
///
/// [`append_deferred`](Self::append_deferred) additionally lets latency-
/// sensitive callers (the daemon's submit path) trip a batch without paying
/// its `write`+`fsync`: the batch is parked on a queue, ticket already
/// drawn, and the next `append`/`flush`/`sync` writes it before its own
/// batch. Durability is unchanged in *kind* — group commit already defers
/// the write — only the thread that pays for it moves off the client path.
pub struct SharedJournal {
    dir: PathBuf,
    buf: hpcqc_sync::TrackedMutex<BufState>,
    /// Batches tripped by `append_deferred`, awaiting a writer. Pushed while
    /// the buffer lock is still held, so the queue is FIFO in ticket order
    /// and any thread that later draws a ticket can observe (and steal)
    /// every deferred batch ordered before its own.
    pending: hpcqc_sync::TrackedMutex<std::collections::VecDeque<Batch>>,
    file: hpcqc_sync::TrackedMutex<FileState>,
    /// Tickets below this value have finished their WAL write. Guards only
    /// the counter (internal sequencing, deliberately outside the tracked
    /// hierarchy — waiters hold no tracked lock while blocked on it).
    seq: std::sync::Mutex<u64>,
    seq_cv: std::sync::Condvar,
    /// Leader→follower shipping stream. `None` until
    /// [`enable_shipping`](Self::enable_shipping); appended right after a
    /// WAL write (still holding that write's ticket) so the stream order
    /// always equals the WAL byte order.
    shipping: hpcqc_sync::TrackedMutex<Option<ShippingLog>>,
}

/// One batch handed from the buffer to the WAL writer.
struct Batch {
    ticket: u64,
    bytes: Vec<u8>,
    /// Records framed into `bytes` (shipped to followers for lag metrics).
    records: usize,
    fsync: bool,
}

impl SharedJournal {
    /// Open (creating if needed) the journal in `dir`. See [`Journal::open`].
    pub fn open(dir: impl AsRef<Path>, cfg: JournalConfig) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(WAL_FILE))?;
        Ok(SharedJournal {
            dir,
            buf: hpcqc_sync::TrackedMutex::new(
                "middleware.journal.buf",
                hpcqc_sync::rank::JOURNAL_BUF,
                BufState {
                    cfg,
                    buf: Vec::new(),
                    buf_records: 0,
                    buf_oldest: None,
                    appends_since_fsync: 0,
                    records_since_compact: 0,
                    next_ticket: 0,
                },
            ),
            pending: hpcqc_sync::TrackedMutex::new(
                "middleware.journal.pending",
                hpcqc_sync::rank::JOURNAL_PENDING,
                std::collections::VecDeque::new(),
            ),
            file: hpcqc_sync::TrackedMutex::new(
                "middleware.journal.file",
                hpcqc_sync::rank::JOURNAL_FILE,
                FileState { wal },
            ),
            seq: std::sync::Mutex::new(0),
            seq_cv: std::sync::Condvar::new(),
            shipping: hpcqc_sync::TrackedMutex::new(
                "middleware.journal.shiplog",
                hpcqc_sync::rank::SHIP_LOG,
                None,
            ),
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records buffered but not yet flushed to the OS.
    pub fn pending_records(&self) -> usize {
        self.buf.lock().buf_records
    }

    /// Appends since the last fsync (buffered or flushed-but-unsynced).
    pub fn unsynced_appends(&self) -> usize {
        self.buf.lock().appends_since_fsync
    }

    /// Whether the compaction policy says it is time to snapshot.
    pub fn wants_compaction(&self) -> bool {
        let b = self.buf.lock();
        b.cfg.compact_every > 0 && b.records_since_compact >= b.cfg.compact_every
    }

    fn batch_limit(cfg: &JournalConfig) -> usize {
        let g = cfg.group_max_records.max(1);
        if cfg.fsync_every > 0 {
            g.min(cfg.fsync_every)
        } else {
            g
        }
    }

    /// Draw the next write ticket. Must be called under the buffer lock so
    /// ticket order equals append order.
    fn issue_ticket(b: &mut BufState) -> u64 {
        let t = b.next_ticket;
        b.next_ticket += 1;
        t
    }

    /// Take the pending batch out of the buffer (caller decides the fsync
    /// policy bit), leaving the buffer empty. Under the buffer lock.
    fn take_batch(b: &mut BufState, fsync: bool) -> Batch {
        let bytes = std::mem::take(&mut b.buf);
        let records = b.buf_records;
        b.buf_records = 0;
        b.buf_oldest = None;
        if fsync {
            b.appends_since_fsync = 0;
        }
        Batch {
            ticket: Self::issue_ticket(b),
            bytes,
            records,
            fsync,
        }
    }

    /// Write one batch to the WAL in ticket order, after writing any
    /// deferred batch ordered before it. The steal is mandatory, not an
    /// optimization: a deferred batch has no writer of its own, so a later
    /// ticket that skipped it would wait on [`write_batch_ordered`]'s
    /// condvar forever.
    fn write_batch(&self, batch: Batch) -> std::io::Result<()> {
        let mut stolen = Ok(());
        loop {
            let earlier = {
                let mut p = self.pending.lock();
                if p.front().is_some_and(|d| d.ticket < batch.ticket) {
                    p.pop_front()
                } else {
                    None
                }
            };
            let Some(d) = earlier else { break };
            // Keep writing our own batch even if a stolen one fails — its
            // ticket advanced regardless, and wedging *our* ticket would
            // stall every writer behind us. First error wins the return.
            if let Err(e) = self.write_batch_ordered(d) {
                if stolen.is_ok() {
                    stolen = Err(e);
                }
            }
        }
        let own = self.write_batch_ordered(batch);
        own.and(stolen)
    }

    /// Write one batch to the WAL in ticket order. Advances the ticket even
    /// on error so later batches (and `compact`) are never wedged behind a
    /// failed write.
    fn write_batch_ordered(&self, batch: Batch) -> std::io::Result<()> {
        let mut seq = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        while *seq != batch.ticket {
            seq = self.seq_cv.wait(seq).unwrap_or_else(|e| e.into_inner());
        }
        drop(seq);
        let res = (|| {
            let mut f = self.file.lock();
            if !batch.bytes.is_empty() {
                f.wal.write_all(&batch.bytes)?;
            }
            if batch.fsync {
                f.wal.sync_data()?;
            }
            Ok(())
        })();
        // Ship the batch while we still own the ticket: no later ticket can
        // append to the shipping log before us, so stream order equals WAL
        // byte order. Failed or empty (ticket-retiring) writes ship nothing.
        if res.is_ok() && !batch.bytes.is_empty() {
            let mut s = self.shipping.lock();
            if let Some(log) = s.as_mut() {
                log.push_batch(batch.records as u64, &batch.bytes);
            }
        }
        let mut seq = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        *seq += 1;
        self.seq_cv.notify_all();
        res
    }

    /// Encode `rec` into the group-commit buffer and, when the batch policy
    /// trips, take the batch. With `defer`, a tripped batch is parked on
    /// `pending` *while the buffer lock is still held* — the ticket issue
    /// and the publish must be atomic, or a sibling could draw a later
    /// ticket, see an empty queue, and wait forever on the unpublished one.
    /// Returns `(frame bytes, batch to write now, wants_compaction)`.
    fn buffer_record(
        &self,
        rec: &JournalRecord,
        defer: bool,
    ) -> std::io::Result<(usize, Option<Batch>, bool)> {
        let payload = serde_json::to_string(rec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
            .into_bytes();
        let frame_len = payload.len() + 8;

        let mut b = self.buf.lock();
        b.buf.reserve(frame_len);
        b.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        b.buf.extend_from_slice(&fnv1a32(&payload).to_le_bytes());
        b.buf.extend_from_slice(&payload);
        b.buf_records += 1;
        b.buf_oldest.get_or_insert_with(std::time::Instant::now);
        b.appends_since_fsync += 1;
        b.records_since_compact += 1;
        let wants_compaction =
            b.cfg.compact_every > 0 && b.records_since_compact >= b.cfg.compact_every;

        let age_tripped = b.cfg.group_max_age_secs > 0.0
            && b.buf_oldest
                .is_some_and(|t| t.elapsed().as_secs_f64() >= b.cfg.group_max_age_secs);
        let must_flush = b.buf_records >= Self::batch_limit(&b.cfg)
            || (b.cfg.group_max_bytes > 0 && b.buf.len() >= b.cfg.group_max_bytes)
            || age_tripped;
        if !must_flush {
            return Ok((frame_len, None, wants_compaction));
        }
        let fsync = b.cfg.fsync_every > 0 && b.appends_since_fsync >= b.cfg.fsync_every;
        // Write-through (batch limit 1) is an explicit request for
        // per-append durability — honor it even on the deferred path.
        // Deferral only moves the payer when group commit already defers
        // durability to a batch boundary.
        let defer = defer && Self::batch_limit(&b.cfg) > 1;
        let batch = Self::take_batch(&mut b, fsync);
        if defer {
            self.pending.lock().push_back(batch);
            return Ok((frame_len, None, wants_compaction));
        }
        Ok((frame_len, Some(batch), wants_compaction))
    }

    /// Append one record; flush the batch it completes, if any. Semantics
    /// match [`Journal::append`], but only the tripping thread pays for the
    /// `write`+`fsync` — concurrent appends keep buffering meanwhile.
    pub fn append(&self, rec: &JournalRecord) -> std::io::Result<AppendOutcome> {
        let (bytes, batch, wants_compaction) = self.buffer_record(rec, false)?;
        match batch {
            None => Ok(AppendOutcome {
                bytes,
                flushed: false,
                fsynced: false,
                wants_compaction,
            }),
            Some(batch) => {
                let fsynced = batch.fsync;
                self.write_batch(batch)?;
                Ok(AppendOutcome {
                    bytes,
                    flushed: true,
                    fsynced,
                    wants_compaction,
                })
            }
        }
    }

    /// Append one record without ever paying for a WAL write: a batch this
    /// append trips is parked for the next `append`/`flush`/`sync` caller
    /// (in practice the background dispatcher, which journals every
    /// dispatch) to write. This is the submit-path variant — the lock audit
    /// traced the daemon's submit p99 to one-in-`group_max_records`
    /// submitters eating a multi-millisecond `write`+`fsync`.
    ///
    /// `flushed`/`fsynced` report `false` because nothing reached the OS on
    /// this call; the eventual writer carries the batch's fsync bit.
    pub fn append_deferred(&self, rec: &JournalRecord) -> std::io::Result<AppendOutcome> {
        let (bytes, batch, wants_compaction) = self.buffer_record(rec, true)?;
        match batch {
            None => Ok(AppendOutcome {
                bytes,
                flushed: false,
                fsynced: false,
                wants_compaction,
            }),
            // Write-through config: deferral is disabled (see
            // `buffer_record`), so pay the write here exactly like
            // `append` — the issued ticket must be written, never dropped,
            // or every later writer wedges behind it.
            Some(batch) => {
                let fsynced = batch.fsync;
                self.write_batch(batch)?;
                Ok(AppendOutcome {
                    bytes,
                    flushed: true,
                    fsynced,
                    wants_compaction,
                })
            }
        }
    }

    /// Deferred batches parked and not yet written (idle-sync must not
    /// early-return while this is non-zero).
    pub fn deferred_batches(&self) -> usize {
        self.pending.lock().len()
    }

    /// Write the buffered batch (and any deferred batches) to the WAL
    /// (no fsync of its own; deferred batches keep their fsync bit).
    pub fn flush(&self) -> std::io::Result<()> {
        let batch = {
            let mut b = self.buf.lock();
            if b.buf.is_empty() {
                drop(b);
                return self.drain_deferred();
            }
            Self::take_batch(&mut b, false)
        };
        self.write_batch(batch)
    }

    /// Write every parked deferred batch now. Concurrent drainers are fine:
    /// each batch is popped exactly once and [`write_batch_ordered`] serializes
    /// them by ticket.
    fn drain_deferred(&self) -> std::io::Result<()> {
        let mut res = Ok(());
        loop {
            let d = self.pending.lock().pop_front();
            let Some(d) = d else { break };
            if let Err(e) = self.write_batch_ordered(d) {
                if res.is_ok() {
                    res = Err(e);
                }
            }
        }
        res
    }

    /// Flush any buffered batch and force the WAL to stable storage.
    pub fn sync(&self) -> std::io::Result<()> {
        let batch = {
            let mut b = self.buf.lock();
            b.appends_since_fsync = 0;
            Self::take_batch(&mut b, true)
        };
        self.write_batch(batch)
    }

    /// Compact: persist `snap` as the new replay base and truncate the WAL.
    /// Safe against concurrent appends: the buffer is cleared first (holding
    /// the buffer lock blocks new tickets), then compaction waits for every
    /// already-issued ticket to finish its write before cutting the log —
    /// a stale in-flight batch can never resurface in the fresh WAL.
    ///
    /// Note that an append racing this call may still land records in the
    /// cut WAL *after* the snapshot was taken but miss the snapshot itself;
    /// the daemon excludes that interleaving with its compaction gate
    /// (appends hold it shared, compaction exclusive — see
    /// `MiddlewareService::journal_append`).
    pub fn compact(&self, snap: &DaemonSnapshot) -> std::io::Result<()> {
        let mut b = self.buf.lock();
        // the snapshot covers everything the WAL (and the unflushed batch)
        // said: drop the buffer and start a fresh log
        b.buf.clear();
        b.buf_records = 0;
        b.buf_oldest = None;
        b.appends_since_fsync = 0;
        b.records_since_compact = 0;
        let issued = b.next_ticket;
        // Deferred batches hold issued tickets but have no writer; waiting
        // for `issued` below would deadlock on them. The snapshot covers
        // their records, so retire each ticket with an emptied batch
        // instead of writing soon-to-be-truncated bytes. (Lock order stays
        // ascending: buf 900 → pending 910 → file 920.)
        loop {
            let d = self.pending.lock().pop_front();
            let Some(d) = d else { break };
            let _ = self.write_batch_ordered(Batch {
                ticket: d.ticket,
                bytes: Vec::new(),
                records: 0,
                fsync: false,
            });
        }
        // Wait for in-flight batch writes (ticket drawn, WAL write pending).
        // Holding `buf` here blocks new tickets, so this terminates.
        let mut seq = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        while *seq != issued {
            seq = self.seq_cv.wait(seq).unwrap_or_else(|e| e.into_inner());
        }
        drop(seq);

        let tmp = self.dir.join("snapshot.json.tmp");
        let body = serde_json::to_string(snap)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
            .into_bytes();
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&body)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        let mut f = self.file.lock();
        f.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.dir.join(WAL_FILE))?;
        f.wal.sync_data()?;
        drop(f);
        // Ship the compaction as a snapshot event. Still holding the buffer
        // lock: no ticket can be issued, so no batch event can interleave
        // between the WAL cut and this event. Earlier events are superseded
        // (the snapshot carries the full state), so the log is trimmed to it
        // and a follower behind the trim point resyncs from the snapshot.
        {
            let mut s = self.shipping.lock();
            if let Some(log) = s.as_mut() {
                log.push_snapshot(&body);
            }
        }
        drop(b);
        Ok(())
    }

    /// Turn on leader→follower shipping, emitting the journal's *current*
    /// durable state (snapshot + WAL bytes) as the stream's bootstrap events
    /// so a follower starting at sequence 0 reconstructs it exactly.
    ///
    /// Call right after [`open`](Self::open) / recovery, before concurrent
    /// appends begin — the bootstrap reads the files under the file lock but
    /// does not drain buffered or deferred batches.
    pub fn enable_shipping(&self) -> std::io::Result<()> {
        let f = self.file.lock();
        let snap = match std::fs::read(self.dir.join(SNAPSHOT_FILE)) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let wal = std::fs::read(self.dir.join(WAL_FILE))?;
        drop(f);
        let mut s = self.shipping.lock();
        if s.is_some() {
            return Ok(());
        }
        let mut log = ShippingLog::new();
        if let Some(snap) = snap {
            log.push_snapshot(&snap);
        }
        if !wal.is_empty() {
            let records = count_frames(&wal);
            log.push_batch(records, &wal);
        }
        *s = Some(log);
        Ok(())
    }

    /// Whether shipping is enabled.
    pub fn shipping_enabled(&self) -> bool {
        self.shipping.lock().is_some()
    }

    /// Events with sequence ≥ `from_seq`, for (re)transmission to a
    /// follower. If `from_seq` predates the retained window (trimmed at the
    /// last snapshot event), the full retained tail is returned — it begins
    /// with a snapshot event, which followers accept as a forward resync.
    /// Empty when shipping is disabled or the follower is caught up.
    pub fn ship_fetch(&self, from_seq: u64) -> Vec<ShipEvent> {
        let s = self.shipping.lock();
        let Some(log) = s.as_ref() else {
            return Vec::new();
        };
        log.events
            .iter()
            .filter(|ev| ev.seq() >= from_seq)
            .cloned()
            .collect()
    }

    /// Record a follower's durable-apply acknowledgement. Events every
    /// follower has acked are dropped from the retained window — they can
    /// never be refetched (acks only move forward), and trimming keeps the
    /// fetch/lag scans O(pending) instead of O(history). A follower joining
    /// later than the trim waits for the next compaction's snapshot event,
    /// which resets the stream wholesale.
    pub fn ship_ack(&self, follower: &str, ack: ReplicaAck) {
        let mut s = self.shipping.lock();
        if let Some(log) = s.as_mut() {
            log.followers.insert(follower.to_string(), ack);
            if let Some(floor) = log.followers.values().map(|a| a.applied_seq).min() {
                while log.events.front().is_some_and(|ev| ev.seq() < floor) {
                    log.events.pop_front();
                }
            }
        }
    }

    /// The most advanced follower acknowledgement seen so far — the bar a
    /// promotion candidate must meet (`None`: no follower ever acked).
    pub fn ship_last_acked(&self) -> Option<ReplicaAck> {
        let s = self.shipping.lock();
        s.as_ref().and_then(|log| {
            log.followers
                .values()
                .max_by_key(|a| a.applied_seq)
                .copied()
        })
    }

    /// Sequence the next shipped event will carry.
    pub fn ship_next_seq(&self) -> u64 {
        self.shipping.lock().as_ref().map_or(0, |log| log.next_seq)
    }

    /// Shipped-but-unacked gap `(records, bytes)` relative to the most
    /// *behind* follower (every event counts while no follower has acked).
    pub fn ship_lag(&self) -> (u64, u64) {
        let s = self.shipping.lock();
        let Some(log) = s.as_ref() else {
            return (0, 0);
        };
        let floor = log
            .followers
            .values()
            .map(|a| a.applied_seq)
            .min()
            .unwrap_or(0);
        log.events
            .iter()
            .filter(|ev| ev.seq() >= floor)
            .fold((0, 0), |(r, b), ev| {
                (r + ev.records(), b + ev.payload_len() as u64)
            })
    }
}

// ---------------------------------------------------------------------------
// Leader→follower journal shipping.
//
// The leader's group-commit batches double as the replication unit: every
// batch that lands on the leader's WAL is also appended — checksummed and
// sequence-numbered — to an in-memory shipping log, and compactions ship the
// snapshot itself. A follower applies events onto its own journal directory
// (bytes verbatim, so the follower's files are bit-identical to the state
// the leader persisted) and acknowledges how far it is durably applied.
// Promotion replays that directory through the ordinary recovery path.
// ---------------------------------------------------------------------------

/// Count framed records in WAL `bytes` (frames are `[len][crc][payload]`).
fn count_frames(bytes: &[u8]) -> u64 {
    let mut n = 0;
    let mut at = 0usize;
    while at + 8 <= bytes.len() {
        let len =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize;
        if at + 8 + len > bytes.len() {
            break;
        }
        at += 8 + len;
        n += 1;
    }
    n
}

/// One group-commit batch on the shipping stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShippedBatch {
    /// Position in the shipping stream (contiguous, per leader).
    pub seq: u64,
    /// Byte offset in the follower's WAL where `bytes` must land — the
    /// offset-based resume/validation cursor.
    pub offset: u64,
    /// Records framed into `bytes`.
    pub records: u64,
    /// FNV-1a over `bytes`; a torn or bit-flipped transfer fails this before
    /// anything touches the follower's journal.
    pub checksum: u32,
    /// The WAL bytes exactly as the leader wrote them (framing included).
    pub bytes: Vec<u8>,
}

/// A compaction snapshot on the shipping stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShippedSnapshot {
    /// Position in the shipping stream.
    pub seq: u64,
    /// FNV-1a over `bytes`.
    pub checksum: u32,
    /// The snapshot JSON exactly as the leader persisted it.
    pub bytes: Vec<u8>,
}

/// One event on the leader→follower shipping stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShipEvent {
    /// Append these WAL bytes at the stated offset.
    Batch(ShippedBatch),
    /// Replace the snapshot and truncate the WAL (full-state resync point).
    Snapshot(ShippedSnapshot),
}

impl ShipEvent {
    /// Stream sequence of this event.
    pub fn seq(&self) -> u64 {
        match self {
            ShipEvent::Batch(b) => b.seq,
            ShipEvent::Snapshot(s) => s.seq,
        }
    }

    /// Payload bytes carried.
    pub fn payload_len(&self) -> usize {
        match self {
            ShipEvent::Batch(b) => b.bytes.len(),
            ShipEvent::Snapshot(s) => s.bytes.len(),
        }
    }

    /// Journal records carried (snapshots count 0 — they *replace* state).
    pub fn records(&self) -> u64 {
        match self {
            ShipEvent::Batch(b) => b.records,
            ShipEvent::Snapshot(_) => 0,
        }
    }
}

/// A follower's durable-apply cursor: how many stream events it has applied
/// and how long its WAL is. Acks carry this; promotion is refused below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReplicaAck {
    /// Events applied (also the next sequence the follower expects).
    pub applied_seq: u64,
    /// Bytes durably in the follower's WAL.
    pub wal_len: u64,
}

impl ReplicaAck {
    /// Whether a replica at `self` may be promoted when the cluster has
    /// acknowledged up to `bar` (snapshots reset `wal_len`, so the sequence
    /// dominates and the offset breaks ties).
    pub fn at_least(&self, bar: &ReplicaAck) -> bool {
        (self.applied_seq, self.wal_len) >= (bar.applied_seq, bar.wal_len)
    }
}

/// Leader-side shipping state: the retained event window plus follower acks.
struct ShippingLog {
    events: std::collections::VecDeque<ShipEvent>,
    next_seq: u64,
    /// Leader WAL length as of the last shipped event (assigns offsets).
    wal_offset: u64,
    followers: std::collections::BTreeMap<String, ReplicaAck>,
}

impl ShippingLog {
    fn new() -> Self {
        ShippingLog {
            events: std::collections::VecDeque::new(),
            next_seq: 0,
            wal_offset: 0,
            followers: std::collections::BTreeMap::new(),
        }
    }

    fn push_batch(&mut self, records: u64, bytes: &[u8]) {
        let ev = ShippedBatch {
            seq: self.next_seq,
            offset: self.wal_offset,
            records,
            checksum: fnv1a32(bytes),
            bytes: bytes.to_vec(),
        };
        self.next_seq += 1;
        self.wal_offset += bytes.len() as u64;
        self.events.push_back(ShipEvent::Batch(ev));
    }

    fn push_snapshot(&mut self, bytes: &[u8]) {
        let ev = ShippedSnapshot {
            seq: self.next_seq,
            checksum: fnv1a32(bytes),
            bytes: bytes.to_vec(),
        };
        self.next_seq += 1;
        self.wal_offset = 0;
        // The snapshot supersedes everything before it: trim the window.
        self.events.clear();
        self.events.push_back(ShipEvent::Snapshot(ev));
    }
}

/// Why a follower refused a shipped event.
#[derive(Debug)]
pub enum ShipError {
    /// Payload failed its FNV check — torn or corrupted in transfer.
    Checksum { seq: u64 },
    /// Not the next expected sequence (reordered, replayed, or gapped).
    Sequence { expected: u64, got: u64 },
    /// Batch offset does not match the follower's WAL length.
    Offset { expected: u64, got: u64 },
    /// Local I/O failure while applying.
    Io(std::io::Error),
}

impl ShipError {
    /// Stable label for metrics (`replication_rejected_events_total`).
    pub fn reason(&self) -> &'static str {
        match self {
            ShipError::Checksum { .. } => "checksum",
            ShipError::Sequence { .. } => "sequence",
            ShipError::Offset { .. } => "offset",
            ShipError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for ShipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShipError::Checksum { seq } => write!(f, "checksum mismatch at seq {seq}"),
            ShipError::Sequence { expected, got } => {
                write!(f, "sequence gap: expected {expected}, got {got}")
            }
            ShipError::Offset { expected, got } => {
                write!(f, "offset mismatch: wal at {expected}, batch at {got}")
            }
            ShipError::Io(e) => write!(f, "apply failed: {e}"),
        }
    }
}

impl std::error::Error for ShipError {}

impl From<std::io::Error> for ShipError {
    fn from(e: std::io::Error) -> Self {
        ShipError::Io(e)
    }
}

/// Follower-side cursor metadata persisted next to the replicated journal.
const REPLICA_META_FILE: &str = "replica.json";

/// A warm-standby journal directory fed by a leader's shipping stream.
///
/// Applies [`ShipEvent`]s verbatim onto its own `wal.log` / `snapshot.json`
/// after validating checksum, sequence contiguity and WAL offset, then
/// fsyncs — an ack from a follower means the bytes are on *its* stable
/// storage. The directory is a valid [`Journal`] at every point, so
/// promotion is exactly `MiddlewareService::recover` over it.
pub struct FollowerReplica {
    dir: PathBuf,
    wal: File,
    next_seq: u64,
    wal_len: u64,
}

impl FollowerReplica {
    /// Open (creating if needed) a replica in `dir`, resuming its cursor
    /// from the persisted metadata when present.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(WAL_FILE))?;
        let wal_len = wal.metadata()?.len();
        let next_seq = match std::fs::read_to_string(dir.join(REPLICA_META_FILE)) {
            Ok(text) => serde_json::from_str::<ReplicaAck>(&text)
                .map(|a| a.applied_seq)
                .unwrap_or(0),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e),
        };
        Ok(FollowerReplica {
            dir,
            wal,
            next_seq,
            wal_len,
        })
    }

    /// The replica's journal directory (a promotion candidate's `recover`
    /// path).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current durable cursor — what this follower would ack.
    pub fn ack(&self) -> ReplicaAck {
        ReplicaAck {
            applied_seq: self.next_seq,
            wal_len: self.wal_len,
        }
    }

    /// Read a replica directory's persisted cursor without opening it (the
    /// promotion-refusal check reads this).
    pub fn peek_ack(dir: impl AsRef<Path>) -> std::io::Result<ReplicaAck> {
        let text = std::fs::read_to_string(dir.as_ref().join(REPLICA_META_FILE))?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Validate and durably apply one shipped event; returns the new cursor
    /// (the ack to send). Rejected events leave the replica untouched, so a
    /// retransmission of the valid event still applies cleanly.
    pub fn apply(&mut self, ev: &ShipEvent) -> Result<ReplicaAck, ShipError> {
        self.apply_unsynced(ev)?;
        self.finish_round()?;
        Ok(self.ack())
    }

    /// Apply a run of events with one durability point: every batch is
    /// written in order, the WAL is fsynced once at the end of the run, and
    /// the cursor is persisted once — the follower-side mirror of the
    /// leader's group commit, and the reason acks are emitted per *round*,
    /// not per event. A validation failure stops the run; the already-
    /// written prefix is made durable and counted. Returns `(applied,
    /// rejection)`.
    pub fn apply_all(&mut self, events: &[ShipEvent]) -> (usize, Option<ShipError>) {
        let mut applied = 0;
        let mut err = None;
        for ev in events {
            match self.apply_unsynced(ev) {
                Ok(()) => applied += 1,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        if let Err(e) = self.finish_round() {
            err.get_or_insert(e);
        }
        (applied, err)
    }

    /// Make the round's writes durable and persist the cursor.
    fn finish_round(&mut self) -> Result<(), ShipError> {
        self.wal.sync_data()?;
        let ack = self.ack();
        std::fs::write(
            self.dir.join(REPLICA_META_FILE),
            serde_json::to_string(&ack)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?,
        )?;
        Ok(())
    }

    /// Validate and write one event without the round-closing fsync.
    fn apply_unsynced(&mut self, ev: &ShipEvent) -> Result<(), ShipError> {
        match ev {
            ShipEvent::Batch(b) => {
                if fnv1a32(&b.bytes) != b.checksum {
                    return Err(ShipError::Checksum { seq: b.seq });
                }
                if b.seq != self.next_seq {
                    return Err(ShipError::Sequence {
                        expected: self.next_seq,
                        got: b.seq,
                    });
                }
                if b.offset != self.wal_len {
                    return Err(ShipError::Offset {
                        expected: self.wal_len,
                        got: b.offset,
                    });
                }
                self.wal.write_all(&b.bytes)?;
                self.wal_len += b.bytes.len() as u64;
                self.next_seq = b.seq + 1;
            }
            ShipEvent::Snapshot(s) => {
                if fnv1a32(&s.bytes) != s.checksum {
                    return Err(ShipError::Checksum { seq: s.seq });
                }
                // Forward jumps are allowed: a snapshot is a full-state
                // resync, so a follower behind the leader's retained window
                // re-bases on it. Replayed/reordered snapshots are not.
                if s.seq < self.next_seq {
                    return Err(ShipError::Sequence {
                        expected: self.next_seq,
                        got: s.seq,
                    });
                }
                let tmp = self.dir.join("snapshot.json.tmp");
                {
                    let mut f = File::create(&tmp)?;
                    f.write_all(&s.bytes)?;
                    f.sync_data()?;
                }
                std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
                self.wal = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(self.dir.join(WAL_FILE))?;
                self.wal.sync_data()?;
                self.wal_len = 0;
                self.next_seq = s.seq + 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/journal-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(id: u64) -> JournalRecord {
        JournalRecord::TaskCancelled { id }
    }

    #[test]
    fn append_and_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        for i in 0..5 {
            let out = j.append(&rec(i)).unwrap();
            assert!(out.bytes > 8);
            assert!(out.fsynced, "fsync_every=1 syncs each append");
        }
        j.append(&JournalRecord::ClockAdvanced { to: 12.5 })
            .unwrap();
        let replay = Journal::load(&dir).unwrap();
        assert!(replay.snapshot.is_none());
        assert_eq!(replay.records.len(), 6);
        assert_eq!(replay.records[2], rec(2));
        assert_eq!(replay.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = tmpdir("torn");
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        for i in 0..4 {
            j.append(&rec(i)).unwrap();
        }
        // simulate a crash mid-write: chop bytes off the last frame
        let wal = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.records.len(), 3, "last record torn away");
        assert!(replay.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_stops_replay_at_last_intact_prefix() {
        let dir = tmpdir("corrupt");
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        for i in 0..3 {
            j.append(&rec(i)).unwrap();
        }
        let wal = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        // flip a payload bit in the middle record
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&wal, &bytes).unwrap();
        let replay = Journal::load(&dir).unwrap();
        assert!(replay.records.len() < 3);
        assert!(replay.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_truncates_wal_and_persists_snapshot() {
        let dir = tmpdir("compact");
        let mut j = Journal::open(
            &dir,
            JournalConfig {
                fsync_every: 1,
                compact_every: 3,
                ..JournalConfig::default()
            },
        )
        .unwrap();
        assert!(!j.wants_compaction());
        for i in 0..3 {
            j.append(&rec(i)).unwrap();
        }
        assert!(j.wants_compaction());
        let snap = DaemonSnapshot {
            next_task: 42,
            cancelled: vec![0, 1, 2],
            ..DaemonSnapshot::default()
        };
        j.compact(&snap).unwrap();
        assert!(!j.wants_compaction());
        // appends after compaction land in the fresh WAL
        j.append(&rec(99)).unwrap();
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.snapshot.as_ref().unwrap().next_task, 42);
        assert_eq!(replay.records, vec![rec(99)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_buffers_until_batch_full() {
        let dir = tmpdir("group");
        let cfg = JournalConfig {
            fsync_every: 4,
            compact_every: 0,
            group_max_records: 4,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        for i in 0..3 {
            let out = j.append(&rec(i)).unwrap();
            assert!(!out.flushed, "batch not full yet");
            assert!(!out.fsynced);
        }
        assert_eq!(j.pending_records(), 3);
        // an unflushed batch is invisible to a reader (= lost on crash)
        assert_eq!(Journal::load(&dir).unwrap().records.len(), 0);
        let out = j.append(&rec(3)).unwrap();
        assert!(out.flushed, "4th record fills the batch");
        assert!(out.fsynced, "one fsync covers the whole batch");
        assert_eq!(j.pending_records(), 0);
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.records.len(), 4);
        assert_eq!(replay.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_every_caps_the_batch() {
        let dir = tmpdir("group-cap");
        let cfg = JournalConfig {
            fsync_every: 2,
            compact_every: 0,
            group_max_records: 100,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        assert!(!j.append(&rec(0)).unwrap().flushed);
        let out = j.append(&rec(1)).unwrap();
        assert!(out.flushed, "fsync_every bounds the batch at 2");
        assert!(out.fsynced);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_trigger_flushes_early() {
        let dir = tmpdir("group-bytes");
        let cfg = JournalConfig {
            fsync_every: 0,
            compact_every: 0,
            group_max_records: 1000,
            group_max_bytes: 1, // any record exceeds this
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        let out = j.append(&rec(0)).unwrap();
        assert!(out.flushed);
        assert!(!out.fsynced, "fsync_every=0 never fsyncs on append");
        assert_eq!(Journal::load(&dir).unwrap().records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_flushes_pending_batch() {
        let dir = tmpdir("group-sync");
        let cfg = JournalConfig {
            fsync_every: 0,
            compact_every: 0,
            group_max_records: 8,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        j.append(&rec(0)).unwrap();
        j.append(&rec(1)).unwrap();
        assert_eq!(j.pending_records(), 2);
        j.sync().unwrap();
        assert_eq!(j.pending_records(), 0);
        assert_eq!(Journal::load(&dir).unwrap().records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_without_flush_loses_only_the_batch() {
        let dir = tmpdir("group-drop");
        let cfg = JournalConfig {
            fsync_every: 0,
            compact_every: 0,
            group_max_records: 3,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        for i in 0..3 {
            j.append(&rec(i)).unwrap(); // full batch → flushed
        }
        j.append(&rec(3)).unwrap(); // buffered
        j.append(&rec(4)).unwrap(); // buffered
        drop(j); // simulated crash: Drop must NOT flush
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(
            replay.records.len(),
            3,
            "only the flushed prefix survives a crash"
        );
        assert_eq!(replay.truncated_bytes, 0, "no torn frame, a clean prefix");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_the_unflushed_batch() {
        let dir = tmpdir("group-compact");
        let cfg = JournalConfig {
            fsync_every: 0,
            compact_every: 0,
            group_max_records: 10,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        j.append(&rec(0)).unwrap();
        j.append(&rec(1)).unwrap();
        let snap = DaemonSnapshot {
            next_task: 7,
            ..DaemonSnapshot::default()
        };
        j.compact(&snap).unwrap();
        assert_eq!(j.pending_records(), 0);
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.snapshot.as_ref().unwrap().next_task, 7);
        assert!(
            replay.records.is_empty(),
            "snapshot supersedes the buffered records; they must not \
             resurface in the fresh WAL"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_loads_empty() {
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let replay = Journal::load(&dir).unwrap();
        assert!(replay.snapshot.is_none());
        assert!(replay.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- SharedJournal ------------------------------------------------------

    #[test]
    fn shared_journal_matches_journal_semantics() {
        let dir = tmpdir("shared-roundtrip");
        let j = SharedJournal::open(&dir, JournalConfig::default()).unwrap();
        for i in 0..5 {
            let out = j.append(&rec(i)).unwrap();
            assert!(out.flushed, "fsync_every=1 is write-through");
            assert!(out.fsynced);
        }
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_journal_group_commit_buffers_and_sync_drains() {
        let dir = tmpdir("shared-group");
        let cfg = JournalConfig {
            fsync_every: 4,
            compact_every: 0,
            group_max_records: 4,
            ..JournalConfig::default()
        };
        let j = SharedJournal::open(&dir, cfg).unwrap();
        for i in 0..3 {
            let out = j.append(&rec(i)).unwrap();
            assert!(!out.flushed);
        }
        assert_eq!(j.pending_records(), 3);
        assert_eq!(Journal::load(&dir).unwrap().records.len(), 0);
        let out = j.append(&rec(3)).unwrap();
        assert!(out.flushed && out.fsynced, "4th record trips the batch");
        assert_eq!(j.pending_records(), 0);
        j.append(&rec(4)).unwrap();
        assert_eq!(j.unsynced_appends(), 1);
        j.sync().unwrap();
        assert_eq!(j.unsynced_appends(), 0);
        assert_eq!(Journal::load(&dir).unwrap().records.len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_journal_concurrent_appends_all_land_intact() {
        let dir = tmpdir("shared-concurrent");
        let cfg = JournalConfig {
            fsync_every: 0, // keep the test off the fsync path for speed
            compact_every: 0,
            group_max_records: 7,
            ..JournalConfig::default()
        };
        let j = std::sync::Arc::new(SharedJournal::open(&dir, cfg).unwrap());
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let j = std::sync::Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        j.append(&rec(t * 1000 + i)).unwrap();
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        j.sync().unwrap();
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.records.len(), 400, "no record lost or torn");
        assert_eq!(replay.truncated_bytes, 0, "batches landed whole, in order");
        // Every thread's records appear in its own submission order.
        for t in 0..8u64 {
            let mine: Vec<u64> = replay
                .records
                .iter()
                .filter_map(|r| match r {
                    JournalRecord::TaskCancelled { id } if id / 1000 == t => Some(id % 1000),
                    _ => None,
                })
                .collect();
            assert_eq!(mine, (0..50).collect::<Vec<_>>(), "thread {t} order");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_journal_compact_excludes_stale_batches() {
        let dir = tmpdir("shared-compact");
        let cfg = JournalConfig {
            fsync_every: 0,
            compact_every: 0,
            group_max_records: 10,
            ..JournalConfig::default()
        };
        let j = SharedJournal::open(&dir, cfg).unwrap();
        j.append(&rec(0)).unwrap();
        j.append(&rec(1)).unwrap();
        let snap = DaemonSnapshot {
            next_task: 7,
            ..DaemonSnapshot::default()
        };
        j.compact(&snap).unwrap();
        assert_eq!(j.pending_records(), 0);
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.snapshot.as_ref().unwrap().next_task, 7);
        assert!(replay.records.is_empty());
        // appends after compaction land in the fresh WAL
        j.append(&rec(99)).unwrap();
        j.sync().unwrap();
        assert_eq!(Journal::load(&dir).unwrap().records, vec![rec(99)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deferred_append_parks_batch_and_next_writer_pays() {
        let dir = tmpdir("shared-deferred");
        let cfg = JournalConfig {
            fsync_every: 2,
            compact_every: 0,
            group_max_records: 2,
            ..JournalConfig::default()
        };
        let j = SharedJournal::open(&dir, cfg).unwrap();
        assert!(!j.append_deferred(&rec(0)).unwrap().flushed);
        let out = j.append_deferred(&rec(1)).unwrap();
        assert!(
            !out.flushed && !out.fsynced,
            "tripping append defers the batch instead of writing it"
        );
        assert_eq!(j.deferred_batches(), 1);
        assert_eq!(
            Journal::load(&dir).unwrap().records.len(),
            0,
            "nothing on disk yet"
        );
        // The next ordinary writer steals the parked batch before its own.
        j.append(&rec(2)).unwrap();
        j.append(&rec(3)).unwrap();
        assert_eq!(j.deferred_batches(), 0);
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(
            replay.records,
            vec![rec(0), rec(1), rec(2), rec(3)],
            "deferred batch lands before later batches, in append order"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_drains_deferred_batches() {
        let dir = tmpdir("shared-deferred-sync");
        let cfg = JournalConfig {
            fsync_every: 2,
            compact_every: 0,
            group_max_records: 2,
            ..JournalConfig::default()
        };
        let j = SharedJournal::open(&dir, cfg).unwrap();
        j.append_deferred(&rec(0)).unwrap();
        j.append_deferred(&rec(1)).unwrap();
        assert_eq!(j.deferred_batches(), 1);
        j.sync().unwrap();
        assert_eq!(j.deferred_batches(), 0);
        assert_eq!(Journal::load(&dir).unwrap().records, vec![rec(0), rec(1)]);
        // flush with an empty buffer must also drain parked batches
        j.append_deferred(&rec(2)).unwrap();
        j.append_deferred(&rec(3)).unwrap();
        assert_eq!(j.deferred_batches(), 1);
        j.flush().unwrap();
        assert_eq!(j.deferred_batches(), 0);
        assert_eq!(Journal::load(&dir).unwrap().records.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_through_config_never_defers() {
        let dir = tmpdir("shared-deferred-wt");
        // group_max_records=1 is an explicit per-append durability request:
        // the deferred entry point must degrade to ordinary write-through.
        let j = SharedJournal::open(&dir, JournalConfig::default()).unwrap();
        let out = j.append_deferred(&rec(0)).unwrap();
        assert!(out.flushed && out.fsynced);
        assert_eq!(j.deferred_batches(), 0);
        assert_eq!(Journal::load(&dir).unwrap().records, vec![rec(0)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_retires_deferred_tickets_without_deadlock() {
        let dir = tmpdir("shared-deferred-compact");
        let cfg = JournalConfig {
            fsync_every: 0,
            compact_every: 0,
            group_max_records: 2,
            ..JournalConfig::default()
        };
        let j = SharedJournal::open(&dir, cfg).unwrap();
        j.append_deferred(&rec(0)).unwrap();
        j.append_deferred(&rec(1)).unwrap();
        assert_eq!(
            j.deferred_batches(),
            1,
            "batch parked with its ticket issued"
        );
        // compact waits for every issued ticket; parked batches have no
        // writer, so compact itself must retire them or it deadlocks here.
        let snap = DaemonSnapshot {
            next_task: 9,
            ..DaemonSnapshot::default()
        };
        j.compact(&snap).unwrap();
        assert_eq!(j.deferred_batches(), 0);
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.snapshot.as_ref().unwrap().next_task, 9);
        assert!(
            replay.records.is_empty(),
            "snapshot covers the parked records"
        );
        // and the ticket sequence is intact: later appends still land
        j.append(&rec(2)).unwrap();
        j.sync().unwrap();
        assert_eq!(Journal::load(&dir).unwrap().records, vec![rec(2)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_outcome_reports_compaction_want() {
        let dir = tmpdir("outcome-compaction");
        let cfg = JournalConfig {
            fsync_every: 1,
            compact_every: 2,
            ..JournalConfig::default()
        };
        let j = SharedJournal::open(&dir, cfg).unwrap();
        assert!(!j.append(&rec(0)).unwrap().wants_compaction);
        assert!(
            j.append(&rec(1)).unwrap().wants_compaction,
            "outcome carries the policy bit so callers skip a second buffer lock"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- shipping ----------------------------------------------------------

    /// Ship every pending event from `j` into `f`, acking as `name`.
    fn pump(j: &SharedJournal, f: &mut FollowerReplica, name: &str) -> usize {
        let mut n = 0;
        for ev in j.ship_fetch(f.ack().applied_seq) {
            let ack = f.apply(&ev).unwrap();
            j.ship_ack(name, ack);
            n += 1;
        }
        n
    }

    #[test]
    fn shipped_batches_replicate_the_wal_byte_for_byte() {
        let dir = tmpdir("ship-batches");
        let fdir = tmpdir("ship-batches-follower");
        let j = SharedJournal::open(&dir, JournalConfig::default()).unwrap();
        j.enable_shipping().unwrap();
        let mut f = FollowerReplica::open(&fdir).unwrap();
        for i in 0..5 {
            j.append(&rec(i)).unwrap();
        }
        assert!(pump(&j, &mut f, "f0") >= 1);
        assert_eq!(
            std::fs::read(dir.join(WAL_FILE)).unwrap(),
            std::fs::read(fdir.join(WAL_FILE)).unwrap(),
            "follower WAL must be bit-identical to the leader's"
        );
        let replay = Journal::load(&fdir).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.records[3], rec(3));
        assert_eq!(j.ship_last_acked().unwrap(), f.ack());
        assert_eq!(j.ship_lag(), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&fdir);
    }

    #[test]
    fn compaction_ships_the_snapshot_and_follower_resyncs() {
        let dir = tmpdir("ship-snap");
        let fdir = tmpdir("ship-snap-follower");
        let j = SharedJournal::open(&dir, JournalConfig::default()).unwrap();
        j.enable_shipping().unwrap();
        let mut f = FollowerReplica::open(&fdir).unwrap();
        j.append(&rec(1)).unwrap();
        let snap = DaemonSnapshot {
            next_task: 42,
            ..DaemonSnapshot::default()
        };
        j.compact(&snap).unwrap();
        j.append(&rec(2)).unwrap();
        // The follower never saw the pre-compaction batch: the retained
        // window starts at the snapshot, and it re-bases on it.
        pump(&j, &mut f, "f0");
        let replay = Journal::load(&fdir).unwrap();
        assert_eq!(replay.snapshot.unwrap().next_task, 42);
        assert_eq!(replay.records, vec![rec(2)]);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&fdir);
    }

    #[test]
    fn follower_rejects_torn_reordered_and_misplaced_batches() {
        let dir = tmpdir("ship-reject");
        let fdir = tmpdir("ship-reject-follower");
        let j = SharedJournal::open(&dir, JournalConfig::default()).unwrap();
        j.enable_shipping().unwrap();
        let mut f = FollowerReplica::open(&fdir).unwrap();
        j.append(&rec(1)).unwrap();
        j.append(&rec(2)).unwrap();
        let events = j.ship_fetch(0);
        assert_eq!(events.len(), 2);

        // bit-flip: checksum rejects before anything is applied
        let ShipEvent::Batch(good) = events[0].clone() else {
            panic!("expected batch")
        };
        let mut torn = good.clone();
        torn.bytes[10] ^= 0x40;
        let err = f.apply(&ShipEvent::Batch(torn)).unwrap_err();
        assert_eq!(err.reason(), "checksum");

        // out of order: the second batch before the first is a sequence gap
        let err = f.apply(&events[1]).unwrap_err();
        assert_eq!(err.reason(), "sequence");

        // the valid event still applies after the rejections
        let ack = f.apply(&events[0]).unwrap();
        assert_eq!(ack.applied_seq, 1);

        // a replay of an already-applied batch is rejected too
        let err = f.apply(&events[0]).unwrap_err();
        assert_eq!(err.reason(), "sequence");

        // and a batch whose offset skips bytes is caught even if the
        // sequence looks right
        let ShipEvent::Batch(second) = events[1].clone() else {
            panic!("expected batch")
        };
        let mut skewed = second.clone();
        skewed.offset += 8;
        skewed.checksum = fnv1a32(&skewed.bytes);
        let err = f.apply(&ShipEvent::Batch(skewed)).unwrap_err();
        assert_eq!(err.reason(), "offset");

        let ack = f.apply(&events[1]).unwrap();
        assert_eq!(ack.applied_seq, 2, "clean retransmissions catch back up");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&fdir);
    }

    #[test]
    fn follower_resumes_from_its_ack_after_disconnect() {
        let dir = tmpdir("ship-resume");
        let fdir = tmpdir("ship-resume-follower");
        let j = SharedJournal::open(&dir, JournalConfig::default()).unwrap();
        j.enable_shipping().unwrap();
        {
            let mut f = FollowerReplica::open(&fdir).unwrap();
            j.append(&rec(1)).unwrap();
            pump(&j, &mut f, "f0");
        }
        // follower "disconnects"; the leader keeps appending
        j.append(&rec(2)).unwrap();
        j.append(&rec(3)).unwrap();
        // reconnect: the persisted cursor resumes exactly where it left off
        let mut f = FollowerReplica::open(&fdir).unwrap();
        assert_eq!(f.ack().applied_seq, 1);
        pump(&j, &mut f, "f0");
        let replay = Journal::load(&fdir).unwrap();
        assert_eq!(replay.records, vec![rec(1), rec(2), rec(3)]);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&fdir);
    }

    #[test]
    fn enable_shipping_bootstraps_existing_state() {
        let dir = tmpdir("ship-bootstrap");
        let fdir = tmpdir("ship-bootstrap-follower");
        {
            let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
            let snap = DaemonSnapshot {
                next_task: 7,
                ..DaemonSnapshot::default()
            };
            j.compact(&snap).unwrap();
            j.append(&rec(9)).unwrap();
        }
        let j = SharedJournal::open(&dir, JournalConfig::default()).unwrap();
        j.enable_shipping().unwrap();
        let mut f = FollowerReplica::open(&fdir).unwrap();
        pump(&j, &mut f, "f0");
        let replay = Journal::load(&fdir).unwrap();
        assert_eq!(replay.snapshot.unwrap().next_task, 7);
        assert_eq!(replay.records, vec![rec(9)]);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&fdir);
    }

    #[test]
    fn ship_lag_tracks_the_most_behind_follower() {
        let dir = tmpdir("ship-lag");
        let fa = tmpdir("ship-lag-a");
        let fb = tmpdir("ship-lag-b");
        let j = SharedJournal::open(&dir, JournalConfig::default()).unwrap();
        j.enable_shipping().unwrap();
        let mut a = FollowerReplica::open(&fa).unwrap();
        let mut b = FollowerReplica::open(&fb).unwrap();
        // register both retention slots up front: a's acks must not trim
        // events b still needs
        j.ship_ack("a", a.ack());
        j.ship_ack("b", b.ack());
        j.append(&rec(1)).unwrap();
        j.append(&rec(2)).unwrap();
        pump(&j, &mut a, "a");
        // b applies only the first event
        let events = j.ship_fetch(0);
        j.ship_ack("b", b.apply(&events[0]).unwrap());
        let (records, bytes) = j.ship_lag();
        assert_eq!(records, 1, "one batch not yet applied by the slowest");
        assert!(bytes > 0);
        assert_eq!(j.ship_last_acked().unwrap(), a.ack(), "bar is the best ack");
        for d in [&dir, &fa, &fb] {
            let _ = std::fs::remove_dir_all(d);
        }
    }
}
