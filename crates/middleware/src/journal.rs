//! Durable daemon state: write-ahead journal + compacted snapshots.
//!
//! The daemon is the long-lived multi-user service on the quantum access
//! node (paper §3.3–§3.5); if its state dies with the process, the
//! second-level scheduler is the least reliable component in the stack.
//! This module makes every state transition durable the way `slurmctld`
//! does with its StateSaveLocation: an append-only write-ahead log of
//! [`JournalRecord`]s plus periodic compacted [`DaemonSnapshot`]s.
//!
//! On-disk layout inside the journal directory:
//!
//! ```text
//! wal.log        length-prefixed, checksummed JSON records (append-only)
//! snapshot.json  last compacted full-state snapshot (atomic rename)
//! ```
//!
//! Each WAL record is framed as
//! `[len: u32 LE][fnv1a32(payload): u32 LE][payload: len JSON bytes]`, so a
//! torn tail (the crash happened mid-`write`) is detected by a short read or
//! a checksum mismatch and replay stops at the last intact record instead of
//! refusing to start. Recovery = load `snapshot.json` (if any), then replay
//! the WAL tail over it — see [`MiddlewareService::recover`].
//!
//! [`MiddlewareService::recover`]: crate::daemon::MiddlewareService::recover

use crate::session::{PriorityClass, Session};
use crate::taskqueue::QuantumTask;
use hpcqc_emulator::SampleResult;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// One durable state transition. Appended *after* the in-memory transition
/// succeeds; replay applies them in order over the latest snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A session was opened (the full session, so replay can restore it).
    SessionOpened { session: Session },
    /// A session was closed by its owner.
    SessionClosed { token: String },
    /// Sessions were expired by the idle TTL.
    SessionsExpired { tokens: Vec<String> },
    /// A task was admitted (queued, or completed instantly from the dev
    /// cache — in that case a `TaskCompleted` record follows immediately).
    TaskSubmitted {
        task: QuantumTask,
        idempotency_key: Option<String>,
        warnings: Vec<String>,
    },
    /// A task left the queue for the device. If no terminal/requeue record
    /// follows, the daemon died mid-dispatch and recovery requeues it.
    TaskDispatched { id: u64, resource: String, at: f64 },
    /// A preempted/sliced task went back to the queue with work remaining.
    TaskRequeued { id: u64 },
    /// An execution attempt failed and the task was requeued; `resource`
    /// joins the task's excluded set.
    TaskAttemptFailed {
        id: u64,
        resource: String,
        error: String,
    },
    /// Terminal: completed with a result. `at` carries the post-execution
    /// daemon clock so recovery does not rewind time.
    TaskCompleted {
        id: u64,
        result: SampleResult,
        at: f64,
    },
    /// Terminal: failed permanently (validation can't fail here — rejected
    /// tasks are never journaled — so this is the poison cap).
    TaskFailed { id: u64, error: String },
    /// Terminal: cancelled by the owner.
    TaskCancelled { id: u64 },
    /// Admin changed the device status (string form of `QpuStatus`).
    QpuStatusChanged { status: String },
    /// The daemon clock advanced (simulated idle time).
    ClockAdvanced { to: f64 },
}

/// Full daemon state at a point in time; written by compaction, loaded as
/// the replay base. Running tasks are normalized back to queued — a snapshot
/// never claims work that has not finished.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DaemonSnapshot {
    pub clock: f64,
    /// Task-id high-water mark: the next id to assign.
    pub next_task: u64,
    /// Session-token counter high-water mark (token uniqueness across
    /// restarts).
    pub session_counter: u64,
    pub sessions: Vec<Session>,
    /// Queued (and formerly running) tasks, arrival order.
    pub queued: Vec<QuantumTask>,
    pub completed: Vec<(u64, SampleResult)>,
    pub failed: Vec<(u64, String)>,
    pub cancelled: Vec<u64>,
    /// (task id, class, submitted_at) for every known task.
    pub task_meta: Vec<(u64, PriorityClass, f64)>,
    /// (task id, attempts, excluded resources) for tasks with failures.
    pub failures: Vec<(u64, u32, Vec<String>)>,
    /// Warning-level analyzer findings per task (job records).
    pub warnings: Vec<(u64, Vec<String>)>,
    /// Idempotency key → original task id.
    pub idempotency: Vec<(String, u64)>,
    /// Last admin-set device status, if any.
    pub qpu_status: Option<String>,
}

/// Journal tuning knobs (part of `DaemonConfig`).
///
/// Never persisted — lives only in `DaemonConfig` — so new knobs need no
/// on-disk compatibility story.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JournalConfig {
    /// fsync the WAL every N appended records (1 = every record, the
    /// default; 0 disables periodic fsync — drain/compaction still fsync).
    /// Also an **upper bound on the group-commit batch**: a batch never
    /// buffers more records than `fsync_every`, so the durability window
    /// promised by this knob is preserved under group commit.
    pub fsync_every: usize,
    /// Compact (snapshot + truncate the WAL) every N appended records
    /// (0 = never compact automatically).
    pub compact_every: usize,
    /// Group commit: buffer appends and flush them as one `write` + one
    /// `fsync` once this many records are batched. 1 (the default) is
    /// write-through — every append hits the OS immediately, exactly the
    /// pre-group-commit behavior. Capped by `fsync_every` when that is
    /// non-zero.
    pub group_max_records: usize,
    /// Group commit: flush early once the batch holds this many framed
    /// bytes (0 = no byte trigger).
    pub group_max_bytes: usize,
    /// Group commit: flush early once the oldest buffered record has waited
    /// this long, checked on the next append (0 = no age trigger). The
    /// dispatcher's idle path also flushes, so a quiescent daemon never
    /// strands a batch.
    pub group_max_age_secs: f64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            fsync_every: 1,
            compact_every: 256,
            group_max_records: 1,
            group_max_bytes: 0,
            group_max_age_secs: 0.0,
        }
    }
}

/// What one append did (for metrics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendOutcome {
    /// Framed bytes appended (header + payload).
    pub bytes: usize,
    /// Whether this append flushed the group-commit buffer to the OS.
    pub flushed: bool,
    /// Whether this append fsynced the WAL.
    pub fsynced: bool,
}

/// Result of reading a journal directory back.
#[derive(Debug, Default)]
pub struct Replay {
    /// The compaction base, when `snapshot.json` exists.
    pub snapshot: Option<DaemonSnapshot>,
    /// Intact WAL records after the snapshot, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of torn/corrupt tail discarded (0 on a clean shutdown).
    pub truncated_bytes: usize,
}

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.json";

/// FNV-1a 32-bit over the record payload; cheap, dependency-free, and more
/// than enough to reject a torn or bit-flipped record.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Append-only writer over a journal directory.
///
/// Appends go through a group-commit buffer: frames accumulate in memory
/// and are flushed to the WAL as one `write` (and at most one `fsync`) per
/// batch, per the [`JournalConfig`] policy. Dropping the journal does
/// **not** flush — an unflushed batch dies with the process, exactly like a
/// crash; callers that need durability call [`Journal::sync`] (drain and
/// compaction do).
pub struct Journal {
    dir: PathBuf,
    wal: File,
    cfg: JournalConfig,
    /// Framed records awaiting the next batch flush.
    buf: Vec<u8>,
    buf_records: usize,
    /// When the oldest buffered record was appended (age trigger).
    buf_oldest: Option<std::time::Instant>,
    appends_since_fsync: usize,
    records_since_compact: usize,
}

impl Journal {
    /// Open (creating if needed) the journal in `dir`. Appends go to the end
    /// of any existing WAL — call [`Journal::load`] first when recovering.
    pub fn open(dir: impl AsRef<Path>, cfg: JournalConfig) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(WAL_FILE))?;
        Ok(Journal {
            dir,
            wal,
            cfg,
            buf: Vec::new(),
            buf_records: 0,
            buf_oldest: None,
            appends_since_fsync: 0,
            records_since_compact: 0,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records buffered but not yet flushed to the OS.
    pub fn pending_records(&self) -> usize {
        self.buf_records
    }

    /// Appends since the last fsync (buffered or flushed-but-unsynced).
    pub fn unsynced_appends(&self) -> usize {
        self.appends_since_fsync
    }

    /// Effective batch size: `group_max_records`, capped by `fsync_every`
    /// (which bounds how many appends may be un-durable), never below 1.
    fn batch_limit(&self) -> usize {
        let g = self.cfg.group_max_records.max(1);
        if self.cfg.fsync_every > 0 {
            g.min(self.cfg.fsync_every)
        } else {
            g
        }
    }

    /// Append one record into the group-commit buffer; flush (one `write`,
    /// at most one `fsync`) when the batch policy says so.
    pub fn append(&mut self, rec: &JournalRecord) -> std::io::Result<AppendOutcome> {
        let payload = serde_json::to_string(rec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
            .into_bytes();
        let frame_len = payload.len() + 8;
        self.buf.reserve(frame_len);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&fnv1a32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.buf_records += 1;
        self.buf_oldest.get_or_insert_with(std::time::Instant::now);
        self.appends_since_fsync += 1;
        self.records_since_compact += 1;

        let age_tripped = self.cfg.group_max_age_secs > 0.0
            && self
                .buf_oldest
                .is_some_and(|t| t.elapsed().as_secs_f64() >= self.cfg.group_max_age_secs);
        let must_flush = self.buf_records >= self.batch_limit()
            || (self.cfg.group_max_bytes > 0 && self.buf.len() >= self.cfg.group_max_bytes)
            || age_tripped;
        let mut fsynced = false;
        if must_flush {
            self.flush()?;
            fsynced = self.cfg.fsync_every > 0 && self.appends_since_fsync >= self.cfg.fsync_every;
            if fsynced {
                self.wal.sync_data()?;
                self.appends_since_fsync = 0;
            }
        }
        Ok(AppendOutcome {
            bytes: frame_len,
            flushed: must_flush,
            fsynced,
        })
    }

    /// Write the buffered batch to the WAL (no fsync).
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.wal.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.buf_records = 0;
        self.buf_oldest = None;
        Ok(())
    }

    /// Flush any buffered batch and force the WAL to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.flush()?;
        self.wal.sync_data()?;
        self.appends_since_fsync = 0;
        Ok(())
    }

    /// Whether the compaction policy says it is time to snapshot.
    pub fn wants_compaction(&self) -> bool {
        self.cfg.compact_every > 0 && self.records_since_compact >= self.cfg.compact_every
    }

    /// Compact: atomically persist `snap` as the new replay base and
    /// truncate the WAL. Crash-safe — the snapshot is written to a temp file,
    /// fsynced, then renamed over the old one before the WAL is cut.
    pub fn compact(&mut self, snap: &DaemonSnapshot) -> std::io::Result<()> {
        let tmp = self.dir.join("snapshot.json.tmp");
        {
            let mut f = File::create(&tmp)?;
            let body = serde_json::to_string(snap)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
                .into_bytes();
            f.write_all(&body)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // the snapshot covers everything the WAL (and the unflushed batch)
        // said: drop the buffer and start a fresh log
        self.buf.clear();
        self.buf_records = 0;
        self.buf_oldest = None;
        self.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.dir.join(WAL_FILE))?;
        self.wal.sync_data()?;
        self.appends_since_fsync = 0;
        self.records_since_compact = 0;
        Ok(())
    }

    /// Read a journal directory back: snapshot (if any) plus every intact
    /// WAL record. A torn or corrupt tail is measured and discarded, never
    /// an error — crash recovery must always make it back up.
    pub fn load(dir: impl AsRef<Path>) -> std::io::Result<Replay> {
        let dir = dir.as_ref();
        let mut replay = Replay::default();
        let snap_path = dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            let body = std::fs::read(&snap_path)?;
            replay.snapshot = serde_json::from_slice(&body).ok();
        }
        let wal_path = dir.join(WAL_FILE);
        if !wal_path.exists() {
            return Ok(replay);
        }
        let mut buf = Vec::new();
        File::open(&wal_path)?.read_to_end(&mut buf)?;
        let mut pos = 0usize;
        while pos + 8 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let Some(end) = start.checked_add(len).filter(|&e| e <= buf.len()) else {
                break; // torn tail: frame header promises more than exists
            };
            let payload = &buf[start..end];
            if fnv1a32(payload) != crc {
                break; // corrupt record: stop at the last intact prefix
            }
            match serde_json::from_slice::<JournalRecord>(payload) {
                Ok(rec) => replay.records.push(rec),
                Err(_) => break, // checksummed but unparseable: same policy
            }
            pos = end;
        }
        replay.truncated_bytes = buf.len() - pos;
        Ok(replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/journal-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(id: u64) -> JournalRecord {
        JournalRecord::TaskCancelled { id }
    }

    #[test]
    fn append_and_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        for i in 0..5 {
            let out = j.append(&rec(i)).unwrap();
            assert!(out.bytes > 8);
            assert!(out.fsynced, "fsync_every=1 syncs each append");
        }
        j.append(&JournalRecord::ClockAdvanced { to: 12.5 })
            .unwrap();
        let replay = Journal::load(&dir).unwrap();
        assert!(replay.snapshot.is_none());
        assert_eq!(replay.records.len(), 6);
        assert_eq!(replay.records[2], rec(2));
        assert_eq!(replay.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = tmpdir("torn");
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        for i in 0..4 {
            j.append(&rec(i)).unwrap();
        }
        // simulate a crash mid-write: chop bytes off the last frame
        let wal = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.records.len(), 3, "last record torn away");
        assert!(replay.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_stops_replay_at_last_intact_prefix() {
        let dir = tmpdir("corrupt");
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        for i in 0..3 {
            j.append(&rec(i)).unwrap();
        }
        let wal = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        // flip a payload bit in the middle record
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&wal, &bytes).unwrap();
        let replay = Journal::load(&dir).unwrap();
        assert!(replay.records.len() < 3);
        assert!(replay.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_truncates_wal_and_persists_snapshot() {
        let dir = tmpdir("compact");
        let mut j = Journal::open(
            &dir,
            JournalConfig {
                fsync_every: 1,
                compact_every: 3,
                ..JournalConfig::default()
            },
        )
        .unwrap();
        assert!(!j.wants_compaction());
        for i in 0..3 {
            j.append(&rec(i)).unwrap();
        }
        assert!(j.wants_compaction());
        let snap = DaemonSnapshot {
            next_task: 42,
            cancelled: vec![0, 1, 2],
            ..DaemonSnapshot::default()
        };
        j.compact(&snap).unwrap();
        assert!(!j.wants_compaction());
        // appends after compaction land in the fresh WAL
        j.append(&rec(99)).unwrap();
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.snapshot.as_ref().unwrap().next_task, 42);
        assert_eq!(replay.records, vec![rec(99)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_buffers_until_batch_full() {
        let dir = tmpdir("group");
        let cfg = JournalConfig {
            fsync_every: 4,
            compact_every: 0,
            group_max_records: 4,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        for i in 0..3 {
            let out = j.append(&rec(i)).unwrap();
            assert!(!out.flushed, "batch not full yet");
            assert!(!out.fsynced);
        }
        assert_eq!(j.pending_records(), 3);
        // an unflushed batch is invisible to a reader (= lost on crash)
        assert_eq!(Journal::load(&dir).unwrap().records.len(), 0);
        let out = j.append(&rec(3)).unwrap();
        assert!(out.flushed, "4th record fills the batch");
        assert!(out.fsynced, "one fsync covers the whole batch");
        assert_eq!(j.pending_records(), 0);
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.records.len(), 4);
        assert_eq!(replay.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_every_caps_the_batch() {
        let dir = tmpdir("group-cap");
        let cfg = JournalConfig {
            fsync_every: 2,
            compact_every: 0,
            group_max_records: 100,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        assert!(!j.append(&rec(0)).unwrap().flushed);
        let out = j.append(&rec(1)).unwrap();
        assert!(out.flushed, "fsync_every bounds the batch at 2");
        assert!(out.fsynced);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_trigger_flushes_early() {
        let dir = tmpdir("group-bytes");
        let cfg = JournalConfig {
            fsync_every: 0,
            compact_every: 0,
            group_max_records: 1000,
            group_max_bytes: 1, // any record exceeds this
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        let out = j.append(&rec(0)).unwrap();
        assert!(out.flushed);
        assert!(!out.fsynced, "fsync_every=0 never fsyncs on append");
        assert_eq!(Journal::load(&dir).unwrap().records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_flushes_pending_batch() {
        let dir = tmpdir("group-sync");
        let cfg = JournalConfig {
            fsync_every: 0,
            compact_every: 0,
            group_max_records: 8,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        j.append(&rec(0)).unwrap();
        j.append(&rec(1)).unwrap();
        assert_eq!(j.pending_records(), 2);
        j.sync().unwrap();
        assert_eq!(j.pending_records(), 0);
        assert_eq!(Journal::load(&dir).unwrap().records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_without_flush_loses_only_the_batch() {
        let dir = tmpdir("group-drop");
        let cfg = JournalConfig {
            fsync_every: 0,
            compact_every: 0,
            group_max_records: 3,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        for i in 0..3 {
            j.append(&rec(i)).unwrap(); // full batch → flushed
        }
        j.append(&rec(3)).unwrap(); // buffered
        j.append(&rec(4)).unwrap(); // buffered
        drop(j); // simulated crash: Drop must NOT flush
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(
            replay.records.len(),
            3,
            "only the flushed prefix survives a crash"
        );
        assert_eq!(replay.truncated_bytes, 0, "no torn frame, a clean prefix");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_the_unflushed_batch() {
        let dir = tmpdir("group-compact");
        let cfg = JournalConfig {
            fsync_every: 0,
            compact_every: 0,
            group_max_records: 10,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, cfg).unwrap();
        j.append(&rec(0)).unwrap();
        j.append(&rec(1)).unwrap();
        let snap = DaemonSnapshot {
            next_task: 7,
            ..DaemonSnapshot::default()
        };
        j.compact(&snap).unwrap();
        assert_eq!(j.pending_records(), 0);
        let replay = Journal::load(&dir).unwrap();
        assert_eq!(replay.snapshot.as_ref().unwrap().next_task, 7);
        assert!(
            replay.records.is_empty(),
            "snapshot supersedes the buffered records; they must not \
             resurface in the fresh WAL"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_loads_empty() {
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let replay = Journal::load(&dir).unwrap();
        assert!(replay.snapshot.is_none());
        assert!(replay.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
