//! # hpcqc-middleware — the daemon between the batch scheduler and the QPU
//!
//! The paper's main architectural contribution (§3.3, Figure 2): a
//! lightweight service on the quantum access node adding a second level of
//! scheduling below Slurm.
//!
//! * [`SessionManager`] — multi-user sessions with bearer tokens and the
//!   three priority classes (production / test / development),
//! * [`TaskQueue`] — priority queue with aging and shot-boundary preemption
//!   semantics,
//! * [`MiddlewareService`] — the daemon core: validation against the live
//!   device spec, chunked execution through QRMI, admin + telemetry surface,
//! * [`journal`] — write-ahead journal + snapshots giving the daemon durable
//!   state: crash recovery, idempotent submission, graceful drain,
//! * [`http`] / [`server`] / [`rest`] — a real HTTP/1.1 REST API served by
//!   a readiness-driven (epoll) event loop with keep-alive, pipelining and
//!   connection backpressure,
//! * [`cosim`] — discrete-event co-simulation of the two-level architecture
//!   powering the Table-1 / Figure-2 experiments,
//! * [`gateway`] — consistent-hash front door over N replicated shards:
//!   readiness-probed routing, follower failover, aggregated views.

pub mod cosim;
pub mod daemon;
pub mod fairshare;
pub mod gateway;
pub mod http;
pub mod journal;
pub mod rest;
pub mod server;
pub mod session;
pub mod taskqueue;

pub use cosim::{
    hint_duty, AdmissionPolicy, Cosim, CosimConfig, CosimReport, HybridJob, Phase, QpuPolicy,
};
pub use daemon::{
    DaemonConfig, DaemonError, DaemonHealth, DaemonTaskStatus, DispatcherHandle, DrainReport,
    MiddlewareService, ReadinessReport, ReplicaRole, ShipperHandle,
};
pub use fairshare::FairshareTracker;
pub use gateway::{Gateway, GatewayConfig, ShardConfig};
pub use http::{http_request, HttpClient, Request, Response};
pub use journal::{
    DaemonSnapshot, FollowerReplica, Journal, JournalConfig, JournalRecord, ReplicaAck, ShipError,
    ShipEvent, ShippedBatch, ShippedSnapshot,
};
pub use server::{HttpServer, ServerConfig};
pub use session::{PriorityClass, Session, SessionError, SessionManager};
pub use taskqueue::{QuantumTask, QueueConfig, QueueError, TaskQueue};
