//! The daemon's priority queue of quantum tasks.
//!
//! The second level of scheduling (paper §3.3): tasks from many sessions
//! queue here for the single QPU behind the daemon. Ordering is by priority
//! class with **aging** (long-waiting low-class tasks eventually overtake)
//! so development jobs are never starved, and the paper's preemption model
//! is encoded per task: production tasks are batched (non-divisible);
//! test/development tasks run shot-by-shot and can be preempted at any shot
//! boundary ("non-production jobs configured with a low number of shots and
//! without batched submission").
//!
//! # Data structure
//!
//! The queue is indexed for control-plane throughput: a `HashMap` of task
//! bodies by id, per-`(class, user)` arrival buckets (`BTreeSet` ordered by
//! `(submitted_at, id)`), and a per-session counter. This makes `push`,
//! `remove`/cancel, and the session-quota check O(1)/O(log n), and
//! `peek`/`pop` O(buckets · log n) instead of a full O(n) rank scan.
//!
//! The indexed structure is *bit-for-bit* equivalent to a linear scan with
//! the effective-rank comparator (kept in [`reference`] as the oracle for
//! the differential property test). The argument: within one
//! `(class, user)` bucket, every task shares the same class rank and — at
//! any fixed `now` — the same fair-share penalty, so the effective rank is
//! monotone non-decreasing in `submitted_at` (aging subtracts
//! `(now − submitted_at)/aging_secs`, and the `max(0.0)` floor preserves
//! monotonicity; a NaN/±∞ `now` collapses every member of the bucket to the
//! *same* rank, which is even easier). Ties in rank break by
//! `(submitted_at, id)` — exactly the bucket's ordering key — so the bucket
//! head dominates its whole bucket under the full dispatch comparator, and
//! the global minimum is the best of the bucket heads. The comparator is a
//! strict total order (ids are unique), so the answer is independent of
//! scan order and identical to the reference implementation's `min_by`.

use crate::fairshare::FairshareTracker;
use crate::session::PriorityClass;
use hpcqc_program::ProgramIr;
use hpcqc_scheduler::PatternHint;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// A quantum task queued at the daemon.
///
/// The program body lives behind an [`Arc`]: queue snapshots, journal
/// compaction, and dispatch clone task *handles*, never program bodies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumTask {
    /// Daemon-assigned id.
    pub id: u64,
    /// Owning session token.
    pub session: String,
    /// Submitting user (denormalized for accounting).
    pub user: String,
    /// Priority class inherited from the session.
    pub class: PriorityClass,
    /// The program (shared, immutable — clones are pointer copies).
    pub ir: Arc<ProgramIr>,
    /// Table-1 pattern hint forwarded from the batch layer (§3.5).
    pub hint: PatternHint,
    /// Submission time on the daemon clock (s).
    pub submitted_at: f64,
}

impl QuantumTask {
    /// Whether this task runs as one indivisible batch on the QPU.
    /// Production batches; lower classes submit shot-by-shot and are
    /// preemptible at shot boundaries.
    pub fn batched(&self) -> bool {
        self.class == PriorityClass::Production
    }
}

/// Queue configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// A waiting task's effective rank improves by one class per
    /// `aging_secs` of waiting (0 disables aging).
    pub aging_secs: f64,
    /// Cap on queued tasks per session (0 = unlimited).
    pub max_tasks_per_session: usize,
    /// Fair-share penalty weight: a user at saturated recent usage is
    /// demoted by up to this many class steps within their class
    /// (0 disables; keep < 1 so fair-share never overrides class priority).
    pub fairshare_weight: f64,
    /// Usage scale (device seconds) at which the fair-share penalty reaches
    /// half its weight.
    pub fairshare_scale_secs: f64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            aging_secs: 3600.0,
            max_tasks_per_session: 0,
            fairshare_weight: 0.9,
            fairshare_scale_secs: 600.0,
        }
    }
}

/// Reasons a push can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueError {
    SessionQuotaExceeded {
        session: String,
        limit: usize,
    },
    /// `submitted_at` is NaN or infinite; admitting it would corrupt the
    /// dispatch order for every other queued task.
    NonFiniteTimestamp {
        id: u64,
    },
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::SessionQuotaExceeded { session, limit } => {
                write!(f, "session {session} exceeds its queue quota of {limit}")
            }
            QueueError::NonFiniteTimestamp { id } => {
                write!(f, "task {id} has a non-finite submission timestamp")
            }
        }
    }
}

impl std::error::Error for QueueError {}

/// Arrival order within one `(class, user)` bucket: `(submitted_at, id)`
/// under `total_cmp` — the same tie-break the dispatch comparator uses.
/// `Eq`/`Ord` are consistent by construction (`eq` delegates to `cmp`), and
/// `submitted_at` is always finite here (push/restore validate it).
#[derive(Debug, Clone, Copy)]
struct ArrivalKey {
    at: f64,
    id: u64,
}

impl PartialEq for ArrivalKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for ArrivalKey {}
impl PartialOrd for ArrivalKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ArrivalKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.total_cmp(&other.at).then(self.id.cmp(&other.id))
    }
}

/// Memoized dispatch order for [`TaskQueue::position`]: valid for one
/// (mutation epoch, `now`) pair, so a burst of status polls between
/// mutations costs one sort total instead of one sort each.
#[derive(Debug, Default)]
struct OrderCache {
    epoch: u64,
    now_bits: u64,
    position: HashMap<u64, usize>,
}

/// Memoized fair-share penalties: valid for one (tracker generation, `now`)
/// pair. `best_id` compares every bucket head, and each comparison used to
/// take the tracker lock twice — ~100 cross-thread lock acquisitions per
/// pop, all *while holding the queue lock* (the lock audit measured 3.7M
/// tracker acquisitions for 34k pops, inflating queue hold times). One
/// bulk [`FairshareTracker::normalized_snapshot`] per dispatch decision
/// replaces them, and is also *more* consistent: a charge landing mid-`pop`
/// can no longer give the comparator two different penalties for one user.
#[derive(Debug, Default)]
struct FairCache {
    generation: u64,
    now_bits: u64,
    norm: HashMap<String, f64>,
}

/// Priority queue with aging and optional fair-share, indexed by task id,
/// session, and `(class, user)` arrival bucket.
#[derive(Default)]
pub struct TaskQueue {
    /// Task bodies by id.
    tasks: HashMap<u64, QuantumTask>,
    /// Arrival-ordered ids per `(class, user)`.
    buckets: HashMap<(PriorityClass, String), BTreeSet<ArrivalKey>>,
    /// Queued-task count per session (quota checks are O(1)).
    session_counts: HashMap<String, usize>,
    /// Queued production tasks (preemption checks are O(1)).
    production_count: usize,
    /// Bumped on every mutation; invalidates `order_cache`.
    epoch: u64,
    order_cache: OrderCache,
    /// Interior mutability because the read-only dispatch path
    /// (`peek`/`best_id`) fills it; the queue lives under the daemon's
    /// queue mutex, so there is no concurrent borrow to conflict with.
    fair_cache: std::cell::RefCell<Option<FairCache>>,
    cfg: QueueConfig,
    fairshare: Option<FairshareTracker>,
}

impl TaskQueue {
    pub fn new(cfg: QueueConfig) -> Self {
        TaskQueue {
            cfg,
            ..TaskQueue::default()
        }
    }

    /// Attach a fair-share tracker (shared with the component that charges
    /// usage — the daemon's execution path).
    pub fn with_fairshare(mut self, tracker: FairshareTracker) -> Self {
        self.fairshare = Some(tracker);
        self
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Queued tasks held by `session` (the quota counter).
    pub fn session_depth(&self, session: &str) -> usize {
        self.session_counts.get(session).copied().unwrap_or(0)
    }

    fn insert_indexed(&mut self, task: QuantumTask) {
        self.epoch += 1;
        let key = ArrivalKey {
            at: task.submitted_at,
            id: task.id,
        };
        self.buckets
            .entry((task.class, task.user.clone()))
            .or_default()
            .insert(key);
        *self.session_counts.entry(task.session.clone()).or_insert(0) += 1;
        if task.class == PriorityClass::Production {
            self.production_count += 1;
        }
        self.tasks.insert(task.id, task);
    }

    /// Queue a task.
    pub fn push(&mut self, task: QuantumTask) -> Result<(), QueueError> {
        if !task.submitted_at.is_finite() {
            return Err(QueueError::NonFiniteTimestamp { id: task.id });
        }
        if self.cfg.max_tasks_per_session > 0
            && self.session_depth(&task.session) >= self.cfg.max_tasks_per_session
        {
            return Err(QueueError::SessionQuotaExceeded {
                session: task.session.clone(),
                limit: self.cfg.max_tasks_per_session,
            });
        }
        self.insert_indexed(task);
        Ok(())
    }

    /// Reinsert a task restored from the journal. The per-session quota is
    /// *not* re-checked — the task was admitted before the restart and
    /// dropping it now would violate durability — but timestamps are still
    /// validated so a corrupt journal cannot poison the dispatch order.
    pub fn restore(&mut self, task: QuantumTask) -> Result<(), QueueError> {
        if !task.submitted_at.is_finite() {
            return Err(QueueError::NonFiniteTimestamp { id: task.id });
        }
        if self.tasks.contains_key(&task.id) {
            return Ok(()); // duplicate snapshot/WAL entry: already queued
        }
        self.insert_indexed(task);
        Ok(())
    }

    /// Effective rank at time `now`: class rank, minus one unit per
    /// `aging_secs` waited (floored at the production rank), plus the
    /// fair-share penalty of the submitting user. Lower is better.
    fn effective_rank(&self, t: &QuantumTask, now: f64) -> f64 {
        let mut rank = t.class.rank() as f64;
        if self.cfg.aging_secs > 0.0 {
            let aged = (now - t.submitted_at) / self.cfg.aging_secs;
            rank = (rank - aged).max(0.0);
        }
        if let Some(f) = &self.fairshare {
            if self.cfg.fairshare_weight > 0.0 {
                rank += self.cfg.fairshare_weight * self.fair_penalty(f, &t.user, now);
            }
        }
        rank
    }

    /// Normalized fair-share usage of `user`, via the memoized snapshot —
    /// identical values to `f.normalized_usage(user, ..)` (see
    /// [`FairshareTracker::normalized_snapshot`]), without taking the
    /// tracker lock on every comparison.
    fn fair_penalty(&self, f: &FairshareTracker, user: &str, now: f64) -> f64 {
        let generation = f.generation();
        let mut cache = self.fair_cache.borrow_mut();
        let valid = cache
            .as_ref()
            .is_some_and(|c| c.generation == generation && c.now_bits == now.to_bits());
        if !valid {
            *cache = Some(FairCache {
                generation,
                now_bits: now.to_bits(),
                norm: f.normalized_snapshot(self.cfg.fairshare_scale_secs, now),
            });
        }
        cache
            .as_ref()
            .expect("cache filled above")
            .norm
            .get(user)
            .copied()
            .unwrap_or(0.0)
    }

    /// The full dispatch comparator: effective rank, then submission time,
    /// then id. A strict total order — ids are unique and `total_cmp` never
    /// panics, so even a corrupted clock merely mis-orders, never crashes.
    fn dispatch_cmp(&self, a: &QuantumTask, b: &QuantumTask, now: f64) -> Ordering {
        self.effective_rank(a, now)
            .total_cmp(&self.effective_rank(b, now))
            .then(a.submitted_at.total_cmp(&b.submitted_at))
            .then(a.id.cmp(&b.id))
    }

    /// Id of the task that would dispatch next at `now`: the best bucket
    /// head (each head dominates its bucket — see the module docs).
    fn best_id(&self, now: f64) -> Option<u64> {
        let mut best: Option<&QuantumTask> = None;
        for heads in self.buckets.values() {
            let Some(head) = heads.first() else { continue };
            let t = &self.tasks[&head.id];
            best = match best {
                None => Some(t),
                Some(b) if self.dispatch_cmp(t, b, now) == Ordering::Less => Some(t),
                keep => keep,
            };
        }
        best.map(|t| t.id)
    }

    /// Peek the task that would run next at time `now`.
    pub fn peek(&self, now: f64) -> Option<&QuantumTask> {
        self.best_id(now).map(|id| &self.tasks[&id])
    }

    /// Remove a task from every index and return its body.
    fn take(&mut self, id: u64) -> Option<QuantumTask> {
        let task = self.tasks.remove(&id)?;
        self.epoch += 1;
        let bucket_key = (task.class, task.user.clone());
        if let Some(heads) = self.buckets.get_mut(&bucket_key) {
            heads.remove(&ArrivalKey {
                at: task.submitted_at,
                id,
            });
            if heads.is_empty() {
                self.buckets.remove(&bucket_key);
            }
        }
        if let Some(n) = self.session_counts.get_mut(&task.session) {
            *n -= 1;
            if *n == 0 {
                self.session_counts.remove(&task.session);
            }
        }
        if task.class == PriorityClass::Production {
            self.production_count -= 1;
        }
        Some(task)
    }

    /// Pop the next task at time `now`.
    pub fn pop(&mut self, now: f64) -> Option<QuantumTask> {
        let id = self.best_id(now)?;
        self.take(id)
    }

    /// Pop up to `max` tasks in dispatch order at `now` — the batched drain
    /// used by the dispatcher so one lock acquisition can claim a whole
    /// batch instead of relocking per task.
    pub fn pop_batch(&mut self, now: f64, max: usize) -> Vec<QuantumTask> {
        let mut out = Vec::with_capacity(max.min(self.len()));
        while out.len() < max {
            match self.pop(now) {
                Some(t) => out.push(t),
                None => break,
            }
        }
        out
    }

    /// Remove a specific queued task (cancellation). O(log n).
    pub fn remove(&mut self, id: u64) -> Option<QuantumTask> {
        self.take(id)
    }

    /// A queued task by id (O(1)).
    pub fn get(&self, id: u64) -> Option<&QuantumTask> {
        self.tasks.get(&id)
    }

    /// Dispatch-order position of task `id` at `now`, or `None` when it is
    /// not queued. The order is memoized per (mutation, `now`) pair, so a
    /// burst of status polls costs one O(n log n) sort, not one each.
    pub fn position(&mut self, id: u64, now: f64) -> Option<usize> {
        if !self.tasks.contains_key(&id) {
            return None;
        }
        if self.order_cache.epoch != self.epoch || self.order_cache.now_bits != now.to_bits() {
            let mut order: Vec<u64> = self.tasks.keys().copied().collect();
            order.sort_by(|&a, &b| self.dispatch_cmp(&self.tasks[&a], &self.tasks[&b], now));
            self.order_cache = OrderCache {
                epoch: self.epoch,
                now_bits: now.to_bits(),
                position: order.into_iter().zip(0usize..).collect(),
            };
        }
        self.order_cache.position.get(&id).copied()
    }

    /// Queued tasks in **arbitrary** order — used by snapshot compaction,
    /// which persists the raw set and sorts by arrival itself.
    pub fn iter(&self) -> impl Iterator<Item = &QuantumTask> {
        self.tasks.values()
    }

    /// Does the queue hold a production task that should preempt a running
    /// task of class `running`? True only when a production task is queued
    /// and the running class is lower (the paper's initial implementation:
    /// only production preempts).
    ///
    /// The production count covers the whole queue, not just the dispatch
    /// head: aging can float an old development task to the head while a
    /// production task waits behind it, and that production task must still
    /// preempt.
    pub fn should_preempt(&self, running: PriorityClass, _now: f64) -> bool {
        running != PriorityClass::Production && self.production_count > 0
    }

    /// Snapshot of queued tasks in dispatch order at `now`.
    pub fn snapshot(&self, now: f64) -> Vec<&QuantumTask> {
        let mut v: Vec<&QuantumTask> = self.tasks.values().collect();
        v.sort_by(|a, b| self.dispatch_cmp(a, b, now));
        v
    }
}

/// The original linear-scan queue, kept verbatim as the semantic oracle for
/// the differential property test (`tests/properties.rs`): the indexed
/// [`TaskQueue`] must produce identical pop order, quota errors, and
/// fair-share demotions over arbitrary interleavings and clocks.
pub mod reference {
    use super::{FairshareTracker, PriorityClass, QuantumTask, QueueConfig, QueueError};

    /// Linear-scan priority queue with aging and optional fair-share.
    #[derive(Default)]
    pub struct ReferenceTaskQueue {
        tasks: Vec<QuantumTask>,
        cfg: QueueConfig,
        fairshare: Option<FairshareTracker>,
    }

    impl ReferenceTaskQueue {
        pub fn new(cfg: QueueConfig) -> Self {
            ReferenceTaskQueue {
                tasks: Vec::new(),
                cfg,
                fairshare: None,
            }
        }

        pub fn with_fairshare(mut self, tracker: FairshareTracker) -> Self {
            self.fairshare = Some(tracker);
            self
        }

        pub fn len(&self) -> usize {
            self.tasks.len()
        }

        pub fn is_empty(&self) -> bool {
            self.tasks.is_empty()
        }

        pub fn push(&mut self, task: QuantumTask) -> Result<(), QueueError> {
            if !task.submitted_at.is_finite() {
                return Err(QueueError::NonFiniteTimestamp { id: task.id });
            }
            if self.cfg.max_tasks_per_session > 0 {
                let held = self
                    .tasks
                    .iter()
                    .filter(|t| t.session == task.session)
                    .count();
                if held >= self.cfg.max_tasks_per_session {
                    return Err(QueueError::SessionQuotaExceeded {
                        session: task.session.clone(),
                        limit: self.cfg.max_tasks_per_session,
                    });
                }
            }
            self.tasks.push(task);
            Ok(())
        }

        fn effective_rank(&self, t: &QuantumTask, now: f64) -> f64 {
            let mut rank = t.class.rank() as f64;
            if self.cfg.aging_secs > 0.0 {
                let aged = (now - t.submitted_at) / self.cfg.aging_secs;
                rank = (rank - aged).max(0.0);
            }
            if let Some(f) = &self.fairshare {
                if self.cfg.fairshare_weight > 0.0 {
                    rank += self.cfg.fairshare_weight
                        * f.normalized_usage(&t.user, self.cfg.fairshare_scale_secs, now);
                }
            }
            rank
        }

        pub fn peek(&self, now: f64) -> Option<&QuantumTask> {
            self.tasks.iter().min_by(|a, b| {
                self.effective_rank(a, now)
                    .total_cmp(&self.effective_rank(b, now))
                    .then(a.submitted_at.total_cmp(&b.submitted_at))
                    .then(a.id.cmp(&b.id))
            })
        }

        pub fn pop(&mut self, now: f64) -> Option<QuantumTask> {
            let id = self.peek(now)?.id;
            let idx = self
                .tasks
                .iter()
                .position(|t| t.id == id)
                .expect("peeked task exists");
            Some(self.tasks.remove(idx))
        }

        pub fn remove(&mut self, id: u64) -> Option<QuantumTask> {
            let idx = self.tasks.iter().position(|t| t.id == id)?;
            Some(self.tasks.remove(idx))
        }

        pub fn should_preempt(&self, running: PriorityClass, _now: f64) -> bool {
            running != PriorityClass::Production
                && self
                    .tasks
                    .iter()
                    .any(|t| t.class == PriorityClass::Production)
        }

        pub fn snapshot(&self, now: f64) -> Vec<&QuantumTask> {
            let mut v: Vec<&QuantumTask> = self.tasks.iter().collect();
            v.sort_by(|a, b| {
                self.effective_rank(a, now)
                    .total_cmp(&self.effective_rank(b, now))
                    .then(a.submitted_at.total_cmp(&b.submitted_at))
                    .then(a.id.cmp(&b.id))
            });
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};

    fn ir() -> Arc<ProgramIr> {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        Arc::new(ProgramIr::new(b.build().unwrap(), 100, "test"))
    }

    fn task(id: u64, class: PriorityClass, at: f64) -> QuantumTask {
        QuantumTask {
            id,
            session: format!("sess-{id}"),
            user: "u".into(),
            class,
            ir: ir(),
            hint: PatternHint::None,
            submitted_at: at,
        }
    }

    #[test]
    fn class_order_dominates_fresh_queue() {
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Test, 1.0)).unwrap();
        q.push(task(3, PriorityClass::Production, 2.0)).unwrap();
        assert_eq!(q.pop(3.0).unwrap().id, 3);
        assert_eq!(q.pop(3.0).unwrap().id, 2);
        assert_eq!(q.pop(3.0).unwrap().id, 1);
        assert!(q.pop(3.0).is_none());
    }

    #[test]
    fn fifo_within_class() {
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Test, 5.0)).unwrap();
        q.push(task(2, PriorityClass::Test, 1.0)).unwrap();
        assert_eq!(q.pop(6.0).unwrap().id, 2, "earlier submission first");
    }

    #[test]
    fn aging_promotes_starved_dev_task() {
        let cfg = QueueConfig {
            aging_secs: 100.0,
            max_tasks_per_session: 0,
            ..QueueConfig::default()
        };
        let mut q = TaskQueue::new(cfg);
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Production, 199.0)).unwrap();
        // at t=199: dev rank = 2 - 1.99 = 0.01, prod = 0 → prod first
        assert_eq!(q.peek(199.0).unwrap().id, 2);
        // at t=250: dev rank = max(0, 2-2.5)=0 ties prod, earlier submit wins
        assert_eq!(q.peek(250.0).unwrap().id, 1, "aged dev task overtakes");
    }

    #[test]
    fn aging_disabled_keeps_strict_classes() {
        let cfg = QueueConfig {
            aging_secs: 0.0,
            max_tasks_per_session: 0,
            ..QueueConfig::default()
        };
        let mut q = TaskQueue::new(cfg);
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Production, 1e9)).unwrap();
        assert_eq!(q.peek(1e9).unwrap().id, 2);
    }

    #[test]
    fn session_quota_enforced() {
        let cfg = QueueConfig {
            aging_secs: 0.0,
            max_tasks_per_session: 2,
            ..QueueConfig::default()
        };
        let mut q = TaskQueue::new(cfg);
        let mut t1 = task(1, PriorityClass::Test, 0.0);
        let mut t2 = task(2, PriorityClass::Test, 0.0);
        let mut t3 = task(3, PriorityClass::Test, 0.0);
        t1.session = "s".into();
        t2.session = "s".into();
        t3.session = "s".into();
        q.push(t1).unwrap();
        q.push(t2).unwrap();
        assert!(matches!(
            q.push(t3),
            Err(QueueError::SessionQuotaExceeded { limit: 2, .. })
        ));
    }

    #[test]
    fn quota_slot_freed_by_pop_and_remove() {
        let cfg = QueueConfig {
            max_tasks_per_session: 1,
            ..QueueConfig::default()
        };
        let mut q = TaskQueue::new(cfg);
        let mut a = task(1, PriorityClass::Test, 0.0);
        let mut b = task(2, PriorityClass::Test, 1.0);
        a.session = "s".into();
        b.session = "s".into();
        q.push(a.clone()).unwrap();
        assert!(q.push(b.clone()).is_err());
        assert_eq!(q.session_depth("s"), 1);
        q.remove(1).unwrap();
        assert_eq!(q.session_depth("s"), 0);
        q.push(b).unwrap();
        q.pop(2.0).unwrap();
        q.push(a).unwrap();
    }

    #[test]
    fn remove_cancels_queued_task() {
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Test, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Test, 0.0)).unwrap();
        assert_eq!(q.remove(1).unwrap().id, 1);
        assert!(q.remove(1).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn preemption_only_for_production_over_lower() {
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Production, 0.0)).unwrap();
        assert!(q.should_preempt(PriorityClass::Development, 1.0));
        assert!(q.should_preempt(PriorityClass::Test, 1.0));
        assert!(!q.should_preempt(PriorityClass::Production, 1.0));
        let mut q2 = TaskQueue::new(QueueConfig::default());
        q2.push(task(1, PriorityClass::Test, 0.0)).unwrap();
        assert!(
            !q2.should_preempt(PriorityClass::Development, 1.0),
            "test does not preempt"
        );
        let q3 = TaskQueue::new(QueueConfig::default());
        assert!(
            !q3.should_preempt(PriorityClass::Development, 1.0),
            "empty queue"
        );
    }

    #[test]
    fn preemption_seen_past_aged_dev_task_at_head() {
        // Regression: aging floats an old development task to the dispatch
        // head (rank floored at 0 ties production, earlier submission wins).
        // A head-only check then reports "nothing to preempt for" even
        // though a production task is waiting right behind it.
        let cfg = QueueConfig {
            aging_secs: 100.0,
            ..QueueConfig::default()
        };
        let mut q = TaskQueue::new(cfg);
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Production, 250.0)).unwrap();
        assert_eq!(q.peek(250.0).unwrap().id, 1, "aged dev task holds the head");
        assert!(
            q.should_preempt(PriorityClass::Test, 250.0),
            "queued production task must preempt even when masked by an aged dev head"
        );
        assert!(!q.should_preempt(PriorityClass::Production, 250.0));
    }

    #[test]
    fn non_finite_timestamps_rejected_at_push() {
        let mut q = TaskQueue::new(QueueConfig::default());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                q.push(task(1, PriorityClass::Test, bad)),
                Err(QueueError::NonFiniteTimestamp { id: 1 })
            );
        }
        assert!(q.is_empty());
    }

    #[test]
    fn queue_ops_survive_non_finite_now() {
        // even with a corrupted clock, ordering queries must not panic
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Production, 1.0)).unwrap();
        for now in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(q.peek(now).is_some());
            assert_eq!(q.snapshot(now).len(), 2);
            assert!(q.position(1, now).is_some());
        }
        assert!(q.pop(f64::NAN).is_some());
    }

    #[test]
    fn batching_follows_class() {
        assert!(task(1, PriorityClass::Production, 0.0).batched());
        assert!(!task(1, PriorityClass::Test, 0.0).batched());
        assert!(!task(1, PriorityClass::Development, 0.0).batched());
    }

    #[test]
    fn snapshot_is_dispatch_order() {
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Production, 0.0)).unwrap();
        q.push(task(3, PriorityClass::Test, 0.0)).unwrap();
        let snap: Vec<u64> = q.snapshot(1.0).iter().map(|t| t.id).collect();
        assert_eq!(snap, vec![2, 3, 1]);
    }

    #[test]
    fn position_tracks_dispatch_order_and_mutations() {
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Production, 0.0)).unwrap();
        q.push(task(3, PriorityClass::Test, 0.0)).unwrap();
        assert_eq!(q.position(2, 1.0), Some(0));
        assert_eq!(q.position(3, 1.0), Some(1));
        assert_eq!(q.position(1, 1.0), Some(2));
        assert_eq!(q.position(99, 1.0), None);
        // cached order is invalidated by a mutation
        q.remove(2).unwrap();
        assert_eq!(q.position(3, 1.0), Some(0));
        assert_eq!(q.position(1, 1.0), Some(1));
        assert_eq!(q.position(2, 1.0), None);
    }

    #[test]
    fn pop_batch_matches_sequential_pops() {
        let mut a = TaskQueue::new(QueueConfig::default());
        let mut b = TaskQueue::new(QueueConfig::default());
        for (i, class) in [
            PriorityClass::Development,
            PriorityClass::Production,
            PriorityClass::Test,
            PriorityClass::Production,
        ]
        .into_iter()
        .enumerate()
        {
            a.push(task(i as u64, class, i as f64)).unwrap();
            b.push(task(i as u64, class, i as f64)).unwrap();
        }
        let batch: Vec<u64> = a.pop_batch(10.0, 3).into_iter().map(|t| t.id).collect();
        let seq: Vec<u64> = (0..3).map(|_| b.pop(10.0).unwrap().id).collect();
        assert_eq!(batch, seq);
        assert_eq!(a.len(), 1);
        assert_eq!(a.pop_batch(10.0, 5).len(), 1, "drains the remainder");
        assert!(a.pop_batch(10.0, 5).is_empty());
    }

    #[test]
    fn restore_is_idempotent_per_id() {
        let mut q = TaskQueue::new(QueueConfig::default());
        let t = task(7, PriorityClass::Test, 1.0);
        q.restore(t.clone()).unwrap();
        q.restore(t).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.session_depth("sess-7"), 1, "no double count");
    }
}
