//! The daemon's priority queue of quantum tasks.
//!
//! The second level of scheduling (paper §3.3): tasks from many sessions
//! queue here for the single QPU behind the daemon. Ordering is by priority
//! class with **aging** (long-waiting low-class tasks eventually overtake)
//! so development jobs are never starved, and the paper's preemption model
//! is encoded per task: production tasks are batched (non-divisible);
//! test/development tasks run shot-by-shot and can be preempted at any shot
//! boundary ("non-production jobs configured with a low number of shots and
//! without batched submission").

use crate::fairshare::FairshareTracker;
use crate::session::PriorityClass;
use hpcqc_program::ProgramIr;
use hpcqc_scheduler::PatternHint;
use serde::{Deserialize, Serialize};

/// A quantum task queued at the daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumTask {
    /// Daemon-assigned id.
    pub id: u64,
    /// Owning session token.
    pub session: String,
    /// Submitting user (denormalized for accounting).
    pub user: String,
    /// Priority class inherited from the session.
    pub class: PriorityClass,
    /// The program.
    pub ir: ProgramIr,
    /// Table-1 pattern hint forwarded from the batch layer (§3.5).
    pub hint: PatternHint,
    /// Submission time on the daemon clock (s).
    pub submitted_at: f64,
}

impl QuantumTask {
    /// Whether this task runs as one indivisible batch on the QPU.
    /// Production batches; lower classes submit shot-by-shot and are
    /// preemptible at shot boundaries.
    pub fn batched(&self) -> bool {
        self.class == PriorityClass::Production
    }
}

/// Queue configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// A waiting task's effective rank improves by one class per
    /// `aging_secs` of waiting (0 disables aging).
    pub aging_secs: f64,
    /// Cap on queued tasks per session (0 = unlimited).
    pub max_tasks_per_session: usize,
    /// Fair-share penalty weight: a user at saturated recent usage is
    /// demoted by up to this many class steps within their class
    /// (0 disables; keep < 1 so fair-share never overrides class priority).
    pub fairshare_weight: f64,
    /// Usage scale (device seconds) at which the fair-share penalty reaches
    /// half its weight.
    pub fairshare_scale_secs: f64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            aging_secs: 3600.0,
            max_tasks_per_session: 0,
            fairshare_weight: 0.9,
            fairshare_scale_secs: 600.0,
        }
    }
}

/// Reasons a push can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueError {
    SessionQuotaExceeded {
        session: String,
        limit: usize,
    },
    /// `submitted_at` is NaN or infinite; admitting it would corrupt the
    /// dispatch order for every other queued task.
    NonFiniteTimestamp {
        id: u64,
    },
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::SessionQuotaExceeded { session, limit } => {
                write!(f, "session {session} exceeds its queue quota of {limit}")
            }
            QueueError::NonFiniteTimestamp { id } => {
                write!(f, "task {id} has a non-finite submission timestamp")
            }
        }
    }
}

impl std::error::Error for QueueError {}

/// Priority queue with aging and optional fair-share.
#[derive(Default)]
pub struct TaskQueue {
    tasks: Vec<QuantumTask>,
    cfg: QueueConfig,
    fairshare: Option<FairshareTracker>,
}

impl TaskQueue {
    pub fn new(cfg: QueueConfig) -> Self {
        TaskQueue {
            tasks: Vec::new(),
            cfg,
            fairshare: None,
        }
    }

    /// Attach a fair-share tracker (shared with the component that charges
    /// usage — the daemon's execution path).
    pub fn with_fairshare(mut self, tracker: FairshareTracker) -> Self {
        self.fairshare = Some(tracker);
        self
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Queue a task.
    pub fn push(&mut self, task: QuantumTask) -> Result<(), QueueError> {
        if !task.submitted_at.is_finite() {
            return Err(QueueError::NonFiniteTimestamp { id: task.id });
        }
        if self.cfg.max_tasks_per_session > 0 {
            let held = self
                .tasks
                .iter()
                .filter(|t| t.session == task.session)
                .count();
            if held >= self.cfg.max_tasks_per_session {
                return Err(QueueError::SessionQuotaExceeded {
                    session: task.session.clone(),
                    limit: self.cfg.max_tasks_per_session,
                });
            }
        }
        self.tasks.push(task);
        Ok(())
    }

    /// Effective rank at time `now`: class rank, minus one unit per
    /// `aging_secs` waited (floored at the production rank), plus the
    /// fair-share penalty of the submitting user. Lower is better.
    fn effective_rank(&self, t: &QuantumTask, now: f64) -> f64 {
        let mut rank = t.class.rank() as f64;
        if self.cfg.aging_secs > 0.0 {
            let aged = (now - t.submitted_at) / self.cfg.aging_secs;
            rank = (rank - aged).max(0.0);
        }
        if let Some(f) = &self.fairshare {
            if self.cfg.fairshare_weight > 0.0 {
                rank += self.cfg.fairshare_weight
                    * f.normalized_usage(&t.user, self.cfg.fairshare_scale_secs, now);
            }
        }
        rank
    }

    /// Peek the task that would run next at time `now`.
    ///
    /// Ordering uses `total_cmp`: even if a non-finite rank slips through
    /// (a corrupted clock, an overflowing fair-share penalty), ordering is
    /// merely wrong for that task — it can never panic the daemon.
    pub fn peek(&self, now: f64) -> Option<&QuantumTask> {
        self.tasks.iter().min_by(|a, b| {
            self.effective_rank(a, now)
                .total_cmp(&self.effective_rank(b, now))
                .then(a.submitted_at.total_cmp(&b.submitted_at))
                .then(a.id.cmp(&b.id))
        })
    }

    /// Pop the next task at time `now`.
    pub fn pop(&mut self, now: f64) -> Option<QuantumTask> {
        let id = self.peek(now)?.id;
        let idx = self
            .tasks
            .iter()
            .position(|t| t.id == id)
            .expect("peeked task exists");
        Some(self.tasks.remove(idx))
    }

    /// Remove a specific queued task (cancellation).
    pub fn remove(&mut self, id: u64) -> Option<QuantumTask> {
        let idx = self.tasks.iter().position(|t| t.id == id)?;
        Some(self.tasks.remove(idx))
    }

    /// Queued tasks in insertion order (not dispatch order) — used by
    /// snapshot compaction, which persists the raw set and lets replay
    /// recompute priorities.
    pub fn iter(&self) -> impl Iterator<Item = &QuantumTask> {
        self.tasks.iter()
    }

    /// Reinsert a task restored from the journal. The per-session quota is
    /// *not* re-checked — the task was admitted before the restart and
    /// dropping it now would violate durability — but timestamps are still
    /// validated so a corrupt journal cannot poison the dispatch order.
    pub fn restore(&mut self, task: QuantumTask) -> Result<(), QueueError> {
        if !task.submitted_at.is_finite() {
            return Err(QueueError::NonFiniteTimestamp { id: task.id });
        }
        self.tasks.push(task);
        Ok(())
    }

    /// Does the queue hold a production task that should preempt a running
    /// task of class `running`? True only when a production task is queued
    /// and the running class is lower (the paper's initial implementation:
    /// only production preempts).
    ///
    /// The whole queue is scanned, not just the dispatch head: aging can
    /// float an old development task to the head while a production task
    /// waits behind it, and that production task must still preempt.
    pub fn should_preempt(&self, running: PriorityClass, _now: f64) -> bool {
        running != PriorityClass::Production
            && self
                .tasks
                .iter()
                .any(|t| t.class == PriorityClass::Production)
    }

    /// Snapshot of queued tasks in dispatch order at `now`.
    pub fn snapshot(&self, now: f64) -> Vec<&QuantumTask> {
        let mut v: Vec<&QuantumTask> = self.tasks.iter().collect();
        v.sort_by(|a, b| {
            self.effective_rank(a, now)
                .total_cmp(&self.effective_rank(b, now))
                .then(a.submitted_at.total_cmp(&b.submitted_at))
                .then(a.id.cmp(&b.id))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};

    fn ir() -> ProgramIr {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), 100, "test")
    }

    fn task(id: u64, class: PriorityClass, at: f64) -> QuantumTask {
        QuantumTask {
            id,
            session: format!("sess-{id}"),
            user: "u".into(),
            class,
            ir: ir(),
            hint: PatternHint::None,
            submitted_at: at,
        }
    }

    #[test]
    fn class_order_dominates_fresh_queue() {
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Test, 1.0)).unwrap();
        q.push(task(3, PriorityClass::Production, 2.0)).unwrap();
        assert_eq!(q.pop(3.0).unwrap().id, 3);
        assert_eq!(q.pop(3.0).unwrap().id, 2);
        assert_eq!(q.pop(3.0).unwrap().id, 1);
        assert!(q.pop(3.0).is_none());
    }

    #[test]
    fn fifo_within_class() {
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Test, 5.0)).unwrap();
        q.push(task(2, PriorityClass::Test, 1.0)).unwrap();
        assert_eq!(q.pop(6.0).unwrap().id, 2, "earlier submission first");
    }

    #[test]
    fn aging_promotes_starved_dev_task() {
        let cfg = QueueConfig {
            aging_secs: 100.0,
            max_tasks_per_session: 0,
            ..QueueConfig::default()
        };
        let mut q = TaskQueue::new(cfg);
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Production, 199.0)).unwrap();
        // at t=199: dev rank = 2 - 1.99 = 0.01, prod = 0 → prod first
        assert_eq!(q.peek(199.0).unwrap().id, 2);
        // at t=250: dev rank = max(0, 2-2.5)=0 ties prod, earlier submit wins
        assert_eq!(q.peek(250.0).unwrap().id, 1, "aged dev task overtakes");
    }

    #[test]
    fn aging_disabled_keeps_strict_classes() {
        let cfg = QueueConfig {
            aging_secs: 0.0,
            max_tasks_per_session: 0,
            ..QueueConfig::default()
        };
        let mut q = TaskQueue::new(cfg);
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Production, 1e9)).unwrap();
        assert_eq!(q.peek(1e9).unwrap().id, 2);
    }

    #[test]
    fn session_quota_enforced() {
        let cfg = QueueConfig {
            aging_secs: 0.0,
            max_tasks_per_session: 2,
            ..QueueConfig::default()
        };
        let mut q = TaskQueue::new(cfg);
        let mut t1 = task(1, PriorityClass::Test, 0.0);
        let mut t2 = task(2, PriorityClass::Test, 0.0);
        let mut t3 = task(3, PriorityClass::Test, 0.0);
        t1.session = "s".into();
        t2.session = "s".into();
        t3.session = "s".into();
        q.push(t1).unwrap();
        q.push(t2).unwrap();
        assert!(matches!(
            q.push(t3),
            Err(QueueError::SessionQuotaExceeded { limit: 2, .. })
        ));
    }

    #[test]
    fn remove_cancels_queued_task() {
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Test, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Test, 0.0)).unwrap();
        assert_eq!(q.remove(1).unwrap().id, 1);
        assert!(q.remove(1).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn preemption_only_for_production_over_lower() {
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Production, 0.0)).unwrap();
        assert!(q.should_preempt(PriorityClass::Development, 1.0));
        assert!(q.should_preempt(PriorityClass::Test, 1.0));
        assert!(!q.should_preempt(PriorityClass::Production, 1.0));
        let mut q2 = TaskQueue::new(QueueConfig::default());
        q2.push(task(1, PriorityClass::Test, 0.0)).unwrap();
        assert!(
            !q2.should_preempt(PriorityClass::Development, 1.0),
            "test does not preempt"
        );
        let q3 = TaskQueue::new(QueueConfig::default());
        assert!(
            !q3.should_preempt(PriorityClass::Development, 1.0),
            "empty queue"
        );
    }

    #[test]
    fn preemption_seen_past_aged_dev_task_at_head() {
        // Regression: aging floats an old development task to the dispatch
        // head (rank floored at 0 ties production, earlier submission wins).
        // A head-only check then reports "nothing to preempt for" even
        // though a production task is waiting right behind it.
        let cfg = QueueConfig {
            aging_secs: 100.0,
            ..QueueConfig::default()
        };
        let mut q = TaskQueue::new(cfg);
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Production, 250.0)).unwrap();
        assert_eq!(q.peek(250.0).unwrap().id, 1, "aged dev task holds the head");
        assert!(
            q.should_preempt(PriorityClass::Test, 250.0),
            "queued production task must preempt even when masked by an aged dev head"
        );
        assert!(!q.should_preempt(PriorityClass::Production, 250.0));
    }

    #[test]
    fn non_finite_timestamps_rejected_at_push() {
        let mut q = TaskQueue::new(QueueConfig::default());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                q.push(task(1, PriorityClass::Test, bad)),
                Err(QueueError::NonFiniteTimestamp { id: 1 })
            );
        }
        assert!(q.is_empty());
    }

    #[test]
    fn queue_ops_survive_non_finite_now() {
        // even with a corrupted clock, ordering queries must not panic
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Production, 1.0)).unwrap();
        for now in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(q.peek(now).is_some());
            assert_eq!(q.snapshot(now).len(), 2);
        }
        assert!(q.pop(f64::NAN).is_some());
    }

    #[test]
    fn batching_follows_class() {
        assert!(task(1, PriorityClass::Production, 0.0).batched());
        assert!(!task(1, PriorityClass::Test, 0.0).batched());
        assert!(!task(1, PriorityClass::Development, 0.0).batched());
    }

    #[test]
    fn snapshot_is_dispatch_order() {
        let mut q = TaskQueue::new(QueueConfig::default());
        q.push(task(1, PriorityClass::Development, 0.0)).unwrap();
        q.push(task(2, PriorityClass::Production, 0.0)).unwrap();
        q.push(task(3, PriorityClass::Test, 0.0)).unwrap();
        let snap: Vec<u64> = q.snapshot(1.0).iter().map(|t| t.id).collect();
        assert_eq!(snap, vec![2, 3, 1]);
    }
}
