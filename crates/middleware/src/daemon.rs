//! The middleware daemon service (in-process core).
//!
//! This is the component Figure 2 places on the quantum access node: it owns
//! the QPU-side QRMI resource, manages sessions, validates programs against
//! the *current* device spec, queues tasks by priority class, runs them with
//! shot-batch preemption, and exposes admin + observability surfaces. The
//! REST layer in [`crate::http`] is a thin transport over this object, so
//! unit tests drive it directly while integration tests go over real sockets.

use crate::journal::{
    DaemonSnapshot, FollowerReplica, Journal, JournalConfig, JournalRecord, ReplicaAck,
    SharedJournal, ShipError,
};
use crate::session::{PriorityClass, Session, SessionError, SessionManager};
use crate::taskqueue::{QuantumTask, QueueConfig, QueueError, TaskQueue};
use hpcqc_analysis::Analyzer;
use hpcqc_emulator::SampleResult;
use hpcqc_program::{DeviceSpec, ProgramIr};
use hpcqc_qpu::{QpuStatus, VirtualQpu};
use hpcqc_qrmi::QuantumResource;
use hpcqc_scheduler::PatternHint;
use hpcqc_sync::{rank, TrackedMutex as Mutex, TrackedRwLock};
use hpcqc_telemetry::{
    labels, DurabilityMetrics, FaultMetrics, LintMetrics, Registry, ReplicationMetrics,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Daemon configuration (the site-tunable `slurm.conf` analogue of §3.4).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Queue behaviour.
    pub queue: QueueConfig,
    /// Concurrent session cap (0 = unlimited).
    pub max_sessions: usize,
    /// Shot cap applied to development tasks ("non-production jobs
    /// configured with a low number of shots", §3.3).
    pub dev_shot_cap: u32,
    /// Chunk size for unbatched (preemptible) execution: test/development
    /// tasks run in slices of this many shots, with preemption checks in
    /// between.
    pub preempt_chunk_shots: u32,
    /// Validate programs against the live device spec at submission.
    pub validate_on_submit: bool,
    /// Run the full static-analysis pipeline at submission: reject on
    /// Error-level diagnostics, record Warning-level ones in the job record,
    /// and cross-check the user's pattern hint against the inferred one.
    pub analyze_on_submit: bool,
    /// Fair-share usage half-life in seconds (0 disables fair-share).
    pub fairshare_half_life_secs: f64,
    /// Serve repeated *development* programs from a fingerprint-keyed result
    /// cache instead of re-running them on the device (dev results are for
    /// debugging, not statistics — a cache hit saves scarce QPU seconds).
    pub cache_dev_results: bool,
    /// Sessions idle longer than this are expired by the clock (0 = never).
    pub session_ttl_secs: f64,
    /// Requeues allowed after an execution failure before a task is declared
    /// poisoned and failed permanently.
    pub max_task_retries: u32,
    /// Tasks claimed from the queue per lock acquisition by [`pump`] and the
    /// background dispatcher (≥ 1). Batched draining keeps submitters off
    /// the queue lock while the dispatcher works through a burst.
    ///
    /// [`pump`]: MiddlewareService::pump
    pub pump_batch: usize,
    /// Write-ahead journal tuning (only consulted when the daemon was opened
    /// with [`MiddlewareService::recover`]).
    pub journal: JournalConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            queue: QueueConfig::default(),
            max_sessions: 0,
            dev_shot_cap: 100,
            preempt_chunk_shots: 10,
            validate_on_submit: true,
            analyze_on_submit: true,
            fairshare_half_life_secs: 3600.0,
            cache_dev_results: true,
            session_ttl_secs: 0.0,
            max_task_retries: 2,
            pump_batch: 16,
            journal: JournalConfig::default(),
        }
    }
}

/// Readiness of the daemon, exposed via `GET /v1/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DaemonHealth {
    /// Serving: sessions open, submissions admitted.
    Ok,
    /// Graceful drain in progress: no new admissions, queue still pumping.
    Draining,
    /// Drained and fsynced; the process is about to exit.
    Stopped,
}

impl DaemonHealth {
    pub fn as_str(&self) -> &'static str {
        match self {
            DaemonHealth::Ok => "ok",
            DaemonHealth::Draining => "draining",
            DaemonHealth::Stopped => "stopped",
        }
    }
}

/// Outcome of a graceful [`MiddlewareService::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Tasks dispatched during the drain window.
    pub dispatched: usize,
    /// Tasks left queued — safely journaled for the next start.
    pub pending: usize,
}

/// Replication role of a daemon in a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicaRole {
    /// Serving reads and writes; ships its journal to followers.
    Leader,
    /// Warm standby: admits no client work until promoted.
    Follower,
}

impl ReplicaRole {
    pub fn as_str(&self) -> &'static str {
        match self {
            ReplicaRole::Leader => "leader",
            ReplicaRole::Follower => "follower",
        }
    }
}

/// Role + shipping lag, guarded together under [`rank::REPLICATION`].
#[derive(Debug, Clone, Copy)]
struct ReplicationState {
    role: ReplicaRole,
    lag_records: u64,
    lag_bytes: u64,
}

/// The `GET /v1/readyz` answer: whether this daemon should receive traffic,
/// and why not if not. Liveness (`/v1/healthz`) stays green on a healthy
/// follower; readiness does not — the gateway routes on *this*.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadinessReport {
    /// Route traffic here?
    pub ready: bool,
    /// `leader` / `follower` / `draining` / `stopped`.
    pub role: String,
    /// Liveness state (the `healthz` answer).
    pub status: String,
    /// Journal records shipped but not yet follower-acked.
    pub lag_records: u64,
    /// Journal bytes shipped but not yet follower-acked.
    pub lag_bytes: u64,
}

/// Handle to a background shipping pump
/// ([`MiddlewareService::spawn_shipper`]).
pub struct ShipperHandle {
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: std::thread::JoinHandle<FollowerReplica>,
}

impl ShipperHandle {
    /// Stop the pump after one final catch-up pass and hand the replica
    /// back (ready to be promoted).
    pub fn stop(self) -> FollowerReplica {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.join().expect("shipper thread panicked")
    }
}

/// Daemon-side task state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DaemonTaskStatus {
    /// Waiting; `position` is the current dispatch-order index.
    Queued { position: usize },
    /// On the device now.
    Running,
    /// Done; result available.
    Completed,
    /// Rejected or errored.
    Failed(String),
    /// Cancelled by the user.
    Cancelled,
}

/// Errors surfaced by the daemon API.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonError {
    Session(SessionError),
    Queue(String),
    /// Program failed validation; messages list the violations.
    Validation(Vec<String>),
    UnknownTask(u64),
    /// Operation not allowed for this session/class.
    Forbidden(String),
    /// The daemon is draining or recovering and admits no new work (REST
    /// maps this to 503 so load balancers take the node out of rotation).
    Unavailable(String),
    Internal(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Session(e) => write!(f, "session error: {e}"),
            DaemonError::Queue(m) => write!(f, "queue error: {m}"),
            DaemonError::Validation(v) => write!(f, "validation failed: {}", v.join("; ")),
            DaemonError::UnknownTask(id) => write!(f, "unknown task {id}"),
            DaemonError::Forbidden(m) => write!(f, "forbidden: {m}"),
            DaemonError::Unavailable(m) => write!(f, "unavailable: {m}"),
            DaemonError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<SessionError> for DaemonError {
    fn from(e: SessionError) -> Self {
        DaemonError::Session(e)
    }
}

impl From<QueueError> for DaemonError {
    fn from(e: QueueError) -> Self {
        DaemonError::Queue(e.to_string())
    }
}

#[derive(Debug, Clone)]
enum TaskRecord {
    Queued,
    Running,
    Completed(SampleResult),
    Failed(String),
    Cancelled,
}

/// One frame of a [`MiddlewareService::submit_batch`] call.
#[derive(Debug, Clone)]
pub struct SubmitItem {
    pub token: String,
    pub ir: ProgramIr,
    pub hint: PatternHint,
    pub idempotency_key: Option<String>,
}

/// What [`MiddlewareService::prepare_submit`] decided about one frame:
/// already satisfied (idempotent replay, dev-cache hit) or ready for the
/// queue.
enum Prepared {
    Done(u64),
    Enqueue {
        task: QuantumTask,
        warnings: Vec<String>,
        idempotency_key: Option<String>,
    },
}

/// Partial progress of a preempted task: completed chunk results are kept
/// and merged with the remainder when it resumes.
#[derive(Debug, Clone, Default)]
struct Progress {
    shots_done: u32,
    partial: Option<SampleResult>,
}

/// Failure history of a task across requeues.
#[derive(Debug, Clone, Default)]
struct FailureState {
    /// Execution failures so far.
    attempts: u32,
    /// Resources this task has failed on. Advisory: dispatch avoids them
    /// while an untried resource exists, but falls back to the primary
    /// rather than starving the task when every resource has failed once.
    excluded: HashSet<String>,
}

/// The middleware daemon.
pub struct MiddlewareService {
    sessions: SessionManager,
    queue: Mutex<TaskQueue>,
    resource: Arc<dyn QuantumResource>,
    /// Direct handle to the device for the admin surface (None when the
    /// daemon fronts a cloud resource it cannot administer).
    qpu_admin: Option<VirtualQpu>,
    /// Alternate resources a requeued task may be dispatched to after
    /// failing on the primary (e.g. a local emulator for degraded service).
    alternates: Vec<Arc<dyn QuantumResource>>,
    records: Mutex<HashMap<u64, TaskRecord>>,
    progress: Mutex<HashMap<u64, Progress>>,
    failures: Mutex<HashMap<u64, FailureState>>,
    task_meta: Mutex<HashMap<u64, (PriorityClass, f64)>>, // class, submitted_at
    next_task: AtomicU64,
    seed: AtomicU64,
    clock: Mutex<f64>,
    registry: Registry,
    cfg: DaemonConfig,
    /// Serializes dispatch: the QPU is a serial device, and concurrent REST
    /// clients all pump the queue — only one dispatch may hold the resource
    /// lease at a time.
    dispatch_lock: Mutex<()>,
    fairshare: Option<crate::fairshare::FairshareTracker>,
    /// Development-result cache keyed by program fingerprint.
    dev_cache: Mutex<HashMap<u64, SampleResult>>,
    /// The static-analysis pipeline run at submission.
    analyzer: Analyzer,
    /// Warning-level findings recorded per accepted task (job record).
    warnings: Mutex<HashMap<u64, Vec<String>>>,
    /// Task bodies currently on the device: popped from the queue but not
    /// yet terminal/requeued. Kept so snapshots never lose a running task
    /// and crash recovery can requeue mid-dispatch work.
    inflight: Mutex<HashMap<u64, QuantumTask>>,
    /// Idempotency key → the task id originally assigned for it. Journaled,
    /// so client retries after a daemon restart still deduplicate.
    idempotency: Mutex<HashMap<String, u64>>,
    /// Write-ahead journal; `None` for a purely in-memory daemon.
    journal: Option<SharedJournal>,
    /// Compaction gate: appends hold it shared around their WAL write,
    /// compaction holds it exclusive across snapshot + compact. Closes the
    /// lost-record window where an append lands between `snapshot_state`
    /// and the WAL cut — journaled but absent from the snapshot, so gone
    /// after recovery.
    compact_gate: TrackedRwLock<()>,
    /// Serving → Draining → Stopped.
    lifecycle: Mutex<DaemonHealth>,
    /// Device status recovered from the journal, applied when the admin
    /// handle is attached (the journal outlives the `VirtualQpu` instance).
    recovered_qpu_status: Mutex<Option<String>>,
    /// Last admin-set device status (string form), persisted in snapshots.
    last_qpu_status: Mutex<Option<String>>,
    /// Replication role and shipping lag (readiness reporting).
    replication: Mutex<ReplicationState>,
}

impl MiddlewareService {
    pub fn new(resource: Arc<dyn QuantumResource>, cfg: DaemonConfig) -> Self {
        let fairshare = if cfg.fairshare_half_life_secs > 0.0 {
            Some(crate::fairshare::FairshareTracker::new(
                cfg.fairshare_half_life_secs,
            ))
        } else {
            None
        };
        let queue = match &fairshare {
            Some(f) => TaskQueue::new(cfg.queue).with_fairshare(f.clone()),
            None => TaskQueue::new(cfg.queue),
        };
        MiddlewareService {
            sessions: SessionManager::new(cfg.max_sessions),
            queue: Mutex::new("middleware.daemon.queue", rank::QUEUE, queue),
            resource,
            qpu_admin: None,
            alternates: Vec::new(),
            records: Mutex::new("middleware.daemon.records", rank::RECORDS, HashMap::new()),
            progress: Mutex::new("middleware.daemon.progress", rank::PROGRESS, HashMap::new()),
            failures: Mutex::new("middleware.daemon.failures", rank::FAILURES, HashMap::new()),
            task_meta: Mutex::new(
                "middleware.daemon.task_meta",
                rank::TASK_META,
                HashMap::new(),
            ),
            next_task: AtomicU64::new(1),
            seed: AtomicU64::new(0x5eed),
            clock: Mutex::new("middleware.daemon.clock", rank::CLOCK, 0.0),
            registry: Registry::new(),
            cfg,
            dispatch_lock: Mutex::new("middleware.daemon.dispatch", rank::DISPATCH, ()),
            fairshare,
            dev_cache: Mutex::new(
                "middleware.daemon.dev_cache",
                rank::DEV_CACHE,
                HashMap::new(),
            ),
            analyzer: Analyzer::standard(),
            warnings: Mutex::new("middleware.daemon.warnings", rank::WARNINGS, HashMap::new()),
            inflight: Mutex::new("middleware.daemon.inflight", rank::INFLIGHT, HashMap::new()),
            idempotency: Mutex::new(
                "middleware.daemon.idempotency",
                rank::IDEMPOTENCY,
                HashMap::new(),
            ),
            journal: None,
            compact_gate: TrackedRwLock::new(
                "middleware.daemon.compact_gate",
                rank::COMPACT_GATE,
                (),
            ),
            lifecycle: Mutex::new(
                "middleware.daemon.lifecycle",
                rank::LIFECYCLE,
                DaemonHealth::Ok,
            ),
            recovered_qpu_status: Mutex::new(
                "middleware.daemon.recovered_qpu_status",
                rank::QPU_STATUS,
                None,
            ),
            last_qpu_status: Mutex::new(
                "middleware.daemon.last_qpu_status",
                rank::QPU_STATUS,
                None,
            ),
            replication: Mutex::new(
                "middleware.daemon.replication",
                rank::REPLICATION,
                ReplicationState {
                    role: ReplicaRole::Leader,
                    lag_records: 0,
                    lag_bytes: 0,
                },
            ),
        }
    }

    /// Attach the device for admin operations (on-prem deployment). If the
    /// journal recorded an admin-set status before the restart, it is
    /// re-applied here.
    pub fn with_qpu_admin(mut self, qpu: VirtualQpu) -> Self {
        if let Some(status) = self.recovered_qpu_status.lock().take() {
            if let Some(s) = parse_qpu_status(&status) {
                qpu.set_status(s);
            }
        }
        self.qpu_admin = Some(qpu);
        self
    }

    /// Register an alternate resource that requeued tasks may run on after
    /// failing on the primary.
    pub fn with_alternate_resource(mut self, res: Arc<dyn QuantumResource>) -> Self {
        self.alternates.push(res);
        self
    }

    /// Typed facade over this daemon's registry for recovery counters.
    fn fault_metrics(&self) -> FaultMetrics {
        FaultMetrics::new(self.registry.clone())
    }

    /// Typed facade over this daemon's registry for analyzer counters.
    fn lint_metrics(&self) -> LintMetrics {
        LintMetrics::new(self.registry.clone())
    }

    /// Typed facade over this daemon's registry for durability counters.
    fn durability_metrics(&self) -> DurabilityMetrics {
        DurabilityMetrics::new(self.registry.clone())
    }

    /// Typed facade over this daemon's registry for replication counters.
    fn replication_metrics(&self) -> ReplicationMetrics {
        ReplicationMetrics::new(self.registry.clone())
    }

    // ---- durability -----------------------------------------------------

    /// Append one record to the WAL (no-op for in-memory daemons) and run
    /// compaction when the policy asks for it.
    ///
    /// Call sites hold no daemon state lock ranked at or below
    /// [`rank::COMPACT_GATE`] other than `dispatch_lock`: compaction
    /// snapshots the whole service state and tracked mutexes are not
    /// reentrant.
    fn journal_append(&self, rec: &JournalRecord) {
        self.journal_append_inner(rec, false)
    }

    /// [`journal_append`](Self::journal_append) for client-visible request
    /// paths (submit/cancel/session): a batch this append trips is parked
    /// for the dispatcher to write, so no client ever waits on an fsync —
    /// the lock audit traced the submit p99 tail to exactly that
    /// one-in-`group_max_records` write under `middleware.journal.file`
    /// (hold p99 ≈ 4 ms).
    fn journal_append_deferred(&self, rec: &JournalRecord) {
        self.journal_append_inner(rec, true)
    }

    fn journal_append_inner(&self, rec: &JournalRecord, defer: bool) {
        let Some(journal) = &self.journal else {
            return;
        };
        let m = self.durability_metrics();
        let wants_compaction = {
            // Shared gate around the append: compaction cannot cut the WAL
            // between a sibling thread's snapshot and this record landing.
            let _gate = self.compact_gate.read();
            let res = if defer {
                journal.append_deferred(rec)
            } else {
                journal.append(rec)
            };
            match res {
                Ok(out) => {
                    m.append(out.bytes, out.fsynced);
                    out.wants_compaction
                }
                Err(e) => {
                    self.journal_error("append", &e);
                    false
                }
            }
        };
        if wants_compaction {
            // Exclusive gate across snapshot + compact: no append can land
            // after the snapshot is taken and before the WAL is cut, so a
            // record is never dropped from the log while missing from the
            // snapshot (the lost-record window the lock audit surfaced).
            let _gate = self.compact_gate.write();
            if journal.wants_compaction() {
                let snap = self.snapshot_state();
                match journal.compact(&snap) {
                    Ok(()) => m.snapshot(),
                    Err(e) => self.journal_error("compact", &e),
                }
            }
        }
    }

    /// Flush and fsync any buffered group-commit batch. Called by the
    /// background dispatcher when the queue runs dry, so a lull in traffic
    /// never strands an unflushed batch; no-op when nothing is pending.
    pub fn sync_journal(&self) {
        let Some(journal) = &self.journal else {
            return;
        };
        if journal.pending_records() == 0
            && journal.unsynced_appends() == 0
            && journal.deferred_batches() == 0
        {
            return;
        }
        let _gate = self.compact_gate.read();
        match journal.sync() {
            Ok(()) => self.durability_metrics().fsync(),
            Err(e) => self.journal_error("fsync", &e),
        }
    }

    /// A journal IO failure: counted, never fatal — the daemon keeps serving
    /// from memory (durability degrades, availability does not).
    fn journal_error(&self, op: &str, e: &std::io::Error) {
        let _ = e;
        self.registry.counter_add(
            "journal_errors_total",
            "Write-ahead journal IO failures (durability degraded)",
            labels(&[("op", op)]),
            1.0,
        );
    }

    /// Capture the full daemon state for compaction. Running tasks are
    /// folded back into the queued set: a snapshot never claims work that
    /// has not produced a durable result.
    fn snapshot_state(&self) -> DaemonSnapshot {
        // queue and inflight are read under both locks (queue → inflight,
        // the order every mover uses) so a task migrating between them is
        // seen exactly once, never zero or twice
        let mut queued: Vec<QuantumTask> = {
            let q = self.queue.lock();
            let inflight = self.inflight.lock();
            q.iter()
                .cloned()
                .chain(inflight.values().cloned())
                .collect()
        };
        queued.sort_by(|a, b| {
            a.submitted_at
                .total_cmp(&b.submitted_at)
                .then(a.id.cmp(&b.id))
        });
        let mut completed = Vec::new();
        let mut failed = Vec::new();
        let mut cancelled = Vec::new();
        for (&id, rec) in self.records.lock().iter() {
            match rec {
                TaskRecord::Completed(r) => completed.push((id, r.clone())),
                TaskRecord::Failed(m) => failed.push((id, m.clone())),
                TaskRecord::Cancelled => cancelled.push(id),
                TaskRecord::Queued | TaskRecord::Running => {}
            }
        }
        completed.sort_by_key(|(id, _)| *id);
        failed.sort_by_key(|(id, _)| *id);
        cancelled.sort_unstable();
        let mut task_meta: Vec<(u64, PriorityClass, f64)> = self
            .task_meta
            .lock()
            .iter()
            .map(|(&id, &(class, at))| (id, class, at))
            .collect();
        task_meta.sort_by_key(|(id, _, _)| *id);
        let mut failures: Vec<(u64, u32, Vec<String>)> = self
            .failures
            .lock()
            .iter()
            .map(|(&id, f)| {
                let mut ex: Vec<String> = f.excluded.iter().cloned().collect();
                ex.sort();
                (id, f.attempts, ex)
            })
            .collect();
        failures.sort_by_key(|(id, _, _)| *id);
        let mut warnings: Vec<(u64, Vec<String>)> = self
            .warnings
            .lock()
            .iter()
            .map(|(&id, w)| (id, w.clone()))
            .collect();
        warnings.sort_by_key(|(id, _)| *id);
        let mut idempotency: Vec<(String, u64)> = self
            .idempotency
            .lock()
            .iter()
            .map(|(k, &id)| (k.clone(), id))
            .collect();
        idempotency.sort();
        DaemonSnapshot {
            clock: self.now(),
            next_task: self.next_task.load(Ordering::Relaxed),
            session_counter: self.sessions.counter_watermark(),
            sessions: self.sessions.list(),
            queued,
            completed,
            failed,
            cancelled,
            task_meta,
            failures,
            warnings,
            idempotency,
            qpu_status: self.last_qpu_status.lock().clone(),
        }
    }

    /// Open a durable daemon from `path`: replay the snapshot + WAL tail
    /// into a warm service (queued tasks restored in priority/arrival order,
    /// mid-dispatch tasks requeued with their excluded resources intact, the
    /// task-id high-water mark preserved), then keep journaling to the same
    /// directory. A missing or empty journal directory yields a fresh
    /// durable daemon, so this is also the constructor for first boot.
    pub fn recover(
        path: impl AsRef<Path>,
        resource: Arc<dyn QuantumResource>,
        cfg: DaemonConfig,
    ) -> Result<Self, DaemonError> {
        let path = path.as_ref();
        let t0 = std::time::Instant::now();
        let replay =
            Journal::load(path).map_err(|e| DaemonError::Internal(format!("journal load: {e}")))?;
        let n_records = replay.records.len();
        let truncated = replay.truncated_bytes;
        let had_snapshot = replay.snapshot.is_some();
        let state = ReplayState::build(replay);
        let journal_cfg = cfg.journal;
        let mut svc = Self::new(resource, cfg);

        svc.sessions.restore(state.sessions, state.session_counter);
        svc.next_task
            .store(state.next_task.max(1), Ordering::Relaxed);
        *svc.clock.lock() = state.clock;
        *svc.recovered_qpu_status.lock() = state.qpu_status.clone();
        *svc.last_qpu_status.lock() = state.qpu_status;
        {
            let mut queue = svc.queue.lock();
            for task in &state.queued {
                queue
                    .restore(task.clone())
                    .map_err(|e| DaemonError::Internal(format!("restore task: {e}")))?;
            }
        }
        {
            let mut records = svc.records.lock();
            for task in &state.queued {
                records.insert(task.id, TaskRecord::Queued);
            }
            records.extend(
                state
                    .completed
                    .into_iter()
                    .map(|(id, r)| (id, TaskRecord::Completed(r))),
            );
            records.extend(
                state
                    .failed
                    .into_iter()
                    .map(|(id, m)| (id, TaskRecord::Failed(m))),
            );
            records.extend(
                state
                    .cancelled
                    .into_iter()
                    .map(|id| (id, TaskRecord::Cancelled)),
            );
        }
        *svc.task_meta.lock() = state.task_meta;
        *svc.failures.lock() = state.failures;
        *svc.warnings.lock() = state.warnings;
        *svc.idempotency.lock() = state.idempotency;

        let metrics = svc.durability_metrics();
        metrics.replay(t0.elapsed().as_secs_f64(), n_records, truncated);
        metrics.recovered_tasks(state.queued.len());
        metrics.requeued_on_recovery(state.requeued_inflight);
        metrics.recovered_sessions(svc.sessions.count());

        let journal = SharedJournal::open(path, journal_cfg)
            .map_err(|e| DaemonError::Internal(format!("journal open: {e}")))?;
        // compact immediately: the fresh snapshot becomes the replay base,
        // so WAL growth — and therefore restart time — stays bounded no
        // matter how the previous process died.
        if n_records > 0 || had_snapshot {
            journal
                .compact(&svc.snapshot_state())
                .map_err(|e| DaemonError::Internal(format!("journal compact: {e}")))?;
            metrics.snapshot();
        }
        svc.journal = Some(journal);
        Ok(svc)
    }

    /// Current liveness (the `GET /v1/healthz` answer).
    pub fn health(&self) -> DaemonHealth {
        *self.lifecycle.lock()
    }

    // ---- replication ----------------------------------------------------

    /// This daemon's replication role.
    pub fn role(&self) -> ReplicaRole {
        self.replication.lock().role
    }

    /// Set the replication role. A daemon demoted to [`ReplicaRole::Follower`]
    /// stops admitting client work immediately (existing queue state is kept —
    /// it is the promoted leader's job now, via the shipped journal).
    pub fn set_role(&self, role: ReplicaRole) {
        self.replication.lock().role = role;
    }

    /// Readiness for traffic (the `GET /v1/readyz` answer): leader role
    /// *and* serving lifecycle. Liveness can be green while this is not —
    /// a healthy follower is alive but must not receive client traffic.
    pub fn readiness(&self) -> ReadinessReport {
        let (role, lag_records, lag_bytes) = {
            let r = self.replication.lock();
            (r.role, r.lag_records, r.lag_bytes)
        };
        let health = self.health();
        let role_str = match (role, health) {
            (ReplicaRole::Leader, DaemonHealth::Ok) => "leader",
            (ReplicaRole::Follower, _) => "follower",
            (_, DaemonHealth::Draining) => "draining",
            (_, DaemonHealth::Stopped) => "stopped",
        };
        ReadinessReport {
            ready: role == ReplicaRole::Leader && health == DaemonHealth::Ok,
            role: role_str.to_string(),
            status: health.as_str().to_string(),
            lag_records,
            lag_bytes,
        }
    }

    /// Turn on leader→follower journal shipping (durable daemons only).
    /// Call right after [`recover`](Self::recover), before traffic starts.
    pub fn enable_shipping(&self) -> Result<(), DaemonError> {
        let Some(journal) = &self.journal else {
            return Err(DaemonError::Internal(
                "in-memory daemon has no journal to ship".into(),
            ));
        };
        journal
            .enable_shipping()
            .map_err(|e| DaemonError::Internal(format!("enable shipping: {e}")))
    }

    /// The most advanced follower acknowledgement this leader has seen — the
    /// bar [`promote`](Self::promote) holds candidates to. Survivors of a
    /// leader crash (the gateway, the test harness) must capture this while
    /// the leader is alive.
    pub fn last_acked(&self) -> ReplicaAck {
        self.journal
            .as_ref()
            .and_then(|j| j.ship_last_acked())
            .unwrap_or_default()
    }

    /// Ship every pending journal event to `replica`, acking as `name`.
    /// Returns the number of events applied. A validation failure stops the
    /// pump (the replica is untouched by the bad event) and the same events
    /// retransmit on the next call.
    pub fn ship_pending(
        &self,
        replica: &mut FollowerReplica,
        name: &str,
    ) -> Result<usize, ShipError> {
        let Some(journal) = &self.journal else {
            return Ok(0);
        };
        // Register this follower's retention slot before fetching: trimming
        // only drops events below the slowest *registered* cursor, so the
        // events this replica still needs stay retained even while other,
        // faster followers ack past them.
        journal.ship_ack(name, replica.ack());
        let m = self.replication_metrics();
        let events = journal.ship_fetch(replica.ack().applied_seq);
        for ev in &events {
            m.shipped(ev.records() as usize, ev.payload_len());
        }
        // One durability point per round (the follower's group commit): the
        // ack covers everything the round fsynced.
        let (applied, rejection) = replica.apply_all(&events);
        for ev in events.iter().take(applied) {
            m.acked(ev.records() as usize, ev.payload_len());
        }
        journal.ship_ack(name, replica.ack());
        self.update_replication_lag();
        match rejection {
            Some(e) => {
                m.rejected(e.reason());
                Err(e)
            }
            None => Ok(applied),
        }
    }

    /// Raw shipping-stream access: the retained events at or after
    /// `from_seq`. [`ship_pending`](Self::ship_pending) is the normal pump;
    /// this is for transports that move events themselves (and for chaos
    /// harnesses that drop, tear, and reorder them on purpose).
    pub fn ship_events(&self, from_seq: u64) -> Vec<crate::journal::ShipEvent> {
        self.journal
            .as_ref()
            .map(|j| j.ship_fetch(from_seq))
            .unwrap_or_default()
    }

    /// Record a follower acknowledgement (normally done by
    /// [`ship_pending`](Self::ship_pending)) and refresh the lag view.
    pub fn record_ack(&self, follower: &str, ack: ReplicaAck) {
        if let Some(j) = &self.journal {
            j.ship_ack(follower, ack);
        }
        self.update_replication_lag();
    }

    /// Refresh the cached lag (readiness report + gauges) from the journal.
    fn update_replication_lag(&self) {
        let Some(journal) = &self.journal else {
            return;
        };
        let (records, bytes) = journal.ship_lag();
        {
            let mut r = self.replication.lock();
            r.lag_records = records;
            r.lag_bytes = bytes;
        }
        self.replication_metrics().lag(records, bytes);
    }

    /// Promote the follower journal at `path` to a serving leader.
    ///
    /// `last_acked` is the highest acknowledgement the old leader had seen
    /// (from [`last_acked`](Self::last_acked), captured before the crash): a
    /// replica whose durable cursor is behind it is missing work some client
    /// was told is safe, so its promotion is refused. A granted promotion
    /// replays the shipped prefix through the ordinary [`recover`] path —
    /// mid-dispatch tasks are requeued with their `excluded_resources`
    /// intact, the task-id/session high-water marks and the idempotency map
    /// all survive — and the daemon starts serving as leader.
    ///
    /// [`recover`]: Self::recover
    pub fn promote(
        path: impl AsRef<Path>,
        resource: Arc<dyn QuantumResource>,
        cfg: DaemonConfig,
        last_acked: ReplicaAck,
    ) -> Result<Self, DaemonError> {
        let path = path.as_ref();
        let t0 = std::time::Instant::now();
        let applied = FollowerReplica::peek_ack(path).unwrap_or_default();
        if !applied.at_least(&last_acked) {
            return Err(DaemonError::Unavailable(format!(
                "refusing promotion: replica applied seq {} (wal {} B) is behind \
                 the last-acked seq {} (wal {} B)",
                applied.applied_seq, applied.wal_len, last_acked.applied_seq, last_acked.wal_len
            )));
        }
        let svc = Self::recover(path, resource, cfg)?;
        let m = svc.replication_metrics();
        m.promotion();
        m.failover_duration(t0.elapsed().as_secs_f64());
        Ok(svc)
    }

    /// Run a background shipping pump: every `interval`, ship pending
    /// journal events to `replica` (acking as `name`). Returns a handle
    /// whose [`stop`](ShipperHandle::stop) hands the replica back — e.g. to
    /// promote it.
    pub fn spawn_shipper(
        self: &Arc<Self>,
        replica: FollowerReplica,
        name: &str,
        interval: std::time::Duration,
    ) -> ShipperHandle {
        let svc = Arc::clone(self);
        let name = name.to_string();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut replica = replica;
            while !stop2.load(Ordering::Relaxed) {
                // Rejections retransmit next tick; the replica stays clean.
                let _ = svc.ship_pending(&mut replica, &name);
                std::thread::sleep(interval);
            }
            let _ = svc.ship_pending(&mut replica, &name);
            replica
        });
        ShipperHandle { stop, thread }
    }

    /// Graceful drain: stop admitting sessions and tasks, keep dispatching
    /// until the queue is empty or `drain_timeout` (wall clock) elapses,
    /// compact + fsync the journal, and go `Stopped`. Anything still queued
    /// is durable and will be restored by the next
    /// [`MiddlewareService::recover`].
    pub fn shutdown(&self, drain_timeout: std::time::Duration) -> DrainReport {
        *self.lifecycle.lock() = DaemonHealth::Draining;
        let deadline = std::time::Instant::now() + drain_timeout;
        let mut dispatched = 0;
        while std::time::Instant::now() < deadline {
            match self.pump_once() {
                Some(_) => dispatched += 1,
                None => break,
            }
        }
        let pending = self.queue_depth();
        let m = self.durability_metrics();
        if let Some(journal) = &self.journal {
            let _gate = self.compact_gate.write();
            let snap = self.snapshot_state();
            match journal.compact(&snap) {
                Ok(()) => m.snapshot(),
                Err(e) => self.journal_error("compact", &e),
            }
            match journal.sync() {
                Ok(()) => m.fsync(),
                Err(e) => self.journal_error("fsync", &e),
            }
        }
        m.drained(dispatched, pending);
        *self.lifecycle.lock() = DaemonHealth::Stopped;
        DrainReport {
            dispatched,
            pending,
        }
    }

    /// The daemon's metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Daemon clock (seconds).
    pub fn now(&self) -> f64 {
        *self.clock.lock()
    }

    /// Advance the daemon clock (simulated idle time). Expires idle
    /// sessions past their TTL.
    pub fn advance_time(&self, dt: f64) {
        *self.clock.lock() += dt;
        if let Some(q) = &self.qpu_admin {
            q.advance_time(dt);
        }
        self.journal_append(&JournalRecord::ClockAdvanced { to: self.now() });
        self.gc_sessions();
    }

    /// Expire sessions idle past the TTL (no-op when the TTL is disabled).
    fn gc_sessions(&self) {
        if self.cfg.session_ttl_secs <= 0.0 {
            return;
        }
        let cutoff = self.now() - self.cfg.session_ttl_secs;
        let expired = self.sessions.gc(cutoff);
        if !expired.is_empty() {
            self.registry.counter_add(
                "daemon_sessions_expired_total",
                "Sessions expired by TTL",
                hpcqc_telemetry::Labels::new(),
                expired.len() as f64,
            );
            self.journal_append(&JournalRecord::SessionsExpired {
                tokens: expired.into_iter().map(|s| s.token).collect(),
            });
        }
    }

    /// TTL-aware session validation used by every client-facing call: an
    /// idle-expired session is removed, journaled, and reported as
    /// [`SessionError::Expired`]; an active one has its idle clock touched.
    fn validate_session(&self, token: &str) -> Result<Session, DaemonError> {
        match self
            .sessions
            .validate_active(token, self.now(), self.cfg.session_ttl_secs)
        {
            Ok(s) => Ok(s),
            Err(SessionError::Expired) => {
                self.registry.counter_add(
                    "daemon_sessions_expired_total",
                    "Sessions expired by TTL",
                    hpcqc_telemetry::Labels::new(),
                    1.0,
                );
                self.journal_append(&JournalRecord::SessionsExpired {
                    tokens: vec![token.to_string()],
                });
                Err(SessionError::Expired.into())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Reject client calls once draining/stopped — or while this daemon is
    /// an unpromoted follower (warm standbys never admit client work; the
    /// gateway routes around them via `readyz`).
    fn check_admitting(&self) -> Result<(), DaemonError> {
        if self.role() == ReplicaRole::Follower {
            return Err(DaemonError::Unavailable("daemon is a follower".into()));
        }
        match self.health() {
            DaemonHealth::Ok => Ok(()),
            h => Err(DaemonError::Unavailable(format!(
                "daemon is {}",
                h.as_str()
            ))),
        }
    }

    // ---- session API -------------------------------------------------

    /// Open a session for `user` in `class`; returns the token.
    pub fn open_session(&self, user: &str, class: PriorityClass) -> Result<String, DaemonError> {
        self.check_admitting()?;
        let s = self.sessions.open(user, class, self.now())?;
        self.registry.counter_add(
            "daemon_sessions_opened_total",
            "Sessions opened",
            labels(&[("class", class.as_str())]),
            1.0,
        );
        let token = s.token.clone();
        self.journal_append_deferred(&JournalRecord::SessionOpened { session: s });
        Ok(token)
    }

    /// Close a session.
    pub fn close_session(&self, token: &str) -> Result<(), DaemonError> {
        self.sessions.close(token)?;
        self.journal_append_deferred(&JournalRecord::SessionClosed {
            token: token.to_string(),
        });
        Ok(())
    }

    /// List sessions (admin).
    pub fn list_sessions(&self) -> Vec<crate::session::Session> {
        self.sessions.list()
    }

    // ---- task API ------------------------------------------------------

    /// The current device spec, fetched through QRMI — what clients validate
    /// against before submitting (§2.1 drift safety).
    pub fn device_spec(&self) -> Result<DeviceSpec, DaemonError> {
        self.resource
            .target()
            .map_err(|e| DaemonError::Internal(e.to_string()))
    }

    /// Submit a program under a session. Applies class policies (dev shot
    /// cap), validates against the live spec, runs the static-analysis
    /// pipeline, and queues. Error-level diagnostics reject; Warning-level
    /// ones are kept in the job record (see [`Self::task_warnings`]).
    pub fn submit(
        &self,
        token: &str,
        ir: ProgramIr,
        hint: PatternHint,
    ) -> Result<u64, DaemonError> {
        self.submit_with_key(token, ir, hint, None)
    }

    /// [`Self::submit`] with an optional client idempotency key. A key that
    /// was already accepted — including before a daemon restart, the map is
    /// journaled — returns the original task id without enqueueing anything,
    /// making client retry loops safe end-to-end.
    pub fn submit_with_key(
        &self,
        token: &str,
        ir: ProgramIr,
        hint: PatternHint,
        idempotency_key: Option<&str>,
    ) -> Result<u64, DaemonError> {
        self.check_admitting()?;
        match self.prepare_submit(token, ir, hint, idempotency_key)? {
            Prepared::Done(id) => Ok(id),
            Prepared::Enqueue {
                task,
                warnings,
                idempotency_key,
            } => {
                let id = task.id;
                self.queue.lock().push(task.clone())?;
                self.sessions.record_task(token)?;
                self.records.lock().insert(id, TaskRecord::Queued);
                self.task_meta
                    .lock()
                    .insert(id, (task.class, task.submitted_at));
                if let Some(key) = &idempotency_key {
                    self.idempotency.lock().insert(key.clone(), id);
                }
                self.registry.counter_add(
                    "daemon_tasks_submitted_total",
                    "Tasks accepted into the queue",
                    labels(&[("class", task.class.as_str())]),
                    1.0,
                );
                self.journal_append_deferred(&JournalRecord::TaskSubmitted {
                    task,
                    idempotency_key,
                    warnings,
                });
                Ok(id)
            }
        }
    }

    /// Submit N programs as one unit: per-frame validation runs outside any
    /// shared lock, then every accepted task enters the queue under a
    /// *single* queue-lock hold, bookkeeping maps are each touched once,
    /// and the journal records go out as deferred appends that the
    /// group-commit machinery flushes with one fsync for the whole batch.
    /// Outcomes are per-frame and order-preserving: one frame failing
    /// validation (or hitting a session quota) does not poison its
    /// neighbours. Idempotency keys keep their per-frame semantics.
    pub fn submit_batch(&self, items: Vec<SubmitItem>) -> Vec<Result<u64, DaemonError>> {
        if let Err(e) = self.check_admitting() {
            return items.iter().map(|_| Err(e.clone())).collect();
        }
        // Phase 1: validation/analysis per frame — CPU work, no queue lock.
        let prepared: Vec<Result<Prepared, DaemonError>> = items
            .into_iter()
            .map(|it| self.prepare_submit(&it.token, it.ir, it.hint, it.idempotency_key.as_deref()))
            .collect();
        // Phase 2: one queue-lock hold admits every surviving frame.
        let mut outcomes: Vec<Result<u64, DaemonError>> = Vec::with_capacity(prepared.len());
        let mut accepted: Vec<(QuantumTask, Vec<String>, Option<String>)> = Vec::new();
        {
            let mut queue = self.queue.lock();
            for p in prepared {
                match p {
                    Err(e) => outcomes.push(Err(e)),
                    Ok(Prepared::Done(id)) => outcomes.push(Ok(id)),
                    Ok(Prepared::Enqueue {
                        task,
                        warnings,
                        idempotency_key,
                    }) => match queue.push(task.clone()) {
                        Ok(()) => {
                            outcomes.push(Ok(task.id));
                            accepted.push((task, warnings, idempotency_key));
                        }
                        Err(e) => outcomes.push(Err(e.into())),
                    },
                }
            }
        }
        // Phase 3: bookkeeping — one hold per map, never nested.
        {
            let mut records = self.records.lock();
            for (task, _, _) in &accepted {
                records.insert(task.id, TaskRecord::Queued);
            }
        }
        {
            let mut meta = self.task_meta.lock();
            for (task, _, _) in &accepted {
                meta.insert(task.id, (task.class, task.submitted_at));
            }
        }
        {
            let mut idem = self.idempotency.lock();
            for (task, _, key) in &accepted {
                if let Some(k) = key {
                    idem.insert(k.clone(), task.id);
                }
            }
        }
        for (task, _, _) in &accepted {
            // Session accounting failure after queue admission is not
            // actionable per-frame; the task is already accepted.
            let _ = self.sessions.record_task(&task.session);
        }
        for (task, _, _) in &accepted {
            self.registry.counter_add(
                "daemon_tasks_submitted_total",
                "Tasks accepted into the queue",
                labels(&[("class", task.class.as_str())]),
                1.0,
            );
        }
        // Phase 4: deferred journal appends; the dispatcher flushes the
        // parked batch with a single write + fsync (group commit).
        for (task, warnings, idempotency_key) in accepted {
            self.journal_append_deferred(&JournalRecord::TaskSubmitted {
                task,
                idempotency_key,
                warnings,
            });
        }
        outcomes
    }

    /// Everything submit does *before* the queue: session + idempotency
    /// checks, dev shot capping, validation/analysis, task construction,
    /// and the dev result cache. Shared verbatim by the single-submit and
    /// batch paths so they cannot drift.
    fn prepare_submit(
        &self,
        token: &str,
        mut ir: ProgramIr,
        mut hint: PatternHint,
        idempotency_key: Option<&str>,
    ) -> Result<Prepared, DaemonError> {
        let session = self.validate_session(token)?;
        if let Some(key) = idempotency_key {
            if let Some(&original) = self.idempotency.lock().get(key) {
                self.durability_metrics().deduped(session.class.as_str());
                return Ok(Prepared::Done(original));
            }
        }
        if session.class == PriorityClass::Development && ir.shots > self.cfg.dev_shot_cap {
            ir.shots = self.cfg.dev_shot_cap;
        }
        let mut pending_warnings: Vec<String> = Vec::new();
        if self.cfg.validate_on_submit || self.cfg.analyze_on_submit {
            let spec = self.device_spec()?;
            // Stale-validation detection: the client validated against an
            // older spec revision (or never validated). Either way the spec
            // checks below re-establish safety server-side.
            match ir.validated_against_revision {
                Some(rev) if rev != spec.revision => {
                    self.lint_metrics().stale_validation();
                    if !self.cfg.analyze_on_submit {
                        pending_warnings.push(format!(
                            "client validated against stale spec revision {rev} (current {})",
                            spec.revision
                        ));
                    }
                }
                _ => {}
            }
            if self.cfg.validate_on_submit {
                let violations = hpcqc_program::validate(&ir.sequence, &spec);
                if !violations.is_empty() {
                    self.registry.counter_add(
                        "daemon_tasks_rejected_total",
                        "Tasks rejected at validation",
                        labels(&[("class", session.class.as_str())]),
                        1.0,
                    );
                    return Err(DaemonError::Validation(
                        violations.iter().map(|v| v.to_string()).collect(),
                    ));
                }
            }
            if self.cfg.analyze_on_submit {
                let report = self.analyzer.analyze(&ir, Some(&spec));
                let lm = self.lint_metrics();
                for d in &report.diagnostics {
                    lm.diagnostic(d.code.as_str(), d.severity.as_str());
                }
                if report.has_errors() {
                    self.registry.counter_add(
                        "daemon_tasks_rejected_total",
                        "Tasks rejected at validation",
                        labels(&[("class", session.class.as_str())]),
                        1.0,
                    );
                    lm.rejection(session.class.as_str());
                    return Err(DaemonError::Validation(
                        report.errors().iter().map(|d| d.render()).collect(),
                    ));
                }
                // Cross-check the user's pattern hint against the inferred
                // one; adopt the inference when the user declared nothing.
                if let Some(inferred) = report.facts.inferred_hint {
                    if hint == PatternHint::None {
                        lm.hint_adopted(inferred.as_str());
                        hint = inferred;
                    } else if hint != inferred {
                        lm.hint_mismatch(hint.as_str(), inferred.as_str());
                        pending_warnings.push(format!(
                            "declared pattern hint '{}' contradicts inferred '{}' \
                             (keeping the declared hint)",
                            hint.as_str(),
                            inferred.as_str()
                        ));
                    }
                }
                pending_warnings.extend(report.warnings().iter().map(|d| d.render()));
            }
            // Accepted: server-side checks just ran against this revision.
            ir = ir.with_validation_revision(spec.revision);
        }
        let id = self.next_task.fetch_add(1, Ordering::Relaxed);
        if !pending_warnings.is_empty() {
            self.warnings.lock().insert(id, pending_warnings.clone());
        }
        let now = self.now();
        let task = QuantumTask {
            id,
            session: token.to_string(),
            user: session.user.clone(),
            class: session.class,
            ir: Arc::new(ir),
            hint,
            submitted_at: now,
        };
        if self.cfg.cache_dev_results && session.class == PriorityClass::Development {
            // Bind the lookup before the `if let`: a guard in the scrutinee
            // would live for the whole block, holding DEV_CACHE (rank 750)
            // across the lower-ranked records/task_meta locks and the
            // journal appends below (rank inversion caught by the strict
            // lock-order CI job).
            let cached = self.dev_cache.lock().get(&task.ir.fingerprint()).cloned();
            if let Some(cached) = cached {
                self.records
                    .lock()
                    .insert(id, TaskRecord::Completed(cached.clone()));
                self.task_meta.lock().insert(id, (session.class, now));
                self.sessions.record_task(token)?;
                if let Some(key) = idempotency_key {
                    self.idempotency.lock().insert(key.to_string(), id);
                }
                self.registry.counter_add(
                    "daemon_dev_cache_hits_total",
                    "Development tasks served from the result cache",
                    labels(&[("class", session.class.as_str())]),
                    1.0,
                );
                // journaled as submit + complete so replay lands on the same
                // terminal state (the cache itself is volatile)
                self.journal_append_deferred(&JournalRecord::TaskSubmitted {
                    task,
                    idempotency_key: idempotency_key.map(str::to_string),
                    warnings: pending_warnings,
                });
                self.journal_append_deferred(&JournalRecord::TaskCompleted {
                    id,
                    result: cached,
                    at: now,
                });
                return Ok(Prepared::Done(id));
            }
        }
        Ok(Prepared::Enqueue {
            task,
            warnings: pending_warnings,
            idempotency_key: idempotency_key.map(str::to_string),
        })
    }

    /// Task status.
    pub fn task_status(&self, id: u64) -> Result<DaemonTaskStatus, DaemonError> {
        // clone the record and release the records lock before touching the
        // queue: status polls must never hold two daemon locks at once
        let rec = self.records.lock().get(&id).cloned();
        match rec {
            None => Err(DaemonError::UnknownTask(id)),
            Some(TaskRecord::Queued) => {
                let now = self.now();
                let pos = self.queue.lock().position(id, now).unwrap_or(0);
                Ok(DaemonTaskStatus::Queued { position: pos })
            }
            Some(TaskRecord::Running) => Ok(DaemonTaskStatus::Running),
            Some(TaskRecord::Completed(_)) => Ok(DaemonTaskStatus::Completed),
            Some(TaskRecord::Failed(m)) => Ok(DaemonTaskStatus::Failed(m)),
            Some(TaskRecord::Cancelled) => Ok(DaemonTaskStatus::Cancelled),
        }
    }

    /// Warning-level analyzer findings recorded for a task at submission
    /// (empty when the analyzer found nothing or is disabled).
    pub fn task_warnings(&self, id: u64) -> Vec<String> {
        self.warnings.lock().get(&id).cloned().unwrap_or_default()
    }

    /// Fetch the result of a completed task.
    pub fn task_result(&self, id: u64) -> Result<SampleResult, DaemonError> {
        match self.records.lock().get(&id) {
            None => Err(DaemonError::UnknownTask(id)),
            Some(TaskRecord::Completed(r)) => Ok(r.clone()),
            Some(TaskRecord::Failed(m)) => Err(DaemonError::Internal(m.clone())),
            Some(_) => Err(DaemonError::Queue("task not completed".into())),
        }
    }

    /// Cancel a queued task (the owner's session token must match). The
    /// session's live-task count is refunded so a cancelled task does not
    /// consume quota forever.
    pub fn cancel(&self, token: &str, id: u64) -> Result<(), DaemonError> {
        self.validate_session(token)?;
        // queue decision first, then release the queue lock before touching
        // records/sessions/journal: cancellation never holds two locks
        {
            let mut q = self.queue.lock();
            match q.remove(id) {
                Some(t) if t.session == token => {}
                Some(t) => {
                    // not the owner: put it back untouched
                    q.push(t)
                        .expect("reinsert cannot exceed quota it just satisfied");
                    return Err(DaemonError::Forbidden(
                        "task belongs to another session".into(),
                    ));
                }
                None => {
                    drop(q);
                    return match self.records.lock().get(&id) {
                        None => Err(DaemonError::UnknownTask(id)),
                        Some(_) => Err(DaemonError::Queue("task is not queued".into())),
                    };
                }
            }
        }
        self.records.lock().insert(id, TaskRecord::Cancelled);
        // refund the quota slot the task was holding
        let _ = self.sessions.release_task(token);
        self.journal_append_deferred(&JournalRecord::TaskCancelled { id });
        Ok(())
    }

    // ---- execution loop ------------------------------------------------

    /// Dispatch and run the next task, honoring preemption. Returns the id
    /// of the task that made progress, or `None` when the queue is empty.
    ///
    /// Production tasks run as one batch. Lower classes run one
    /// `preempt_chunk_shots` slice; if a production task is waiting
    /// afterwards, the remainder is requeued (preemption at shot-batch
    /// boundaries, §3.3).
    pub fn pump_once(&self) -> Option<u64> {
        if self.health() == DaemonHealth::Stopped {
            return None;
        }
        let _dispatch = self.dispatch_lock.lock();
        self.gc_sessions();
        let task = self.take_batch(1).pop()?;
        let id = task.id;
        self.execute(task);
        Some(id)
    }

    /// Claim up to `max` dispatchable tasks and run them back-to-back under
    /// one `dispatch_lock` hold. The claim is a single queue+inflight lock
    /// acquisition, so a burst of submitters is never serialized against a
    /// per-task relock loop. Returns the number of tasks that made progress
    /// (0 = queue empty or daemon stopped).
    ///
    /// Dispatch order is fixed at claim time: a task submitted while the
    /// batch executes waits for the next batch, the same window a single
    /// in-flight task already imposes. Preemption still works — sliced
    /// tasks re-check [`TaskQueue::should_preempt`] after every chunk.
    pub fn pump_batch(&self, max: usize) -> usize {
        if self.health() == DaemonHealth::Stopped {
            return 0;
        }
        let _dispatch = self.dispatch_lock.lock();
        self.gc_sessions();
        let batch = self.take_batch(max.max(1));
        let n = batch.len();
        for task in batch {
            self.execute(task);
        }
        n
    }

    /// Pop up to `max` tasks in dispatch order, moving each into `inflight`
    /// under one queue+inflight lock hold (queue → inflight, the global
    /// order) so no snapshot can observe a task in neither or both places.
    fn take_batch(&self, max: usize) -> Vec<QuantumTask> {
        let now = self.now();
        let mut q = self.queue.lock();
        let mut inflight = self.inflight.lock();
        let batch = q.pop_batch(now, max);
        for t in &batch {
            inflight.insert(t.id, t.clone());
        }
        batch
    }

    /// Run one claimed task (already moved to `inflight`) to the end of its
    /// batch or slice and record the outcome. No queue/records lock is held
    /// across the QPU execution itself.
    fn execute(&self, task: QuantumTask) {
        let id = task.id;
        let now = self.now();
        self.records.lock().insert(id, TaskRecord::Running);

        // first time this task runs: record wait
        let first_run = self
            .progress
            .lock()
            .get(&id)
            .is_none_or(|p| p.shots_done == 0);
        if first_run {
            if let Some((class, submitted)) = self.task_meta.lock().get(&id).copied() {
                self.registry.histogram_observe(
                    "daemon_task_wait_seconds",
                    "Queue wait before first execution",
                    labels(&[("class", class.as_str())]),
                    &[1.0, 10.0, 60.0, 600.0, 3600.0],
                    now - submitted,
                );
            }
        }

        let res = self.pick_resource(id);
        self.journal_append(&JournalRecord::TaskDispatched {
            id,
            resource: res.resource_id().to_string(),
            at: now,
        });
        let outcome = if task.batched() {
            self.run_shots(&task, task.ir.shots, &res)
        } else {
            let done = self.progress.lock().get(&id).map_or(0, |p| p.shots_done);
            let remaining = task.ir.shots - done;
            let slice = remaining.min(self.cfg.preempt_chunk_shots);
            self.run_shots(&task, slice, &res)
        };

        match outcome {
            Err(m) => {
                let attempts = {
                    let mut failures = self.failures.lock();
                    let f = failures.entry(id).or_default();
                    f.attempts += 1;
                    f.excluded.insert(res.resource_id().to_string());
                    f.attempts
                };
                if attempts > self.cfg.max_task_retries {
                    // poison cap: stop burning device time on this task
                    self.failures.lock().remove(&id);
                    self.records
                        .lock()
                        .insert(id, TaskRecord::Failed(m.clone()));
                    self.progress.lock().remove(&id);
                    self.fault_metrics().poisoned(task.class.as_str());
                    self.inflight.lock().remove(&id);
                    self.journal_append(&JournalRecord::TaskFailed { id, error: m });
                } else {
                    // requeue for another attempt; partial progress is kept,
                    // and dispatch will avoid the resource that just failed
                    self.records.lock().insert(id, TaskRecord::Queued);
                    self.fault_metrics().requeue(task.class.as_str());
                    {
                        // queue + inflight together: the task must never be
                        // visible in both (snapshot would duplicate it) or
                        // neither (snapshot would lose it). Requeue via
                        // `restore`, not `push`: push re-checks the session
                        // quota, which other submissions may have exhausted
                        // since this task was admitted — the old
                        // `push().expect()` here could panic the dispatcher
                        // thread and wedge the daemon.
                        let mut q = self.queue.lock();
                        let mut inflight = self.inflight.lock();
                        q.restore(task).expect("requeued timestamp stays finite");
                        inflight.remove(&id);
                    }
                    self.journal_append(&JournalRecord::TaskAttemptFailed {
                        id,
                        resource: res.resource_id().to_string(),
                        error: m,
                    });
                }
            }
            Ok(partial) => {
                self.failures.lock().remove(&id);
                let mut progress = self.progress.lock();
                let p = progress.entry(id).or_default();
                p.shots_done += partial.shots;
                p.partial = Some(match p.partial.take() {
                    None => partial,
                    Some(prev) => merge_results(prev, partial),
                });
                let finished = p.shots_done >= task.ir.shots;
                if finished {
                    let result = p.partial.take().expect("merged at least one slice");
                    progress.remove(&id);
                    drop(progress);
                    if self.cfg.cache_dev_results && task.class == PriorityClass::Development {
                        self.dev_cache
                            .lock()
                            .insert(task.ir.fingerprint(), result.clone());
                    }
                    self.records
                        .lock()
                        .insert(id, TaskRecord::Completed(result.clone()));
                    self.registry.counter_add(
                        "daemon_tasks_completed_total",
                        "Tasks completed",
                        labels(&[("class", task.class.as_str())]),
                        1.0,
                    );
                    self.inflight.lock().remove(&id);
                    self.journal_append(&JournalRecord::TaskCompleted {
                        id,
                        result,
                        at: self.now(),
                    });
                } else {
                    drop(progress);
                    let class = task.class;
                    self.records.lock().insert(id, TaskRecord::Queued);
                    // preemption check + requeue of the remainder, with
                    // queue + inflight held together so the migrating task
                    // is always visible exactly once
                    let preempted = {
                        let mut q = self.queue.lock();
                        let mut inflight = self.inflight.lock();
                        let preempted = q.should_preempt(class, self.now());
                        // whether preempted or just sliced, the remainder
                        // queues again; priority order decides who goes next.
                        // `restore`, not `push`: the quota re-check in push
                        // can fail against a quota filled since admission,
                        // and a sliced task must never be dropped for it.
                        q.restore(task).expect("requeued timestamp stays finite");
                        inflight.remove(&id);
                        preempted
                    };
                    if preempted {
                        self.registry.counter_add(
                            "daemon_preemptions_total",
                            "Shot-boundary preemptions",
                            labels(&[("class", class.as_str())]),
                            1.0,
                        );
                    }
                    // shot-level progress is deliberately not journaled: a
                    // crash between slices replays the whole task
                    // (at-least-once per shot, exactly-once per task)
                    self.journal_append(&JournalRecord::TaskRequeued { id });
                }
            }
        }
    }

    /// The resource a dispatch of task `id` should use: the primary unless
    /// the task has already failed on it and an untried alternate exists.
    /// Exclusion is advisory — when every resource has failed once, the
    /// primary is used anyway rather than starving the task.
    fn pick_resource(&self, id: u64) -> Arc<dyn QuantumResource> {
        let failures = self.failures.lock();
        if let Some(f) = failures.get(&id) {
            if f.excluded.contains(self.resource.resource_id()) {
                if let Some(alt) = self
                    .alternates
                    .iter()
                    .find(|a| !f.excluded.contains(a.resource_id()))
                {
                    return Arc::clone(alt);
                }
            }
        }
        Arc::clone(&self.resource)
    }

    /// Run `shots` shots of `task` through the QRMI resource `res`,
    /// advancing the daemon clock by the execution time.
    fn run_shots(
        &self,
        task: &QuantumTask,
        shots: u32,
        res: &Arc<dyn QuantumResource>,
    ) -> Result<SampleResult, String> {
        let ir = ProgramIr {
            shots,
            ..(*task.ir).clone()
        };
        let lease = res.acquire().map_err(|e| e.to_string())?;
        let seed = self.seed.fetch_add(1, Ordering::Relaxed);
        let _ = seed; // resources seed internally; kept for interface stability
        let out = hpcqc_qrmi::run_to_completion(res.as_ref(), &lease, &ir, 10_000)
            .map_err(|e| e.to_string());
        res.release(&lease).map_err(|e| e.to_string())?;
        if let Ok(r) = &out {
            *self.clock.lock() += r.execution_secs;
            if let Some(f) = &self.fairshare {
                f.charge(&task.user, r.execution_secs, self.now());
            }
            self.registry.counter_add(
                "daemon_qpu_busy_seconds_total",
                "Device seconds consumed through the daemon",
                labels(&[("class", task.class.as_str())]),
                r.execution_secs,
            );
        }
        out
    }

    /// Drain the queue completely in batches of `pump_batch`. Returns the
    /// number of dispatches.
    pub fn pump(&self) -> usize {
        let mut n = 0;
        loop {
            let k = self.pump_batch(self.cfg.pump_batch);
            if k == 0 {
                break;
            }
            n += k;
            assert!(n < 1_000_000, "runaway pump loop");
        }
        n
    }

    /// Start a background dispatcher thread: the production deployment mode,
    /// where the daemon drains its queue continuously and clients only poll
    /// task status. Returns a handle that stops the thread when dropped.
    pub fn spawn_dispatcher(self: &Arc<Self>, idle_poll: std::time::Duration) -> DispatcherHandle {
        let svc = Arc::clone(self);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::SeqCst) {
                // A panicking handler (bad task, injected fault, poisoned
                // shim state) must not kill the dispatcher: the queue would
                // silently stop draining while submissions kept succeeding.
                let pumped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    svc.pump_batch(svc.cfg.pump_batch)
                }));
                match pumped {
                    Ok(0) => {
                        // quiescent: make any buffered group-commit batch
                        // durable before going to sleep
                        svc.sync_journal();
                        std::thread::sleep(idle_poll);
                    }
                    Ok(_) => {}
                    Err(_) => {
                        svc.registry.counter_add(
                            "daemon_dispatcher_panics_total",
                            "Dispatcher pump panics survived (task skipped)",
                            hpcqc_telemetry::Labels::new(),
                            1.0,
                        );
                        // back off briefly: a deterministic panic loop must
                        // not spin a core
                        std::thread::sleep(idle_poll);
                    }
                }
            }
        });
        DispatcherHandle {
            stop,
            thread: Some(thread),
        }
    }

    // ---- admin / observability surface ---------------------------------

    /// Combined Prometheus exposition: daemon metrics + device metrics.
    pub fn metrics_text(&self) -> String {
        // refresh per-lock contention/hold-time gauges on every scrape
        hpcqc_telemetry::export_lock_metrics(&self.registry);
        let mut out = self.registry.expose();
        if let Some(q) = &self.qpu_admin {
            out.push_str(&q.registry().expose());
        }
        out
    }

    /// Device status (admin).
    pub fn qpu_status(&self) -> Option<QpuStatus> {
        self.qpu_admin.as_ref().map(|q| q.status())
    }

    /// Set device status (admin; e.g. maintenance window).
    pub fn set_qpu_status(&self, s: QpuStatus) -> Result<(), DaemonError> {
        match &self.qpu_admin {
            Some(q) => {
                q.set_status(s);
                let status = qpu_status_str(s).to_string();
                *self.last_qpu_status.lock() = Some(status.clone());
                self.journal_append(&JournalRecord::QpuStatusChanged { status });
                Ok(())
            }
            None => Err(DaemonError::Forbidden(
                "no admin access to this resource".into(),
            )),
        }
    }

    /// Trigger a recalibration (admin).
    pub fn recalibrate(&self, duration_secs: f64) -> Result<(), DaemonError> {
        match &self.qpu_admin {
            Some(q) => {
                q.recalibrate(duration_secs);
                Ok(())
            }
            None => Err(DaemonError::Forbidden(
                "no admin access to this resource".into(),
            )),
        }
    }

    /// Query device telemetry history (admin/user observability).
    pub fn telemetry_range(&self, series: &str, from: f64, to: f64) -> Vec<hpcqc_telemetry::Point> {
        match &self.qpu_admin {
            Some(q) => q.tsdb().range(series, from, to),
            None => Vec::new(),
        }
    }

    /// Queue depth (monitoring).
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().len()
    }

    /// Resources task `id` has failed on so far (advisory dispatch
    /// exclusion; empty for tasks with no failure history). Sorted.
    pub fn excluded_resources(&self, id: u64) -> Vec<String> {
        let mut v: Vec<String> = self
            .failures
            .lock()
            .get(&id)
            .map(|f| f.excluded.iter().cloned().collect())
            .unwrap_or_default();
        v.sort();
        v
    }
}

/// Stops the background dispatcher thread when dropped.
pub struct DispatcherHandle {
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for DispatcherHandle {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// String forms of [`QpuStatus`] used in journal records.
fn qpu_status_str(s: QpuStatus) -> &'static str {
    match s {
        QpuStatus::Operational => "operational",
        QpuStatus::Calibrating => "calibrating",
        QpuStatus::Maintenance => "maintenance",
        QpuStatus::Down => "down",
    }
}

fn parse_qpu_status(s: &str) -> Option<QpuStatus> {
    match s {
        "operational" => Some(QpuStatus::Operational),
        "calibrating" => Some(QpuStatus::Calibrating),
        "maintenance" => Some(QpuStatus::Maintenance),
        "down" => Some(QpuStatus::Down),
        _ => None,
    }
}

/// Per-task status while folding the journal.
enum ReplayTaskStatus {
    Queued,
    Running,
    Completed(SampleResult),
    Failed(String),
    Cancelled,
}

/// Daemon state reconstructed by folding the WAL tail over the snapshot.
struct ReplayState {
    clock: f64,
    next_task: u64,
    session_counter: u64,
    sessions: Vec<Session>,
    /// Tasks to requeue, arrival order.
    queued: Vec<QuantumTask>,
    completed: Vec<(u64, SampleResult)>,
    failed: Vec<(u64, String)>,
    cancelled: Vec<u64>,
    task_meta: HashMap<u64, (PriorityClass, f64)>,
    failures: HashMap<u64, FailureState>,
    warnings: HashMap<u64, Vec<String>>,
    idempotency: HashMap<String, u64>,
    qpu_status: Option<String>,
    /// Tasks that were mid-dispatch at crash time, now requeued.
    requeued_inflight: usize,
}

impl ReplayState {
    fn build(replay: crate::journal::Replay) -> ReplayState {
        let snap = replay.snapshot.unwrap_or_default();
        let mut clock = snap.clock;
        let mut next_task = snap.next_task;
        let mut session_counter = snap.session_counter;
        let mut sessions: HashMap<String, Session> = snap
            .sessions
            .into_iter()
            .map(|s| (s.token.clone(), s))
            .collect();
        let mut tasks: HashMap<u64, QuantumTask> = HashMap::new();
        let mut status: HashMap<u64, ReplayTaskStatus> = HashMap::new();
        for task in snap.queued {
            status.insert(task.id, ReplayTaskStatus::Queued);
            tasks.insert(task.id, task);
        }
        for (id, r) in snap.completed {
            status.insert(id, ReplayTaskStatus::Completed(r));
        }
        for (id, m) in snap.failed {
            status.insert(id, ReplayTaskStatus::Failed(m));
        }
        for id in snap.cancelled {
            status.insert(id, ReplayTaskStatus::Cancelled);
        }
        let mut task_meta: HashMap<u64, (PriorityClass, f64)> = snap
            .task_meta
            .into_iter()
            .map(|(id, class, at)| (id, (class, at)))
            .collect();
        let mut failures: HashMap<u64, FailureState> = snap
            .failures
            .into_iter()
            .map(|(id, attempts, excluded)| {
                (
                    id,
                    FailureState {
                        attempts,
                        excluded: excluded.into_iter().collect(),
                    },
                )
            })
            .collect();
        let mut warnings: HashMap<u64, Vec<String>> = snap.warnings.into_iter().collect();
        let mut idempotency: HashMap<String, u64> = snap.idempotency.into_iter().collect();
        let mut qpu_status = snap.qpu_status;

        for rec in replay.records {
            match rec {
                JournalRecord::SessionOpened { session } => {
                    // the token embeds the counter value ("sess-{n}-…"):
                    // keep the mint watermark ahead of every replayed token
                    if let Some(n) = session
                        .token
                        .split('-')
                        .nth(1)
                        .and_then(|n| n.parse::<u64>().ok())
                    {
                        session_counter = session_counter.max(n + 1);
                    }
                    sessions.insert(session.token.clone(), session);
                }
                JournalRecord::SessionClosed { token } => {
                    sessions.remove(&token);
                }
                JournalRecord::SessionsExpired { tokens } => {
                    for t in &tokens {
                        sessions.remove(t);
                    }
                }
                JournalRecord::TaskSubmitted {
                    task,
                    idempotency_key,
                    warnings: w,
                } => {
                    clock = clock.max(task.submitted_at);
                    next_task = next_task.max(task.id + 1);
                    task_meta.insert(task.id, (task.class, task.submitted_at));
                    if !w.is_empty() {
                        warnings.insert(task.id, w);
                    }
                    if let Some(key) = idempotency_key {
                        idempotency.insert(key, task.id);
                    }
                    if let Some(s) = sessions.get_mut(&task.session) {
                        s.task_count += 1;
                    }
                    status.insert(task.id, ReplayTaskStatus::Queued);
                    tasks.insert(task.id, task);
                }
                JournalRecord::TaskDispatched { id, at, .. } => {
                    clock = clock.max(at);
                    status.insert(id, ReplayTaskStatus::Running);
                }
                JournalRecord::TaskRequeued { id } => {
                    status.insert(id, ReplayTaskStatus::Queued);
                }
                JournalRecord::TaskAttemptFailed { id, resource, .. } => {
                    let f = failures.entry(id).or_default();
                    f.attempts += 1;
                    f.excluded.insert(resource);
                    status.insert(id, ReplayTaskStatus::Queued);
                }
                JournalRecord::TaskCompleted { id, result, at } => {
                    clock = clock.max(at);
                    failures.remove(&id);
                    status.insert(id, ReplayTaskStatus::Completed(result));
                }
                JournalRecord::TaskFailed { id, error } => {
                    failures.remove(&id);
                    status.insert(id, ReplayTaskStatus::Failed(error));
                }
                JournalRecord::TaskCancelled { id } => {
                    if let Some(task) = tasks.get(&id) {
                        if let Some(s) = sessions.get_mut(&task.session) {
                            s.task_count = s.task_count.saturating_sub(1);
                        }
                    }
                    status.insert(id, ReplayTaskStatus::Cancelled);
                }
                JournalRecord::QpuStatusChanged { status } => {
                    qpu_status = Some(status);
                }
                JournalRecord::ClockAdvanced { to } => {
                    clock = clock.max(to);
                }
            }
        }

        let mut queued = Vec::new();
        let mut completed = Vec::new();
        let mut failed = Vec::new();
        let mut cancelled = Vec::new();
        let mut requeued_inflight = 0usize;
        for (id, st) in status {
            match st {
                ReplayTaskStatus::Queued | ReplayTaskStatus::Running => {
                    if matches!(st, ReplayTaskStatus::Running) {
                        // mid-dispatch at crash time: no durable result was
                        // journaled, so the work effectively never happened —
                        // requeue it (excluded resources survive in
                        // `failures`)
                        requeued_inflight += 1;
                    }
                    if let Some(task) = tasks.remove(&id) {
                        queued.push(task);
                    }
                }
                ReplayTaskStatus::Completed(r) => completed.push((id, r)),
                ReplayTaskStatus::Failed(m) => failed.push((id, m)),
                ReplayTaskStatus::Cancelled => cancelled.push(id),
            }
        }
        queued.sort_by(|a, b| {
            a.submitted_at
                .total_cmp(&b.submitted_at)
                .then(a.id.cmp(&b.id))
        });
        let mut sessions: Vec<Session> = sessions.into_values().collect();
        sessions.sort_by(|a, b| a.token.cmp(&b.token));
        // retain failure/meta/warning state only for live tasks
        failures.retain(|id, _| queued.iter().any(|t| t.id == *id));
        let live: HashSet<u64> = queued
            .iter()
            .map(|t| t.id)
            .chain(completed.iter().map(|(id, _)| *id))
            .chain(failed.iter().map(|(id, _)| *id))
            .chain(cancelled.iter().copied())
            .collect();
        task_meta.retain(|id, _| live.contains(id));
        warnings.retain(|id, _| live.contains(id));

        ReplayState {
            clock,
            next_task,
            session_counter,
            sessions,
            queued,
            completed,
            failed,
            cancelled,
            task_meta,
            failures,
            warnings,
            idempotency,
            qpu_status,
            requeued_inflight,
        }
    }
}

/// Merge two sample results of the same program (chunked execution).
fn merge_results(mut a: SampleResult, b: SampleResult) -> SampleResult {
    assert_eq!(
        a.n_qubits, b.n_qubits,
        "merging results of different registers"
    );
    for (bits, count) in b.counts {
        *a.counts.entry(bits).or_insert(0) += count;
    }
    a.shots += b.shots;
    a.execution_secs += b.execution_secs;
    a.truncation_error = a.truncation_error.max(b.truncation_error);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_emulator::SvBackend;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};
    use hpcqc_qrmi::{LocalEmulatorResource, QpuDirectResource};

    fn ir(shots: u32) -> ProgramIr {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "test")
    }

    fn emu_daemon(cfg: DaemonConfig) -> MiddlewareService {
        let res = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        MiddlewareService::new(res, cfg)
    }

    fn qpu_daemon(cfg: DaemonConfig) -> (MiddlewareService, VirtualQpu) {
        let qpu = VirtualQpu::new("fresnel-1", 7);
        let res = Arc::new(QpuDirectResource::new("fresnel-1", qpu.clone(), 1));
        (
            MiddlewareService::new(res, cfg).with_qpu_admin(qpu.clone()),
            qpu,
        )
    }

    #[test]
    fn submit_run_fetch_happy_path() {
        let d = emu_daemon(DaemonConfig::default());
        let tok = d.open_session("alice", PriorityClass::Production).unwrap();
        let id = d.submit(&tok, ir(50), PatternHint::None).unwrap();
        assert!(matches!(
            d.task_status(id).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
        d.pump();
        assert_eq!(d.task_status(id).unwrap(), DaemonTaskStatus::Completed);
        let r = d.task_result(id).unwrap();
        assert_eq!(r.shots, 50);
    }

    #[test]
    fn submission_requires_valid_session() {
        let d = emu_daemon(DaemonConfig::default());
        assert!(matches!(
            d.submit("bogus", ir(10), PatternHint::None),
            Err(DaemonError::Session(SessionError::UnknownToken))
        ));
    }

    #[test]
    fn dev_shot_cap_applied() {
        let d = emu_daemon(DaemonConfig {
            dev_shot_cap: 20,
            ..DaemonConfig::default()
        });
        let tok = d.open_session("dev", PriorityClass::Development).unwrap();
        let id = d.submit(&tok, ir(1000), PatternHint::None).unwrap();
        d.pump();
        assert_eq!(
            d.task_result(id).unwrap().shots,
            20,
            "dev capped at 20 shots"
        );
        // production is not capped
        let ptok = d.open_session("prod", PriorityClass::Production).unwrap();
        let pid = d.submit(&ptok, ir(1000), PatternHint::None).unwrap();
        d.pump();
        assert_eq!(d.task_result(pid).unwrap().shots, 1000);
    }

    #[test]
    fn server_side_validation_rejects_bad_program() {
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Test).unwrap();
        let reg = Register::linear(2, 1.0).unwrap(); // violates 5 µm min distance
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        let bad = ProgramIr::new(b.build().unwrap(), 10, "test");
        match d.submit(&tok, bad, PatternHint::None) {
            Err(DaemonError::Validation(v)) => assert!(!v.is_empty()),
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn analyzer_rejects_error_diagnostics() {
        // shots exceed the production envelope: `validate()` alone would let
        // this through (it only checks the sequence), but the analyzer's
        // HQ0108 shot-range lint is Error-level and must reject.
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Production).unwrap();
        match d.submit(&tok, ir(5000), PatternHint::None) {
            Err(DaemonError::Validation(v)) => {
                assert!(v.iter().any(|m| m.contains("HQ0108")), "{v:?}");
            }
            other => panic!("expected validation error, got {other:?}"),
        }
        let text = d.metrics_text();
        assert!(text.contains("daemon_lint_rejections_total{class=\"production\"} 1"));
        assert!(text.contains("analysis_diagnostics_total{code=\"HQ0108\",severity=\"error\"} 1"));
    }

    #[test]
    fn hint_mismatch_recorded_for_mislabeled_pattern() {
        // ~50 s of QPU time vs 1 ms classical: clearly QC-heavy, yet the
        // user declared CC-heavy. The daemon keeps the declared hint but
        // flags the contradiction in metrics and the job record.
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Production).unwrap();
        let id = d
            .submit(
                &tok,
                ir(50).with_classical_estimate(0.001),
                PatternHint::CcHeavy,
            )
            .unwrap();
        assert!(d
            .metrics_text()
            .contains("daemon_hint_mismatch_total{declared=\"cc-heavy\",inferred=\"qc-heavy\"} 1"));
        let warnings = d.task_warnings(id);
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("contradicts inferred 'qc-heavy'")),
            "{warnings:?}"
        );
    }

    #[test]
    fn inferred_hint_adopted_when_undeclared() {
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Production).unwrap();
        let id = d
            .submit(
                &tok,
                ir(50).with_classical_estimate(1.0e6),
                PatternHint::None,
            )
            .unwrap();
        assert!(d
            .metrics_text()
            .contains("daemon_hint_adopted_total{hint=\"cc-heavy\"} 1"));
        // adoption is silent: no warning recorded for it
        assert!(d.task_warnings(id).is_empty(), "{:?}", d.task_warnings(id));
    }

    #[test]
    fn stale_validation_surfaces_warning_and_counter() {
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Production).unwrap();
        let current = d.device_spec().unwrap().revision;
        let id = d
            .submit(
                &tok,
                ir(50).with_validation_revision(current + 7),
                PatternHint::None,
            )
            .unwrap();
        assert!(d.metrics_text().contains("daemon_stale_validation_total 1"));
        let warnings = d.task_warnings(id);
        assert!(
            warnings.iter().any(|w| w.contains("HQ0701")),
            "{warnings:?}"
        );
        // a fresh revision stays quiet
        let id2 = d
            .submit(
                &tok,
                ir(50).with_validation_revision(current),
                PatternHint::None,
            )
            .unwrap();
        assert!(d.task_warnings(id2).is_empty());
        assert!(d.metrics_text().contains("daemon_stale_validation_total 1"));
    }

    #[test]
    fn priority_order_respected_across_sessions() {
        let d = emu_daemon(DaemonConfig::default());
        let dev = d.open_session("dev", PriorityClass::Development).unwrap();
        let prod = d.open_session("prod", PriorityClass::Production).unwrap();
        let d1 = d.submit(&dev, ir(10), PatternHint::None).unwrap();
        let p1 = d.submit(&prod, ir(10), PatternHint::None).unwrap();
        // production dispatches first even though it queued second
        let first = d.pump_once().unwrap();
        assert_eq!(first, p1);
        let _ = d1;
    }

    #[test]
    fn production_preempts_development_at_shot_boundary() {
        let (d, qpu) = qpu_daemon(DaemonConfig {
            preempt_chunk_shots: 5,
            dev_shot_cap: 50,
            ..DaemonConfig::default()
        });
        let dev = d.open_session("dev", PriorityClass::Development).unwrap();
        let prod = d.open_session("prod", PriorityClass::Production).unwrap();
        let dev_id = d.submit(&dev, ir(50), PatternHint::None).unwrap();
        // dev starts: one 5-shot slice runs
        assert_eq!(d.pump_once().unwrap(), dev_id);
        assert!(matches!(
            d.task_status(dev_id).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
        // production arrives mid-flight
        let prod_id = d.submit(&prod, ir(20), PatternHint::None).unwrap();
        // next dispatch must be the production task, not dev's remainder
        assert_eq!(d.pump_once().unwrap(), prod_id);
        assert_eq!(d.task_status(prod_id).unwrap(), DaemonTaskStatus::Completed);
        // dev remainder completes afterwards with all 50 shots accounted
        d.pump();
        assert_eq!(d.task_status(dev_id).unwrap(), DaemonTaskStatus::Completed);
        assert_eq!(d.task_result(dev_id).unwrap().shots, 50);
        let (jobs, shots) = qpu.stats();
        assert!(jobs >= 11, "10 dev slices + 1 prod batch, got {jobs}");
        assert_eq!(shots, 70);
    }

    #[test]
    fn cancel_queued_task_requires_ownership() {
        let d = emu_daemon(DaemonConfig::default());
        let a = d.open_session("a", PriorityClass::Test).unwrap();
        let b = d.open_session("b", PriorityClass::Test).unwrap();
        let id = d.submit(&a, ir(10), PatternHint::None).unwrap();
        assert!(matches!(d.cancel(&b, id), Err(DaemonError::Forbidden(_))));
        d.cancel(&a, id).unwrap();
        assert_eq!(d.task_status(id).unwrap(), DaemonTaskStatus::Cancelled);
        // cancelled task no longer runs
        assert_eq!(d.pump(), 0);
    }

    #[test]
    fn queue_position_reported() {
        let d = emu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Test).unwrap();
        let a = d.submit(&tok, ir(10), PatternHint::None).unwrap();
        let b = d.submit(&tok, ir(10), PatternHint::None).unwrap();
        assert_eq!(
            d.task_status(a).unwrap(),
            DaemonTaskStatus::Queued { position: 0 }
        );
        assert_eq!(
            d.task_status(b).unwrap(),
            DaemonTaskStatus::Queued { position: 1 }
        );
        assert_eq!(d.queue_depth(), 2);
    }

    #[test]
    fn admin_surface_requires_device() {
        let d = emu_daemon(DaemonConfig::default());
        assert!(d.qpu_status().is_none());
        assert!(matches!(
            d.recalibrate(60.0),
            Err(DaemonError::Forbidden(_))
        ));
        let (d2, _) = qpu_daemon(DaemonConfig::default());
        assert_eq!(d2.qpu_status(), Some(QpuStatus::Operational));
        d2.set_qpu_status(QpuStatus::Maintenance).unwrap();
        assert_eq!(d2.qpu_status(), Some(QpuStatus::Maintenance));
        d2.recalibrate(60.0).unwrap();
    }

    #[test]
    fn metrics_text_covers_daemon_and_device() {
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Production).unwrap();
        let id = d.submit(&tok, ir(5), PatternHint::None).unwrap();
        d.pump();
        let _ = d.task_result(id).unwrap();
        let text = d.metrics_text();
        assert!(text.contains("daemon_tasks_submitted_total{class=\"production\"} 1"));
        assert!(text.contains("daemon_tasks_completed_total"));
        assert!(text.contains("qpu_jobs_total"), "device metrics merged in");
    }

    #[test]
    fn telemetry_range_exposes_calibration_history() {
        let (d, _) = qpu_daemon(DaemonConfig::default());
        d.advance_time(100.0);
        d.advance_time(100.0);
        let pts = d.telemetry_range("qpu_rabi_scale", 0.0, 1e9);
        assert!(pts.len() >= 2, "calibration history recorded");
    }

    #[test]
    fn background_dispatcher_drains_queue_without_pumping() {
        let d = Arc::new(emu_daemon(DaemonConfig::default()));
        let _dispatcher = d.spawn_dispatcher(std::time::Duration::from_millis(5));
        let tok = d.open_session("bg", PriorityClass::Test).unwrap();
        let id = d.submit(&tok, ir(30), PatternHint::None).unwrap();
        // no pump() calls: the dispatcher thread must complete the task
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match d.task_status(id).unwrap() {
                DaemonTaskStatus::Completed => break,
                DaemonTaskStatus::Failed(m) => panic!("task failed: {m}"),
                _ => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "dispatcher did not finish the task in time"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }
        assert_eq!(d.task_result(id).unwrap().shots, 30);
    }

    #[test]
    fn dispatcher_handle_drop_stops_thread() {
        let d = Arc::new(emu_daemon(DaemonConfig::default()));
        let dispatcher = d.spawn_dispatcher(std::time::Duration::from_millis(5));
        drop(dispatcher); // joins the thread; must not hang or panic
                          // after the dispatcher is gone, tasks stay queued until pumped
        let tok = d.open_session("x", PriorityClass::Test).unwrap();
        let id = d.submit(&tok, ir(5), PatternHint::None).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(matches!(
            d.task_status(id).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
    }

    #[test]
    fn fairshare_demotes_heavy_user_within_class() {
        let (d, _) = qpu_daemon(DaemonConfig {
            queue: QueueConfig {
                aging_secs: 0.0,
                fairshare_weight: 0.9,
                fairshare_scale_secs: 10.0,
                ..QueueConfig::default()
            },
            ..DaemonConfig::default()
        });
        let hog = d.open_session("hog", PriorityClass::Test).unwrap();
        let light = d.open_session("light", PriorityClass::Test).unwrap();
        // the hog burns device time first (1 Hz QPU: 60 shots ≈ 63 s usage)
        let warm = d.submit(&hog, ir(60), PatternHint::None).unwrap();
        d.pump();
        assert_eq!(d.task_status(warm).unwrap(), DaemonTaskStatus::Completed);
        // now both queue a task; the hog submitted FIRST but the light user
        // dispatches first thanks to fair-share
        let hog_task = d.submit(&hog, ir(5), PatternHint::None).unwrap();
        let light_task = d.submit(&light, ir(5), PatternHint::None).unwrap();
        assert_eq!(
            d.pump_once().unwrap(),
            light_task,
            "light user overtakes the hog"
        );
        assert_eq!(d.pump_once().unwrap(), hog_task);
    }

    #[test]
    fn dev_cache_serves_repeated_programs_without_device_time() {
        let (d, qpu) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("dev", PriorityClass::Development).unwrap();
        let a = d.submit(&tok, ir(20), PatternHint::None).unwrap();
        d.pump();
        let first = d.task_result(a).unwrap();
        let (jobs_before, shots_before) = qpu.stats();
        // identical program again: served from cache, no new device job
        let b = d.submit(&tok, ir(20), PatternHint::None).unwrap();
        assert_eq!(d.task_status(b).unwrap(), DaemonTaskStatus::Completed);
        assert_eq!(d.task_result(b).unwrap(), first);
        assert_eq!(
            qpu.stats(),
            (jobs_before, shots_before),
            "no extra QPU work"
        );
        assert!(d
            .metrics_text()
            .contains("daemon_dev_cache_hits_total{class=\"development\"} 1"));
        // a different program misses the cache
        let c = d.submit(&tok, ir(21), PatternHint::None).unwrap();
        assert!(matches!(
            d.task_status(c).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
    }

    #[test]
    fn production_results_are_never_cached() {
        let (d, qpu) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("prod", PriorityClass::Production).unwrap();
        d.submit(&tok, ir(10), PatternHint::None).unwrap();
        d.pump();
        let (jobs1, _) = qpu.stats();
        d.submit(&tok, ir(10), PatternHint::None).unwrap();
        d.pump();
        let (jobs2, _) = qpu.stats();
        assert_eq!(jobs2, jobs1 + 1, "production always re-executes");
    }

    #[test]
    fn sessions_expire_after_ttl() {
        let d = emu_daemon(DaemonConfig {
            session_ttl_secs: 100.0,
            ..DaemonConfig::default()
        });
        let tok = d.open_session("idle", PriorityClass::Test).unwrap();
        d.advance_time(50.0);
        assert!(
            d.submit(&tok, ir(5), PatternHint::None).is_ok(),
            "still fresh"
        );
        d.advance_time(100.0);
        assert!(matches!(
            d.submit(&tok, ir(5), PatternHint::None),
            Err(DaemonError::Session(SessionError::UnknownToken))
        ));
        assert!(d.metrics_text().contains("daemon_sessions_expired_total 1"));
    }

    mod requeue {
        use super::*;
        use hpcqc_qrmi::{FaultInjector, FaultProfile};

        fn flaky_daemon(profile: FaultProfile, cfg: DaemonConfig) -> MiddlewareService {
            let inner = Arc::new(LocalEmulatorResource::new(
                "emu",
                Arc::new(SvBackend::default()),
                1,
            ));
            MiddlewareService::new(Arc::new(FaultInjector::new(inner, profile, 23)), cfg)
        }

        #[test]
        fn transient_failures_requeue_until_completion() {
            let d = flaky_daemon(
                FaultProfile {
                    task_failure_rate: 0.3,
                    ..FaultProfile::none()
                },
                DaemonConfig {
                    max_task_retries: 20,
                    ..DaemonConfig::default()
                },
            );
            let tok = d.open_session("alice", PriorityClass::Production).unwrap();
            let ids: Vec<u64> = (0..10)
                .map(|_| d.submit(&tok, ir(20), PatternHint::None).unwrap())
                .collect();
            d.pump();
            for id in &ids {
                assert_eq!(d.task_status(*id).unwrap(), DaemonTaskStatus::Completed);
                assert_eq!(d.task_result(*id).unwrap().shots, 20);
            }
            assert!(
                d.metrics_text()
                    .contains("daemon_task_requeues_total{class=\"production\"}"),
                "a 30%-failure resource must cost requeues"
            );
        }

        #[test]
        fn poison_cap_fails_task_permanently() {
            let d = flaky_daemon(
                FaultProfile {
                    task_failure_rate: 1.0,
                    ..FaultProfile::none()
                },
                DaemonConfig {
                    max_task_retries: 2,
                    ..DaemonConfig::default()
                },
            );
            let tok = d.open_session("bob", PriorityClass::Production).unwrap();
            let id = d.submit(&tok, ir(5), PatternHint::None).unwrap();
            assert_eq!(d.pump(), 3, "initial attempt + 2 requeues");
            assert!(matches!(
                d.task_status(id).unwrap(),
                DaemonTaskStatus::Failed(_)
            ));
            let text = d.metrics_text();
            assert!(text.contains("daemon_task_requeues_total{class=\"production\"} 2"));
            assert!(text.contains("daemon_tasks_poisoned_total{class=\"production\"} 1"));
        }

        #[test]
        fn requeued_task_moves_to_alternate_resource() {
            let dead = FaultProfile {
                task_failure_rate: 1.0,
                ..FaultProfile::none()
            };
            let d = flaky_daemon(dead, DaemonConfig::default()).with_alternate_resource(Arc::new(
                LocalEmulatorResource::new("emu-backup", Arc::new(SvBackend::default()), 2),
            ));
            let tok = d.open_session("carol", PriorityClass::Production).unwrap();
            let id = d.submit(&tok, ir(15), PatternHint::None).unwrap();
            d.pump();
            // the primary always fails, so completion proves the second
            // dispatch excluded it and ran on the backup emulator
            assert_eq!(d.task_status(id).unwrap(), DaemonTaskStatus::Completed);
            assert_eq!(d.task_result(id).unwrap().shots, 15);
            assert!(d.metrics_text().contains("daemon_task_requeues_total"));
        }

        #[test]
        fn exclusion_is_advisory_without_alternates() {
            // every resource (there is only one) has failed once: dispatch
            // must still try the primary instead of starving the task
            let d = flaky_daemon(
                FaultProfile {
                    task_failure_rate: 0.6,
                    ..FaultProfile::none()
                },
                DaemonConfig {
                    max_task_retries: 50,
                    ..DaemonConfig::default()
                },
            );
            let tok = d.open_session("dave", PriorityClass::Test).unwrap();
            let id = d.submit(&tok, ir(10), PatternHint::None).unwrap();
            d.pump();
            assert_eq!(d.task_status(id).unwrap(), DaemonTaskStatus::Completed);
        }

        /// Delegates to a real emulator, but the first `task_start` fires a
        /// one-shot hook *while the task is in flight* and then fails,
        /// forcing the daemon down the requeue path with whatever state the
        /// hook set up. `execute` holds no queue/session lock across the
        /// resource call, so the hook may call back into the daemon.
        struct MidFlightHookResource {
            inner: LocalEmulatorResource,
            hook: std::sync::Mutex<Option<Box<dyn FnOnce() + Send>>>,
        }

        impl hpcqc_qrmi::QuantumResource for MidFlightHookResource {
            fn resource_id(&self) -> &str {
                self.inner.resource_id()
            }
            fn resource_type(&self) -> hpcqc_qrmi::ResourceType {
                self.inner.resource_type()
            }
            fn acquire(&self) -> Result<hpcqc_qrmi::AcquisitionToken, hpcqc_qrmi::QrmiError> {
                self.inner.acquire()
            }
            fn release(
                &self,
                token: &hpcqc_qrmi::AcquisitionToken,
            ) -> Result<(), hpcqc_qrmi::QrmiError> {
                self.inner.release(token)
            }
            fn target(&self) -> Result<DeviceSpec, hpcqc_qrmi::QrmiError> {
                self.inner.target()
            }
            fn task_start(
                &self,
                token: &hpcqc_qrmi::AcquisitionToken,
                ir: &ProgramIr,
            ) -> Result<hpcqc_qrmi::TaskId, hpcqc_qrmi::QrmiError> {
                // take the hook in its own statement: `if let` would hold
                // the guard across `hook()`, and a panicking hook must
                // poison nothing (the hazard this file's tests are about)
                let hook = self.hook.lock().unwrap_or_else(|e| e.into_inner()).take();
                if let Some(hook) = hook {
                    hook();
                    return Err(hpcqc_qrmi::QrmiError::Backend(
                        "injected mid-flight failure".into(),
                    ));
                }
                self.inner.task_start(token, ir)
            }
            fn task_status(
                &self,
                task: &hpcqc_qrmi::TaskId,
            ) -> Result<hpcqc_qrmi::TaskStatus, hpcqc_qrmi::QrmiError> {
                self.inner.task_status(task)
            }
            fn task_stop(&self, task: &hpcqc_qrmi::TaskId) -> Result<(), hpcqc_qrmi::QrmiError> {
                self.inner.task_stop(task)
            }
            fn task_result(
                &self,
                task: &hpcqc_qrmi::TaskId,
            ) -> Result<SampleResult, hpcqc_qrmi::QrmiError> {
                self.inner.task_result(task)
            }
            fn metadata(&self) -> std::collections::BTreeMap<String, String> {
                self.inner.metadata()
            }
        }

        /// Regression test for the requeue/quota panic hazard: a task that
        /// fails mid-flight must be requeued even when other submissions
        /// have exhausted the session quota since it was admitted. The old
        /// path used `queue.push(task).expect(..)` — push re-checks the
        /// quota, so this exact schedule returned `SessionQuotaExceeded`
        /// and panicked the dispatcher. `restore` skips the re-check (the
        /// task was already admitted once).
        #[test]
        fn requeue_of_failed_task_survives_exhausted_session_quota() {
            let res = Arc::new(MidFlightHookResource {
                inner: LocalEmulatorResource::new("emu", Arc::new(SvBackend::default()), 1),
                hook: std::sync::Mutex::new(None),
            });
            let d = Arc::new(MiddlewareService::new(
                res.clone() as Arc<dyn QuantumResource>,
                DaemonConfig {
                    queue: QueueConfig {
                        max_tasks_per_session: 1,
                        ..QueueConfig::default()
                    },
                    ..DaemonConfig::default()
                },
            ));
            let tok = d.open_session("erin", PriorityClass::Production).unwrap();
            let first = d.submit(&tok, ir(5), PatternHint::None).unwrap();
            // While `first` is claimed (in flight, not counted against the
            // quota), a second submission fills the session quota.
            let second = Arc::new(std::sync::Mutex::new(None));
            {
                let (d2, tok2, second) = (Arc::clone(&d), tok.clone(), Arc::clone(&second));
                *res.hook.lock().unwrap() = Some(Box::new(move || {
                    *second.lock().unwrap() =
                        Some(d2.submit(&tok2, ir(5), PatternHint::None).unwrap());
                }));
            }
            d.pump(); // must not panic requeuing `first`
            let second = second.lock().unwrap().take().expect("hook ran");
            assert_eq!(d.task_status(first).unwrap(), DaemonTaskStatus::Completed);
            assert_eq!(d.task_status(second).unwrap(), DaemonTaskStatus::Completed);
            assert!(
                d.metrics_text().contains("daemon_task_requeues_total"),
                "the injected failure must have cost a requeue"
            );
        }

        /// A handler that panics mid-task (with the emulator lease held and
        /// the dispatch lock poisoned) must not kill the dispatcher thread
        /// or wedge the daemon: the panic is counted, and later tasks still
        /// run to completion.
        #[test]
        fn dispatcher_survives_panicking_handler() {
            let res = Arc::new(MidFlightHookResource {
                // capacity 2: the panic leaks one lease (unwinding skips the
                // release), later tasks use the second slot
                inner: LocalEmulatorResource::new("emu", Arc::new(SvBackend::default()), 2),
                hook: std::sync::Mutex::new(Some(Box::new(|| panic!("injected handler panic")))),
            });
            let d = Arc::new(MiddlewareService::new(
                res as Arc<dyn QuantumResource>,
                DaemonConfig::default(),
            ));
            let tok = d.open_session("frank", PriorityClass::Production).unwrap();
            d.submit(&tok, ir(5), PatternHint::None).unwrap();
            let dispatcher = d.spawn_dispatcher(std::time::Duration::from_millis(1));
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while !d
                .metrics_text()
                .contains("daemon_dispatcher_panics_total 1")
            {
                assert!(
                    std::time::Instant::now() < deadline,
                    "dispatcher never reported the survived panic"
                );
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            // the daemon is still alive: a fresh task completes normally
            let second = d.submit(&tok, ir(5), PatternHint::None).unwrap();
            while d.task_status(second).unwrap() != DaemonTaskStatus::Completed {
                assert!(
                    std::time::Instant::now() < deadline,
                    "daemon wedged after handler panic; status {:?}",
                    d.task_status(second).unwrap()
                );
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            drop(dispatcher);
        }
    }

    #[test]
    fn snapshot_of_large_queue_shares_program_bodies() {
        // snapshotting must clone task *handles*, never program bodies: the
        // snapshot's `ir` and the queued task's `ir` are the same allocation
        let d = emu_daemon(DaemonConfig {
            validate_on_submit: false,
            analyze_on_submit: false,
            ..DaemonConfig::default()
        });
        let tok = d.open_session("bulk", PriorityClass::Production).unwrap();
        for _ in 0..1000 {
            d.submit(&tok, ir(10), PatternHint::None).unwrap();
        }
        let snap = d.snapshot_state();
        assert_eq!(snap.queued.len(), 1000);
        let q = d.queue.lock();
        for t in &snap.queued {
            let queued = q.get(t.id).expect("task still queued");
            assert!(
                Arc::ptr_eq(&queued.ir, &t.ir),
                "snapshot deep-copied the program body of task {}",
                t.id
            );
        }
    }

    #[test]
    fn pump_batch_drains_in_dispatch_order() {
        let d = emu_daemon(DaemonConfig::default());
        let dev = d.open_session("dev", PriorityClass::Development).unwrap();
        let prod = d.open_session("prod", PriorityClass::Production).unwrap();
        let dev_id = d.submit(&dev, ir(5), PatternHint::None).unwrap();
        let prod_id = d.submit(&prod, ir(5), PatternHint::None).unwrap();
        assert_eq!(d.pump_batch(16), 2, "one batch claims both tasks");
        assert_eq!(d.task_status(prod_id).unwrap(), DaemonTaskStatus::Completed);
        assert_eq!(d.task_status(dev_id).unwrap(), DaemonTaskStatus::Completed);
        assert_eq!(d.pump_batch(16), 0, "queue drained");
    }

    #[test]
    fn merge_results_accumulates_counts() {
        let a = SampleResult::from_shots(2, &[0b00, 0b01], "x");
        let b = SampleResult::from_shots(2, &[0b01, 0b11], "x");
        let m = merge_results(a, b);
        assert_eq!(m.shots, 4);
        assert_eq!(m.counts[&0b01], 2);
        assert_eq!(m.counts[&0b00], 1);
        assert_eq!(m.counts[&0b11], 1);
    }

    // ---- durability ----------------------------------------------------

    fn journal_dir(name: &str) -> std::path::PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/daemon-journal-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn emu_resource() -> Arc<dyn QuantumResource> {
        Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ))
    }

    #[test]
    fn recover_restores_queue_sessions_and_id_watermark() {
        let dir = journal_dir("restore-basic");
        let d = MiddlewareService::recover(&dir, emu_resource(), DaemonConfig::default()).unwrap();
        let tok = d.open_session("alice", PriorityClass::Production).unwrap();
        let done = d.submit(&tok, ir(10), PatternHint::None).unwrap();
        d.pump();
        let queued_a = d.submit(&tok, ir(20), PatternHint::None).unwrap();
        let queued_b = d.submit(&tok, ir(30), PatternHint::None).unwrap();
        let done_result = d.task_result(done).unwrap();
        drop(d); // crash: no drain, no final snapshot

        let d2 = MiddlewareService::recover(&dir, emu_resource(), DaemonConfig::default()).unwrap();
        // completed work survived with its result intact
        assert_eq!(d2.task_result(done).unwrap().counts, done_result.counts);
        // queued work survived as queued
        assert!(matches!(
            d2.task_status(queued_a).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
        assert!(matches!(
            d2.task_status(queued_b).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
        // the session is alive and the token still valid
        let next = d2.submit(&tok, ir(5), PatternHint::None).unwrap();
        // the id high-water mark survived: no reuse of pre-crash ids
        assert!(next > queued_b, "task id watermark must survive recovery");
        d2.pump();
        assert_eq!(
            d2.task_status(queued_a).unwrap(),
            DaemonTaskStatus::Completed
        );
        assert_eq!(
            d2.task_status(queued_b).unwrap(),
            DaemonTaskStatus::Completed
        );
        assert_eq!(d2.task_status(next).unwrap(), DaemonTaskStatus::Completed);
    }

    #[test]
    fn idempotency_keys_survive_restart() {
        let dir = journal_dir("idempotency");
        let d = MiddlewareService::recover(&dir, emu_resource(), DaemonConfig::default()).unwrap();
        let tok = d.open_session("alice", PriorityClass::Test).unwrap();
        let id = d
            .submit_with_key(&tok, ir(10), PatternHint::None, Some("vqe-step-1"))
            .unwrap();
        // same key, same daemon → same id, nothing new queued
        let again = d
            .submit_with_key(&tok, ir(10), PatternHint::None, Some("vqe-step-1"))
            .unwrap();
        assert_eq!(id, again);
        assert_eq!(d.queue_depth(), 1);
        drop(d);

        let d2 = MiddlewareService::recover(&dir, emu_resource(), DaemonConfig::default()).unwrap();
        let after_crash = d2
            .submit_with_key(&tok, ir(10), PatternHint::None, Some("vqe-step-1"))
            .unwrap();
        assert_eq!(id, after_crash, "journaled key must return the original id");
        assert_eq!(d2.queue_depth(), 1, "dedup must not enqueue a duplicate");
        assert!(d2
            .metrics_text()
            .contains("daemon_idempotent_hits_total{class=\"test\"} 1"));
    }

    /// Batch submit: per-frame outcomes in order, bad frames isolated, the
    /// group-committed journal records replaying identically after a crash.
    #[test]
    fn submit_batch_isolates_frames_and_survives_restart() {
        let dir = journal_dir("batch-submit");
        let d = MiddlewareService::recover(&dir, emu_resource(), DaemonConfig::default()).unwrap();
        let tok = d.open_session("alice", PriorityClass::Production).unwrap();
        let bad_ir = {
            let reg = Register::linear(2, 6.0).unwrap();
            let mut b = SequenceBuilder::new(reg);
            b.add_global_pulse(Pulse::constant(0.5, 1e6, 0.0, 0.0).unwrap());
            ProgramIr::new(b.build().unwrap(), 10, "t")
        };
        let item = |key: Option<&str>| SubmitItem {
            token: tok.clone(),
            ir: ir(10),
            hint: PatternHint::None,
            idempotency_key: key.map(str::to_string),
        };
        let out = d.submit_batch(vec![
            item(Some("batch-key-1")),
            SubmitItem {
                token: "bogus".into(),
                ..item(None)
            },
            SubmitItem {
                ir: bad_ir,
                ..item(None)
            },
            item(Some("batch-key-2")),
        ]);
        assert_eq!(out.len(), 4);
        let a = *out[0].as_ref().unwrap();
        assert!(matches!(out[1], Err(DaemonError::Session(_))), "{out:?}");
        assert!(matches!(out[2], Err(DaemonError::Validation(_))), "{out:?}");
        let b = *out[3].as_ref().unwrap();
        assert!(b > a, "ids follow submission order");
        assert_eq!(d.queue_depth(), 2, "only the two good frames queued");
        // a later batch replaying a key dedups per-frame, same as singles
        let replay = d.submit_batch(vec![item(Some("batch-key-1"))]);
        assert_eq!(*replay[0].as_ref().unwrap(), a);
        assert_eq!(d.queue_depth(), 2);
        drop(d); // crash: no drain

        let d2 = MiddlewareService::recover(&dir, emu_resource(), DaemonConfig::default()).unwrap();
        assert!(matches!(
            d2.task_status(a).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
        assert!(matches!(
            d2.task_status(b).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
        let replay = d2.submit_batch(vec![item(Some("batch-key-2"))]);
        assert_eq!(
            *replay[0].as_ref().unwrap(),
            b,
            "batch idempotency keys survive restart"
        );
        d2.pump();
        assert_eq!(d2.task_status(a).unwrap(), DaemonTaskStatus::Completed);
        assert_eq!(d2.task_status(b).unwrap(), DaemonTaskStatus::Completed);
    }

    #[test]
    fn shutdown_drains_then_rejects() {
        let dir = journal_dir("drain");
        let d = MiddlewareService::recover(&dir, emu_resource(), DaemonConfig::default()).unwrap();
        let tok = d.open_session("alice", PriorityClass::Production).unwrap();
        let a = d.submit(&tok, ir(10), PatternHint::None).unwrap();
        let b = d.submit(&tok, ir(10), PatternHint::None).unwrap();
        assert_eq!(d.health(), DaemonHealth::Ok);
        let report = d.shutdown(std::time::Duration::from_secs(5));
        assert_eq!(report.dispatched, 2);
        assert_eq!(report.pending, 0);
        assert_eq!(d.health(), DaemonHealth::Stopped);
        assert_eq!(d.task_status(a).unwrap(), DaemonTaskStatus::Completed);
        assert_eq!(d.task_status(b).unwrap(), DaemonTaskStatus::Completed);
        // stopped daemons admit nothing
        assert!(matches!(
            d.open_session("bob", PriorityClass::Test),
            Err(DaemonError::Unavailable(_))
        ));
        assert!(matches!(
            d.submit(&tok, ir(5), PatternHint::None),
            Err(DaemonError::Unavailable(_))
        ));
        assert!(d.pump_once().is_none());
    }

    #[test]
    fn drain_timeout_leaves_pending_work_journaled() {
        let dir = journal_dir("drain-timeout");
        let d = MiddlewareService::recover(&dir, emu_resource(), DaemonConfig::default()).unwrap();
        let tok = d.open_session("alice", PriorityClass::Production).unwrap();
        for _ in 0..3 {
            d.submit(&tok, ir(10), PatternHint::None).unwrap();
        }
        // zero budget: nothing dispatches, everything stays journaled
        let report = d.shutdown(std::time::Duration::ZERO);
        assert_eq!(report.dispatched, 0);
        assert_eq!(report.pending, 3);
        drop(d);
        let d2 = MiddlewareService::recover(&dir, emu_resource(), DaemonConfig::default()).unwrap();
        assert_eq!(d2.queue_depth(), 3, "pending tasks survive the stop");
        d2.pump();
    }

    #[test]
    fn expired_session_rejected_at_validate_time() {
        // the clock can outrun the TTL between gc sweeps (execution time
        // advances it with no advance_time call); validate itself must then
        // catch the expiry
        let d = emu_daemon(DaemonConfig {
            session_ttl_secs: 100.0,
            ..DaemonConfig::default()
        });
        let idle = d.open_session("idle", PriorityClass::Production).unwrap();
        let busy = d.open_session("busy", PriorityClass::Production).unwrap();
        *d.clock.lock() += 50.0; // execution time, not advance_time: no gc
        d.submit(&busy, ir(5), PatternHint::None).unwrap(); // touches busy
        *d.clock.lock() += 70.0; // idle now 120 s stale, busy only 70 s
        assert!(matches!(
            d.submit(&idle, ir(5), PatternHint::None),
            Err(DaemonError::Session(SessionError::Expired))
        ));
        d.submit(&busy, ir(5), PatternHint::None).unwrap();
        assert!(d.metrics_text().contains("daemon_sessions_expired_total 1"));
    }

    #[test]
    fn stale_sessions_gced_on_pump() {
        let d = emu_daemon(DaemonConfig {
            session_ttl_secs: 100.0,
            ..DaemonConfig::default()
        });
        d.open_session("alice", PriorityClass::Production).unwrap();
        *d.clock.lock() += 150.0; // past the TTL with no gc sweep yet
        assert_eq!(d.list_sessions().len(), 1);
        assert!(d.pump_once().is_none()); // idle pump still sweeps sessions
        assert!(d.list_sessions().is_empty(), "gc runs on pump_once");
        assert!(d.metrics_text().contains("daemon_sessions_expired_total 1"));
    }

    /// A clean run records zero lock-order violations for production locks.
    /// Drives a journaled daemon through concurrent submitters, cancels,
    /// snapshots, compaction and shutdown — the lock-heavy paths — then
    /// asserts the global violation log holds nothing from a production
    /// lock (tests elsewhere deliberately seed violations, but only under
    /// `test.` / `prop.` / `tracked.test` names).
    #[test]
    fn clean_workload_records_no_production_lock_order_violations() {
        let dir = journal_dir("lock-order-clean");
        let d = Arc::new(
            MiddlewareService::recover(&dir, emu_resource(), DaemonConfig::default()).unwrap(),
        );
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    let tok = d
                        .open_session(&format!("user{i}"), PriorityClass::Production)
                        .unwrap();
                    let ids: Vec<u64> = (0..5)
                        .map(|_| d.submit(&tok, ir(10), PatternHint::None).unwrap())
                        .collect();
                    // best-effort: a peer's pump may have claimed it already
                    let _ = d.cancel(&tok, ids[0]);
                    d.pump();
                    let _ = d.metrics_text();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        d.shutdown(std::time::Duration::from_secs(5));
        let production: Vec<String> = hpcqc_sync::violations()
            .iter()
            .filter(|v| {
                ["middleware.", "telemetry.", "qrmi.", "qpu."]
                    .iter()
                    .any(|p| v.lock.starts_with(p) || v.held_lock.starts_with(p))
            })
            .map(|v| v.to_string())
            .collect();
        assert!(
            production.is_empty(),
            "production lock hierarchy violated:\n{}",
            production.join("\n")
        );
    }

    #[test]
    fn cancel_refunds_session_task_quota() {
        let d = emu_daemon(DaemonConfig {
            queue: crate::taskqueue::QueueConfig {
                max_tasks_per_session: 2,
                ..crate::taskqueue::QueueConfig::default()
            },
            ..DaemonConfig::default()
        });
        let tok = d.open_session("alice", PriorityClass::Test).unwrap();
        let a = d.submit(&tok, ir(5), PatternHint::None).unwrap();
        let _b = d.submit(&tok, ir(5), PatternHint::None).unwrap();
        // quota full
        assert!(d.submit(&tok, ir(5), PatternHint::None).is_err());
        d.cancel(&tok, a).unwrap();
        // the cancelled slot is free again
        d.submit(&tok, ir(5), PatternHint::None).unwrap();
        let s = d
            .list_sessions()
            .into_iter()
            .find(|s| s.token == tok)
            .unwrap();
        assert_eq!(s.task_count, 2, "cancel must refund the session's count");
    }

    #[test]
    fn recovery_requeues_mid_dispatch_task_with_exclusions() {
        let dir = journal_dir("mid-dispatch");
        // hand-craft a journal whose last records leave task 1 mid-dispatch
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        let d = emu_daemon(DaemonConfig::default());
        let tok = d.open_session("alice", PriorityClass::Production).unwrap();
        let session = d.list_sessions().into_iter().next().unwrap();
        let task = QuantumTask {
            id: 1,
            session: tok.clone(),
            user: "alice".into(),
            class: PriorityClass::Production,
            ir: Arc::new(ir(10)),
            hint: PatternHint::None,
            submitted_at: 1.0,
        };
        j.append(&JournalRecord::SessionOpened { session }).unwrap();
        j.append(&JournalRecord::TaskSubmitted {
            task: task.clone(),
            idempotency_key: None,
            warnings: Vec::new(),
        })
        .unwrap();
        j.append(&JournalRecord::TaskAttemptFailed {
            id: 1,
            resource: "flaky-qpu".into(),
            error: "lease lost".into(),
        })
        .unwrap();
        j.append(&JournalRecord::TaskDispatched {
            id: 1,
            resource: "emu".into(),
            at: 2.0,
        })
        .unwrap();
        drop(j); // crash mid-dispatch: no terminal record for task 1

        let d2 = MiddlewareService::recover(&dir, emu_resource(), DaemonConfig::default()).unwrap();
        assert!(matches!(
            d2.task_status(1).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
        let text = d2.metrics_text();
        assert!(text.contains("daemon_recovery_requeued_total 1"), "{text}");
        // the failure history (excluded resource) survived the crash
        assert_eq!(d2.excluded_resources(1), vec!["flaky-qpu".to_string()]);
        d2.pump();
        assert_eq!(d2.task_status(1).unwrap(), DaemonTaskStatus::Completed);
    }

    #[test]
    fn qpu_status_survives_restart() {
        let dir = journal_dir("qpu-status");
        let qpu = VirtualQpu::new("fresnel-1", 7);
        let res = Arc::new(QpuDirectResource::new("fresnel-1", qpu.clone(), 1));
        let d = MiddlewareService::recover(&dir, res, DaemonConfig::default())
            .unwrap()
            .with_qpu_admin(qpu);
        d.set_qpu_status(QpuStatus::Maintenance).unwrap();
        drop(d);

        let qpu2 = VirtualQpu::new("fresnel-1", 7);
        let res2 = Arc::new(QpuDirectResource::new("fresnel-1", qpu2.clone(), 1));
        let d2 = MiddlewareService::recover(&dir, res2, DaemonConfig::default())
            .unwrap()
            .with_qpu_admin(qpu2);
        assert_eq!(d2.qpu_status(), Some(QpuStatus::Maintenance));
    }
}
