//! The middleware daemon service (in-process core).
//!
//! This is the component Figure 2 places on the quantum access node: it owns
//! the QPU-side QRMI resource, manages sessions, validates programs against
//! the *current* device spec, queues tasks by priority class, runs them with
//! shot-batch preemption, and exposes admin + observability surfaces. The
//! REST layer in [`crate::http`] is a thin transport over this object, so
//! unit tests drive it directly while integration tests go over real sockets.

use crate::session::{PriorityClass, SessionError, SessionManager};
use crate::taskqueue::{QuantumTask, QueueConfig, QueueError, TaskQueue};
use hpcqc_analysis::Analyzer;
use hpcqc_emulator::SampleResult;
use hpcqc_program::{DeviceSpec, ProgramIr};
use hpcqc_qpu::{QpuStatus, VirtualQpu};
use hpcqc_qrmi::QuantumResource;
use hpcqc_scheduler::PatternHint;
use hpcqc_telemetry::{labels, FaultMetrics, LintMetrics, Registry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Daemon configuration (the site-tunable `slurm.conf` analogue of §3.4).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Queue behaviour.
    pub queue: QueueConfig,
    /// Concurrent session cap (0 = unlimited).
    pub max_sessions: usize,
    /// Shot cap applied to development tasks ("non-production jobs
    /// configured with a low number of shots", §3.3).
    pub dev_shot_cap: u32,
    /// Chunk size for unbatched (preemptible) execution: test/development
    /// tasks run in slices of this many shots, with preemption checks in
    /// between.
    pub preempt_chunk_shots: u32,
    /// Validate programs against the live device spec at submission.
    pub validate_on_submit: bool,
    /// Run the full static-analysis pipeline at submission: reject on
    /// Error-level diagnostics, record Warning-level ones in the job record,
    /// and cross-check the user's pattern hint against the inferred one.
    pub analyze_on_submit: bool,
    /// Fair-share usage half-life in seconds (0 disables fair-share).
    pub fairshare_half_life_secs: f64,
    /// Serve repeated *development* programs from a fingerprint-keyed result
    /// cache instead of re-running them on the device (dev results are for
    /// debugging, not statistics — a cache hit saves scarce QPU seconds).
    pub cache_dev_results: bool,
    /// Sessions idle longer than this are expired by the clock (0 = never).
    pub session_ttl_secs: f64,
    /// Requeues allowed after an execution failure before a task is declared
    /// poisoned and failed permanently.
    pub max_task_retries: u32,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            queue: QueueConfig::default(),
            max_sessions: 0,
            dev_shot_cap: 100,
            preempt_chunk_shots: 10,
            validate_on_submit: true,
            analyze_on_submit: true,
            fairshare_half_life_secs: 3600.0,
            cache_dev_results: true,
            session_ttl_secs: 0.0,
            max_task_retries: 2,
        }
    }
}

/// Daemon-side task state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DaemonTaskStatus {
    /// Waiting; `position` is the current dispatch-order index.
    Queued { position: usize },
    /// On the device now.
    Running,
    /// Done; result available.
    Completed,
    /// Rejected or errored.
    Failed(String),
    /// Cancelled by the user.
    Cancelled,
}

/// Errors surfaced by the daemon API.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonError {
    Session(SessionError),
    Queue(String),
    /// Program failed validation; messages list the violations.
    Validation(Vec<String>),
    UnknownTask(u64),
    /// Operation not allowed for this session/class.
    Forbidden(String),
    Internal(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Session(e) => write!(f, "session error: {e}"),
            DaemonError::Queue(m) => write!(f, "queue error: {m}"),
            DaemonError::Validation(v) => write!(f, "validation failed: {}", v.join("; ")),
            DaemonError::UnknownTask(id) => write!(f, "unknown task {id}"),
            DaemonError::Forbidden(m) => write!(f, "forbidden: {m}"),
            DaemonError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<SessionError> for DaemonError {
    fn from(e: SessionError) -> Self {
        DaemonError::Session(e)
    }
}

impl From<QueueError> for DaemonError {
    fn from(e: QueueError) -> Self {
        DaemonError::Queue(e.to_string())
    }
}

#[derive(Debug, Clone)]
enum TaskRecord {
    Queued,
    Running,
    Completed(SampleResult),
    Failed(String),
    Cancelled,
}

/// Partial progress of a preempted task: completed chunk results are kept
/// and merged with the remainder when it resumes.
#[derive(Debug, Clone, Default)]
struct Progress {
    shots_done: u32,
    partial: Option<SampleResult>,
}

/// Failure history of a task across requeues.
#[derive(Debug, Clone, Default)]
struct FailureState {
    /// Execution failures so far.
    attempts: u32,
    /// Resources this task has failed on. Advisory: dispatch avoids them
    /// while an untried resource exists, but falls back to the primary
    /// rather than starving the task when every resource has failed once.
    excluded: HashSet<String>,
}

/// The middleware daemon.
pub struct MiddlewareService {
    sessions: SessionManager,
    queue: Mutex<TaskQueue>,
    resource: Arc<dyn QuantumResource>,
    /// Direct handle to the device for the admin surface (None when the
    /// daemon fronts a cloud resource it cannot administer).
    qpu_admin: Option<VirtualQpu>,
    /// Alternate resources a requeued task may be dispatched to after
    /// failing on the primary (e.g. a local emulator for degraded service).
    alternates: Vec<Arc<dyn QuantumResource>>,
    records: Mutex<HashMap<u64, TaskRecord>>,
    progress: Mutex<HashMap<u64, Progress>>,
    failures: Mutex<HashMap<u64, FailureState>>,
    task_meta: Mutex<HashMap<u64, (PriorityClass, f64)>>, // class, submitted_at
    next_task: AtomicU64,
    seed: AtomicU64,
    clock: Mutex<f64>,
    registry: Registry,
    cfg: DaemonConfig,
    /// Serializes dispatch: the QPU is a serial device, and concurrent REST
    /// clients all pump the queue — only one dispatch may hold the resource
    /// lease at a time.
    dispatch_lock: Mutex<()>,
    fairshare: Option<crate::fairshare::FairshareTracker>,
    /// Development-result cache keyed by program fingerprint.
    dev_cache: Mutex<HashMap<u64, SampleResult>>,
    /// The static-analysis pipeline run at submission.
    analyzer: Analyzer,
    /// Warning-level findings recorded per accepted task (job record).
    warnings: Mutex<HashMap<u64, Vec<String>>>,
}

impl MiddlewareService {
    pub fn new(resource: Arc<dyn QuantumResource>, cfg: DaemonConfig) -> Self {
        let fairshare = if cfg.fairshare_half_life_secs > 0.0 {
            Some(crate::fairshare::FairshareTracker::new(
                cfg.fairshare_half_life_secs,
            ))
        } else {
            None
        };
        let queue = match &fairshare {
            Some(f) => TaskQueue::new(cfg.queue).with_fairshare(f.clone()),
            None => TaskQueue::new(cfg.queue),
        };
        MiddlewareService {
            sessions: SessionManager::new(cfg.max_sessions),
            queue: Mutex::new(queue),
            resource,
            qpu_admin: None,
            alternates: Vec::new(),
            records: Mutex::new(HashMap::new()),
            progress: Mutex::new(HashMap::new()),
            failures: Mutex::new(HashMap::new()),
            task_meta: Mutex::new(HashMap::new()),
            next_task: AtomicU64::new(1),
            seed: AtomicU64::new(0x5eed),
            clock: Mutex::new(0.0),
            registry: Registry::new(),
            cfg,
            dispatch_lock: Mutex::new(()),
            fairshare,
            dev_cache: Mutex::new(HashMap::new()),
            analyzer: Analyzer::standard(),
            warnings: Mutex::new(HashMap::new()),
        }
    }

    /// Attach the device for admin operations (on-prem deployment).
    pub fn with_qpu_admin(mut self, qpu: VirtualQpu) -> Self {
        self.qpu_admin = Some(qpu);
        self
    }

    /// Register an alternate resource that requeued tasks may run on after
    /// failing on the primary.
    pub fn with_alternate_resource(mut self, res: Arc<dyn QuantumResource>) -> Self {
        self.alternates.push(res);
        self
    }

    /// Typed facade over this daemon's registry for recovery counters.
    fn fault_metrics(&self) -> FaultMetrics {
        FaultMetrics::new(self.registry.clone())
    }

    /// Typed facade over this daemon's registry for analyzer counters.
    fn lint_metrics(&self) -> LintMetrics {
        LintMetrics::new(self.registry.clone())
    }

    /// The daemon's metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Daemon clock (seconds).
    pub fn now(&self) -> f64 {
        *self.clock.lock()
    }

    /// Advance the daemon clock (simulated idle time). Expires idle
    /// sessions past their TTL.
    pub fn advance_time(&self, dt: f64) {
        *self.clock.lock() += dt;
        if let Some(q) = &self.qpu_admin {
            q.advance_time(dt);
        }
        if self.cfg.session_ttl_secs > 0.0 {
            let cutoff = self.now() - self.cfg.session_ttl_secs;
            let expired = self.sessions.gc(cutoff);
            if expired > 0 {
                self.registry.counter_add(
                    "daemon_sessions_expired_total",
                    "Sessions expired by TTL",
                    hpcqc_telemetry::Labels::new(),
                    expired as f64,
                );
            }
        }
    }

    // ---- session API -------------------------------------------------

    /// Open a session for `user` in `class`; returns the token.
    pub fn open_session(&self, user: &str, class: PriorityClass) -> Result<String, DaemonError> {
        let s = self.sessions.open(user, class, self.now())?;
        self.registry.counter_add(
            "daemon_sessions_opened_total",
            "Sessions opened",
            labels(&[("class", class.as_str())]),
            1.0,
        );
        Ok(s.token)
    }

    /// Close a session.
    pub fn close_session(&self, token: &str) -> Result<(), DaemonError> {
        self.sessions.close(token)?;
        Ok(())
    }

    /// List sessions (admin).
    pub fn list_sessions(&self) -> Vec<crate::session::Session> {
        self.sessions.list()
    }

    // ---- task API ------------------------------------------------------

    /// The current device spec, fetched through QRMI — what clients validate
    /// against before submitting (§2.1 drift safety).
    pub fn device_spec(&self) -> Result<DeviceSpec, DaemonError> {
        self.resource
            .target()
            .map_err(|e| DaemonError::Internal(e.to_string()))
    }

    /// Submit a program under a session. Applies class policies (dev shot
    /// cap), validates against the live spec, runs the static-analysis
    /// pipeline, and queues. Error-level diagnostics reject; Warning-level
    /// ones are kept in the job record (see [`Self::task_warnings`]).
    pub fn submit(
        &self,
        token: &str,
        mut ir: ProgramIr,
        mut hint: PatternHint,
    ) -> Result<u64, DaemonError> {
        let session = self.sessions.validate(token)?;
        if session.class == PriorityClass::Development && ir.shots > self.cfg.dev_shot_cap {
            ir.shots = self.cfg.dev_shot_cap;
        }
        let mut pending_warnings: Vec<String> = Vec::new();
        if self.cfg.validate_on_submit || self.cfg.analyze_on_submit {
            let spec = self.device_spec()?;
            // Stale-validation detection: the client validated against an
            // older spec revision (or never validated). Either way the spec
            // checks below re-establish safety server-side.
            match ir.validated_against_revision {
                Some(rev) if rev != spec.revision => {
                    self.lint_metrics().stale_validation();
                    if !self.cfg.analyze_on_submit {
                        pending_warnings.push(format!(
                            "client validated against stale spec revision {rev} (current {})",
                            spec.revision
                        ));
                    }
                }
                _ => {}
            }
            if self.cfg.validate_on_submit {
                let violations = hpcqc_program::validate(&ir.sequence, &spec);
                if !violations.is_empty() {
                    self.registry.counter_add(
                        "daemon_tasks_rejected_total",
                        "Tasks rejected at validation",
                        labels(&[("class", session.class.as_str())]),
                        1.0,
                    );
                    return Err(DaemonError::Validation(
                        violations.iter().map(|v| v.to_string()).collect(),
                    ));
                }
            }
            if self.cfg.analyze_on_submit {
                let report = self.analyzer.analyze(&ir, Some(&spec));
                let lm = self.lint_metrics();
                for d in &report.diagnostics {
                    lm.diagnostic(d.code.as_str(), d.severity.as_str());
                }
                if report.has_errors() {
                    self.registry.counter_add(
                        "daemon_tasks_rejected_total",
                        "Tasks rejected at validation",
                        labels(&[("class", session.class.as_str())]),
                        1.0,
                    );
                    lm.rejection(session.class.as_str());
                    return Err(DaemonError::Validation(
                        report.errors().iter().map(|d| d.render()).collect(),
                    ));
                }
                // Cross-check the user's pattern hint against the inferred
                // one; adopt the inference when the user declared nothing.
                if let Some(inferred) = report.facts.inferred_hint {
                    if hint == PatternHint::None {
                        lm.hint_adopted(inferred.as_str());
                        hint = inferred;
                    } else if hint != inferred {
                        lm.hint_mismatch(hint.as_str(), inferred.as_str());
                        pending_warnings.push(format!(
                            "declared pattern hint '{}' contradicts inferred '{}' \
                             (keeping the declared hint)",
                            hint.as_str(),
                            inferred.as_str()
                        ));
                    }
                }
                pending_warnings.extend(report.warnings().iter().map(|d| d.render()));
            }
            // Accepted: server-side checks just ran against this revision.
            ir = ir.with_validation_revision(spec.revision);
        }
        let id = self.next_task.fetch_add(1, Ordering::Relaxed);
        if !pending_warnings.is_empty() {
            self.warnings.lock().insert(id, pending_warnings);
        }
        let now = self.now();
        if self.cfg.cache_dev_results && session.class == PriorityClass::Development {
            if let Some(cached) = self.dev_cache.lock().get(&ir.fingerprint()).cloned() {
                self.records
                    .lock()
                    .insert(id, TaskRecord::Completed(cached));
                self.task_meta.lock().insert(id, (session.class, now));
                self.sessions.record_task(token)?;
                self.registry.counter_add(
                    "daemon_dev_cache_hits_total",
                    "Development tasks served from the result cache",
                    labels(&[("class", session.class.as_str())]),
                    1.0,
                );
                return Ok(id);
            }
        }
        let task = QuantumTask {
            id,
            session: token.to_string(),
            user: session.user.clone(),
            class: session.class,
            ir,
            hint,
            submitted_at: now,
        };
        self.queue.lock().push(task)?;
        self.sessions.record_task(token)?;
        self.records.lock().insert(id, TaskRecord::Queued);
        self.task_meta.lock().insert(id, (session.class, now));
        self.registry.counter_add(
            "daemon_tasks_submitted_total",
            "Tasks accepted into the queue",
            labels(&[("class", session.class.as_str())]),
            1.0,
        );
        Ok(id)
    }

    /// Task status.
    pub fn task_status(&self, id: u64) -> Result<DaemonTaskStatus, DaemonError> {
        let records = self.records.lock();
        match records.get(&id) {
            None => Err(DaemonError::UnknownTask(id)),
            Some(TaskRecord::Queued) => {
                let q = self.queue.lock();
                let pos = q
                    .snapshot(self.now())
                    .iter()
                    .position(|t| t.id == id)
                    .unwrap_or(0);
                Ok(DaemonTaskStatus::Queued { position: pos })
            }
            Some(TaskRecord::Running) => Ok(DaemonTaskStatus::Running),
            Some(TaskRecord::Completed(_)) => Ok(DaemonTaskStatus::Completed),
            Some(TaskRecord::Failed(m)) => Ok(DaemonTaskStatus::Failed(m.clone())),
            Some(TaskRecord::Cancelled) => Ok(DaemonTaskStatus::Cancelled),
        }
    }

    /// Warning-level analyzer findings recorded for a task at submission
    /// (empty when the analyzer found nothing or is disabled).
    pub fn task_warnings(&self, id: u64) -> Vec<String> {
        self.warnings.lock().get(&id).cloned().unwrap_or_default()
    }

    /// Fetch the result of a completed task.
    pub fn task_result(&self, id: u64) -> Result<SampleResult, DaemonError> {
        match self.records.lock().get(&id) {
            None => Err(DaemonError::UnknownTask(id)),
            Some(TaskRecord::Completed(r)) => Ok(r.clone()),
            Some(TaskRecord::Failed(m)) => Err(DaemonError::Internal(m.clone())),
            Some(_) => Err(DaemonError::Queue("task not completed".into())),
        }
    }

    /// Cancel a queued task (the owner's session token must match).
    pub fn cancel(&self, token: &str, id: u64) -> Result<(), DaemonError> {
        self.sessions.validate(token)?;
        let mut q = self.queue.lock();
        match q.remove(id) {
            Some(t) if t.session == token => {
                self.records.lock().insert(id, TaskRecord::Cancelled);
                Ok(())
            }
            Some(t) => {
                // not the owner: put it back untouched
                q.push(t)
                    .expect("reinsert cannot exceed quota it just satisfied");
                Err(DaemonError::Forbidden(
                    "task belongs to another session".into(),
                ))
            }
            None => match self.records.lock().get(&id) {
                None => Err(DaemonError::UnknownTask(id)),
                Some(_) => Err(DaemonError::Queue("task is not queued".into())),
            },
        }
    }

    // ---- execution loop ------------------------------------------------

    /// Dispatch and run the next task, honoring preemption. Returns the id
    /// of the task that made progress, or `None` when the queue is empty.
    ///
    /// Production tasks run as one batch. Lower classes run one
    /// `preempt_chunk_shots` slice; if a production task is waiting
    /// afterwards, the remainder is requeued (preemption at shot-batch
    /// boundaries, §3.3).
    pub fn pump_once(&self) -> Option<u64> {
        let _dispatch = self.dispatch_lock.lock();
        let now = self.now();
        let task = self.queue.lock().pop(now)?;
        let id = task.id;
        self.records.lock().insert(id, TaskRecord::Running);

        // first time this task runs: record wait
        let first_run = self
            .progress
            .lock()
            .get(&id)
            .is_none_or(|p| p.shots_done == 0);
        if first_run {
            if let Some((class, submitted)) = self.task_meta.lock().get(&id).copied() {
                self.registry.histogram_observe(
                    "daemon_task_wait_seconds",
                    "Queue wait before first execution",
                    labels(&[("class", class.as_str())]),
                    &[1.0, 10.0, 60.0, 600.0, 3600.0],
                    now - submitted,
                );
            }
        }

        let res = self.pick_resource(id);
        let outcome = if task.batched() {
            self.run_shots(&task, task.ir.shots, &res)
        } else {
            let done = self.progress.lock().get(&id).map_or(0, |p| p.shots_done);
            let remaining = task.ir.shots - done;
            let slice = remaining.min(self.cfg.preempt_chunk_shots);
            self.run_shots(&task, slice, &res)
        };

        match outcome {
            Err(m) => {
                let attempts = {
                    let mut failures = self.failures.lock();
                    let f = failures.entry(id).or_default();
                    f.attempts += 1;
                    f.excluded.insert(res.resource_id().to_string());
                    f.attempts
                };
                if attempts > self.cfg.max_task_retries {
                    // poison cap: stop burning device time on this task
                    self.failures.lock().remove(&id);
                    self.records.lock().insert(id, TaskRecord::Failed(m));
                    self.progress.lock().remove(&id);
                    self.fault_metrics().poisoned(task.class.as_str());
                } else {
                    // requeue for another attempt; partial progress is kept,
                    // and dispatch will avoid the resource that just failed
                    self.records.lock().insert(id, TaskRecord::Queued);
                    self.fault_metrics().requeue(task.class.as_str());
                    self.queue
                        .lock()
                        .push(task)
                        .expect("requeue of failed task");
                }
            }
            Ok(partial) => {
                self.failures.lock().remove(&id);
                let mut progress = self.progress.lock();
                let p = progress.entry(id).or_default();
                p.shots_done += partial.shots;
                p.partial = Some(match p.partial.take() {
                    None => partial,
                    Some(prev) => merge_results(prev, partial),
                });
                let finished = p.shots_done >= task.ir.shots;
                if finished {
                    let result = p.partial.take().expect("merged at least one slice");
                    progress.remove(&id);
                    drop(progress);
                    if self.cfg.cache_dev_results && task.class == PriorityClass::Development {
                        self.dev_cache
                            .lock()
                            .insert(task.ir.fingerprint(), result.clone());
                    }
                    self.records
                        .lock()
                        .insert(id, TaskRecord::Completed(result));
                    self.registry.counter_add(
                        "daemon_tasks_completed_total",
                        "Tasks completed",
                        labels(&[("class", task.class.as_str())]),
                        1.0,
                    );
                } else {
                    drop(progress);
                    // preemption check: requeue the remainder
                    let mut q = self.queue.lock();
                    let preempted = q.should_preempt(task.class, self.now());
                    if preempted {
                        self.registry.counter_add(
                            "daemon_preemptions_total",
                            "Shot-boundary preemptions",
                            labels(&[("class", task.class.as_str())]),
                            1.0,
                        );
                    }
                    // whether preempted or just sliced, the remainder queues
                    // again; priority order decides who goes next.
                    self.records.lock().insert(id, TaskRecord::Queued);
                    q.push(task).expect("requeue of running task");
                }
            }
        }
        Some(id)
    }

    /// The resource a dispatch of task `id` should use: the primary unless
    /// the task has already failed on it and an untried alternate exists.
    /// Exclusion is advisory — when every resource has failed once, the
    /// primary is used anyway rather than starving the task.
    fn pick_resource(&self, id: u64) -> Arc<dyn QuantumResource> {
        let failures = self.failures.lock();
        if let Some(f) = failures.get(&id) {
            if f.excluded.contains(self.resource.resource_id()) {
                if let Some(alt) = self
                    .alternates
                    .iter()
                    .find(|a| !f.excluded.contains(a.resource_id()))
                {
                    return Arc::clone(alt);
                }
            }
        }
        Arc::clone(&self.resource)
    }

    /// Run `shots` shots of `task` through the QRMI resource `res`,
    /// advancing the daemon clock by the execution time.
    fn run_shots(
        &self,
        task: &QuantumTask,
        shots: u32,
        res: &Arc<dyn QuantumResource>,
    ) -> Result<SampleResult, String> {
        let ir = ProgramIr {
            shots,
            ..task.ir.clone()
        };
        let lease = res.acquire().map_err(|e| e.to_string())?;
        let seed = self.seed.fetch_add(1, Ordering::Relaxed);
        let _ = seed; // resources seed internally; kept for interface stability
        let out = hpcqc_qrmi::run_to_completion(res.as_ref(), &lease, &ir, 10_000)
            .map_err(|e| e.to_string());
        res.release(&lease).map_err(|e| e.to_string())?;
        if let Ok(r) = &out {
            *self.clock.lock() += r.execution_secs;
            if let Some(f) = &self.fairshare {
                f.charge(&task.user, r.execution_secs, self.now());
            }
            self.registry.counter_add(
                "daemon_qpu_busy_seconds_total",
                "Device seconds consumed through the daemon",
                labels(&[("class", task.class.as_str())]),
                r.execution_secs,
            );
        }
        out
    }

    /// Drain the queue completely. Returns the number of dispatches.
    pub fn pump(&self) -> usize {
        let mut n = 0;
        while self.pump_once().is_some() {
            n += 1;
            assert!(n < 1_000_000, "runaway pump loop");
        }
        n
    }

    /// Start a background dispatcher thread: the production deployment mode,
    /// where the daemon drains its queue continuously and clients only poll
    /// task status. Returns a handle that stops the thread when dropped.
    pub fn spawn_dispatcher(self: &Arc<Self>, idle_poll: std::time::Duration) -> DispatcherHandle {
        let svc = Arc::clone(self);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::SeqCst) {
                if svc.pump_once().is_none() {
                    std::thread::sleep(idle_poll);
                }
            }
        });
        DispatcherHandle {
            stop,
            thread: Some(thread),
        }
    }

    // ---- admin / observability surface ---------------------------------

    /// Combined Prometheus exposition: daemon metrics + device metrics.
    pub fn metrics_text(&self) -> String {
        let mut out = self.registry.expose();
        if let Some(q) = &self.qpu_admin {
            out.push_str(&q.registry().expose());
        }
        out
    }

    /// Device status (admin).
    pub fn qpu_status(&self) -> Option<QpuStatus> {
        self.qpu_admin.as_ref().map(|q| q.status())
    }

    /// Set device status (admin; e.g. maintenance window).
    pub fn set_qpu_status(&self, s: QpuStatus) -> Result<(), DaemonError> {
        match &self.qpu_admin {
            Some(q) => {
                q.set_status(s);
                Ok(())
            }
            None => Err(DaemonError::Forbidden(
                "no admin access to this resource".into(),
            )),
        }
    }

    /// Trigger a recalibration (admin).
    pub fn recalibrate(&self, duration_secs: f64) -> Result<(), DaemonError> {
        match &self.qpu_admin {
            Some(q) => {
                q.recalibrate(duration_secs);
                Ok(())
            }
            None => Err(DaemonError::Forbidden(
                "no admin access to this resource".into(),
            )),
        }
    }

    /// Query device telemetry history (admin/user observability).
    pub fn telemetry_range(&self, series: &str, from: f64, to: f64) -> Vec<hpcqc_telemetry::Point> {
        match &self.qpu_admin {
            Some(q) => q.tsdb().range(series, from, to),
            None => Vec::new(),
        }
    }

    /// Queue depth (monitoring).
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().len()
    }
}

/// Stops the background dispatcher thread when dropped.
pub struct DispatcherHandle {
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for DispatcherHandle {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Merge two sample results of the same program (chunked execution).
fn merge_results(mut a: SampleResult, b: SampleResult) -> SampleResult {
    assert_eq!(
        a.n_qubits, b.n_qubits,
        "merging results of different registers"
    );
    for (bits, count) in b.counts {
        *a.counts.entry(bits).or_insert(0) += count;
    }
    a.shots += b.shots;
    a.execution_secs += b.execution_secs;
    a.truncation_error = a.truncation_error.max(b.truncation_error);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_emulator::SvBackend;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};
    use hpcqc_qrmi::{LocalEmulatorResource, QpuDirectResource};

    fn ir(shots: u32) -> ProgramIr {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "test")
    }

    fn emu_daemon(cfg: DaemonConfig) -> MiddlewareService {
        let res = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        MiddlewareService::new(res, cfg)
    }

    fn qpu_daemon(cfg: DaemonConfig) -> (MiddlewareService, VirtualQpu) {
        let qpu = VirtualQpu::new("fresnel-1", 7);
        let res = Arc::new(QpuDirectResource::new("fresnel-1", qpu.clone(), 1));
        (
            MiddlewareService::new(res, cfg).with_qpu_admin(qpu.clone()),
            qpu,
        )
    }

    #[test]
    fn submit_run_fetch_happy_path() {
        let d = emu_daemon(DaemonConfig::default());
        let tok = d.open_session("alice", PriorityClass::Production).unwrap();
        let id = d.submit(&tok, ir(50), PatternHint::None).unwrap();
        assert!(matches!(
            d.task_status(id).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
        d.pump();
        assert_eq!(d.task_status(id).unwrap(), DaemonTaskStatus::Completed);
        let r = d.task_result(id).unwrap();
        assert_eq!(r.shots, 50);
    }

    #[test]
    fn submission_requires_valid_session() {
        let d = emu_daemon(DaemonConfig::default());
        assert!(matches!(
            d.submit("bogus", ir(10), PatternHint::None),
            Err(DaemonError::Session(SessionError::UnknownToken))
        ));
    }

    #[test]
    fn dev_shot_cap_applied() {
        let d = emu_daemon(DaemonConfig {
            dev_shot_cap: 20,
            ..DaemonConfig::default()
        });
        let tok = d.open_session("dev", PriorityClass::Development).unwrap();
        let id = d.submit(&tok, ir(1000), PatternHint::None).unwrap();
        d.pump();
        assert_eq!(
            d.task_result(id).unwrap().shots,
            20,
            "dev capped at 20 shots"
        );
        // production is not capped
        let ptok = d.open_session("prod", PriorityClass::Production).unwrap();
        let pid = d.submit(&ptok, ir(1000), PatternHint::None).unwrap();
        d.pump();
        assert_eq!(d.task_result(pid).unwrap().shots, 1000);
    }

    #[test]
    fn server_side_validation_rejects_bad_program() {
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Test).unwrap();
        let reg = Register::linear(2, 1.0).unwrap(); // violates 5 µm min distance
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.5, 4.0, 0.0, 0.0).unwrap());
        let bad = ProgramIr::new(b.build().unwrap(), 10, "test");
        match d.submit(&tok, bad, PatternHint::None) {
            Err(DaemonError::Validation(v)) => assert!(!v.is_empty()),
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn analyzer_rejects_error_diagnostics() {
        // shots exceed the production envelope: `validate()` alone would let
        // this through (it only checks the sequence), but the analyzer's
        // HQ0108 shot-range lint is Error-level and must reject.
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Production).unwrap();
        match d.submit(&tok, ir(5000), PatternHint::None) {
            Err(DaemonError::Validation(v)) => {
                assert!(v.iter().any(|m| m.contains("HQ0108")), "{v:?}");
            }
            other => panic!("expected validation error, got {other:?}"),
        }
        let text = d.metrics_text();
        assert!(text.contains("daemon_lint_rejections_total{class=\"production\"} 1"));
        assert!(text.contains("analysis_diagnostics_total{code=\"HQ0108\",severity=\"error\"} 1"));
    }

    #[test]
    fn hint_mismatch_recorded_for_mislabeled_pattern() {
        // ~50 s of QPU time vs 1 ms classical: clearly QC-heavy, yet the
        // user declared CC-heavy. The daemon keeps the declared hint but
        // flags the contradiction in metrics and the job record.
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Production).unwrap();
        let id = d
            .submit(
                &tok,
                ir(50).with_classical_estimate(0.001),
                PatternHint::CcHeavy,
            )
            .unwrap();
        assert!(d
            .metrics_text()
            .contains("daemon_hint_mismatch_total{declared=\"cc-heavy\",inferred=\"qc-heavy\"} 1"));
        let warnings = d.task_warnings(id);
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("contradicts inferred 'qc-heavy'")),
            "{warnings:?}"
        );
    }

    #[test]
    fn inferred_hint_adopted_when_undeclared() {
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Production).unwrap();
        let id = d
            .submit(
                &tok,
                ir(50).with_classical_estimate(1.0e6),
                PatternHint::None,
            )
            .unwrap();
        assert!(d
            .metrics_text()
            .contains("daemon_hint_adopted_total{hint=\"cc-heavy\"} 1"));
        // adoption is silent: no warning recorded for it
        assert!(d.task_warnings(id).is_empty(), "{:?}", d.task_warnings(id));
    }

    #[test]
    fn stale_validation_surfaces_warning_and_counter() {
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Production).unwrap();
        let current = d.device_spec().unwrap().revision;
        let id = d
            .submit(
                &tok,
                ir(50).with_validation_revision(current + 7),
                PatternHint::None,
            )
            .unwrap();
        assert!(d.metrics_text().contains("daemon_stale_validation_total 1"));
        let warnings = d.task_warnings(id);
        assert!(
            warnings.iter().any(|w| w.contains("HQ0701")),
            "{warnings:?}"
        );
        // a fresh revision stays quiet
        let id2 = d
            .submit(
                &tok,
                ir(50).with_validation_revision(current),
                PatternHint::None,
            )
            .unwrap();
        assert!(d.task_warnings(id2).is_empty());
        assert!(d.metrics_text().contains("daemon_stale_validation_total 1"));
    }

    #[test]
    fn priority_order_respected_across_sessions() {
        let d = emu_daemon(DaemonConfig::default());
        let dev = d.open_session("dev", PriorityClass::Development).unwrap();
        let prod = d.open_session("prod", PriorityClass::Production).unwrap();
        let d1 = d.submit(&dev, ir(10), PatternHint::None).unwrap();
        let p1 = d.submit(&prod, ir(10), PatternHint::None).unwrap();
        // production dispatches first even though it queued second
        let first = d.pump_once().unwrap();
        assert_eq!(first, p1);
        let _ = d1;
    }

    #[test]
    fn production_preempts_development_at_shot_boundary() {
        let (d, qpu) = qpu_daemon(DaemonConfig {
            preempt_chunk_shots: 5,
            dev_shot_cap: 50,
            ..DaemonConfig::default()
        });
        let dev = d.open_session("dev", PriorityClass::Development).unwrap();
        let prod = d.open_session("prod", PriorityClass::Production).unwrap();
        let dev_id = d.submit(&dev, ir(50), PatternHint::None).unwrap();
        // dev starts: one 5-shot slice runs
        assert_eq!(d.pump_once().unwrap(), dev_id);
        assert!(matches!(
            d.task_status(dev_id).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
        // production arrives mid-flight
        let prod_id = d.submit(&prod, ir(20), PatternHint::None).unwrap();
        // next dispatch must be the production task, not dev's remainder
        assert_eq!(d.pump_once().unwrap(), prod_id);
        assert_eq!(d.task_status(prod_id).unwrap(), DaemonTaskStatus::Completed);
        // dev remainder completes afterwards with all 50 shots accounted
        d.pump();
        assert_eq!(d.task_status(dev_id).unwrap(), DaemonTaskStatus::Completed);
        assert_eq!(d.task_result(dev_id).unwrap().shots, 50);
        let (jobs, shots) = qpu.stats();
        assert!(jobs >= 11, "10 dev slices + 1 prod batch, got {jobs}");
        assert_eq!(shots, 70);
    }

    #[test]
    fn cancel_queued_task_requires_ownership() {
        let d = emu_daemon(DaemonConfig::default());
        let a = d.open_session("a", PriorityClass::Test).unwrap();
        let b = d.open_session("b", PriorityClass::Test).unwrap();
        let id = d.submit(&a, ir(10), PatternHint::None).unwrap();
        assert!(matches!(d.cancel(&b, id), Err(DaemonError::Forbidden(_))));
        d.cancel(&a, id).unwrap();
        assert_eq!(d.task_status(id).unwrap(), DaemonTaskStatus::Cancelled);
        // cancelled task no longer runs
        assert_eq!(d.pump(), 0);
    }

    #[test]
    fn queue_position_reported() {
        let d = emu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Test).unwrap();
        let a = d.submit(&tok, ir(10), PatternHint::None).unwrap();
        let b = d.submit(&tok, ir(10), PatternHint::None).unwrap();
        assert_eq!(
            d.task_status(a).unwrap(),
            DaemonTaskStatus::Queued { position: 0 }
        );
        assert_eq!(
            d.task_status(b).unwrap(),
            DaemonTaskStatus::Queued { position: 1 }
        );
        assert_eq!(d.queue_depth(), 2);
    }

    #[test]
    fn admin_surface_requires_device() {
        let d = emu_daemon(DaemonConfig::default());
        assert!(d.qpu_status().is_none());
        assert!(matches!(
            d.recalibrate(60.0),
            Err(DaemonError::Forbidden(_))
        ));
        let (d2, _) = qpu_daemon(DaemonConfig::default());
        assert_eq!(d2.qpu_status(), Some(QpuStatus::Operational));
        d2.set_qpu_status(QpuStatus::Maintenance).unwrap();
        assert_eq!(d2.qpu_status(), Some(QpuStatus::Maintenance));
        d2.recalibrate(60.0).unwrap();
    }

    #[test]
    fn metrics_text_covers_daemon_and_device() {
        let (d, _) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("u", PriorityClass::Production).unwrap();
        let id = d.submit(&tok, ir(5), PatternHint::None).unwrap();
        d.pump();
        let _ = d.task_result(id).unwrap();
        let text = d.metrics_text();
        assert!(text.contains("daemon_tasks_submitted_total{class=\"production\"} 1"));
        assert!(text.contains("daemon_tasks_completed_total"));
        assert!(text.contains("qpu_jobs_total"), "device metrics merged in");
    }

    #[test]
    fn telemetry_range_exposes_calibration_history() {
        let (d, _) = qpu_daemon(DaemonConfig::default());
        d.advance_time(100.0);
        d.advance_time(100.0);
        let pts = d.telemetry_range("qpu_rabi_scale", 0.0, 1e9);
        assert!(pts.len() >= 2, "calibration history recorded");
    }

    #[test]
    fn background_dispatcher_drains_queue_without_pumping() {
        let d = Arc::new(emu_daemon(DaemonConfig::default()));
        let _dispatcher = d.spawn_dispatcher(std::time::Duration::from_millis(5));
        let tok = d.open_session("bg", PriorityClass::Test).unwrap();
        let id = d.submit(&tok, ir(30), PatternHint::None).unwrap();
        // no pump() calls: the dispatcher thread must complete the task
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match d.task_status(id).unwrap() {
                DaemonTaskStatus::Completed => break,
                DaemonTaskStatus::Failed(m) => panic!("task failed: {m}"),
                _ => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "dispatcher did not finish the task in time"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }
        assert_eq!(d.task_result(id).unwrap().shots, 30);
    }

    #[test]
    fn dispatcher_handle_drop_stops_thread() {
        let d = Arc::new(emu_daemon(DaemonConfig::default()));
        let dispatcher = d.spawn_dispatcher(std::time::Duration::from_millis(5));
        drop(dispatcher); // joins the thread; must not hang or panic
                          // after the dispatcher is gone, tasks stay queued until pumped
        let tok = d.open_session("x", PriorityClass::Test).unwrap();
        let id = d.submit(&tok, ir(5), PatternHint::None).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(matches!(
            d.task_status(id).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
    }

    #[test]
    fn fairshare_demotes_heavy_user_within_class() {
        let (d, _) = qpu_daemon(DaemonConfig {
            queue: QueueConfig {
                aging_secs: 0.0,
                fairshare_weight: 0.9,
                fairshare_scale_secs: 10.0,
                ..QueueConfig::default()
            },
            ..DaemonConfig::default()
        });
        let hog = d.open_session("hog", PriorityClass::Test).unwrap();
        let light = d.open_session("light", PriorityClass::Test).unwrap();
        // the hog burns device time first (1 Hz QPU: 60 shots ≈ 63 s usage)
        let warm = d.submit(&hog, ir(60), PatternHint::None).unwrap();
        d.pump();
        assert_eq!(d.task_status(warm).unwrap(), DaemonTaskStatus::Completed);
        // now both queue a task; the hog submitted FIRST but the light user
        // dispatches first thanks to fair-share
        let hog_task = d.submit(&hog, ir(5), PatternHint::None).unwrap();
        let light_task = d.submit(&light, ir(5), PatternHint::None).unwrap();
        assert_eq!(
            d.pump_once().unwrap(),
            light_task,
            "light user overtakes the hog"
        );
        assert_eq!(d.pump_once().unwrap(), hog_task);
    }

    #[test]
    fn dev_cache_serves_repeated_programs_without_device_time() {
        let (d, qpu) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("dev", PriorityClass::Development).unwrap();
        let a = d.submit(&tok, ir(20), PatternHint::None).unwrap();
        d.pump();
        let first = d.task_result(a).unwrap();
        let (jobs_before, shots_before) = qpu.stats();
        // identical program again: served from cache, no new device job
        let b = d.submit(&tok, ir(20), PatternHint::None).unwrap();
        assert_eq!(d.task_status(b).unwrap(), DaemonTaskStatus::Completed);
        assert_eq!(d.task_result(b).unwrap(), first);
        assert_eq!(
            qpu.stats(),
            (jobs_before, shots_before),
            "no extra QPU work"
        );
        assert!(d
            .metrics_text()
            .contains("daemon_dev_cache_hits_total{class=\"development\"} 1"));
        // a different program misses the cache
        let c = d.submit(&tok, ir(21), PatternHint::None).unwrap();
        assert!(matches!(
            d.task_status(c).unwrap(),
            DaemonTaskStatus::Queued { .. }
        ));
    }

    #[test]
    fn production_results_are_never_cached() {
        let (d, qpu) = qpu_daemon(DaemonConfig::default());
        let tok = d.open_session("prod", PriorityClass::Production).unwrap();
        d.submit(&tok, ir(10), PatternHint::None).unwrap();
        d.pump();
        let (jobs1, _) = qpu.stats();
        d.submit(&tok, ir(10), PatternHint::None).unwrap();
        d.pump();
        let (jobs2, _) = qpu.stats();
        assert_eq!(jobs2, jobs1 + 1, "production always re-executes");
    }

    #[test]
    fn sessions_expire_after_ttl() {
        let d = emu_daemon(DaemonConfig {
            session_ttl_secs: 100.0,
            ..DaemonConfig::default()
        });
        let tok = d.open_session("idle", PriorityClass::Test).unwrap();
        d.advance_time(50.0);
        assert!(
            d.submit(&tok, ir(5), PatternHint::None).is_ok(),
            "still fresh"
        );
        d.advance_time(100.0);
        assert!(matches!(
            d.submit(&tok, ir(5), PatternHint::None),
            Err(DaemonError::Session(SessionError::UnknownToken))
        ));
        assert!(d.metrics_text().contains("daemon_sessions_expired_total 1"));
    }

    mod requeue {
        use super::*;
        use hpcqc_qrmi::{FaultInjector, FaultProfile};

        fn flaky_daemon(profile: FaultProfile, cfg: DaemonConfig) -> MiddlewareService {
            let inner = Arc::new(LocalEmulatorResource::new(
                "emu",
                Arc::new(SvBackend::default()),
                1,
            ));
            MiddlewareService::new(Arc::new(FaultInjector::new(inner, profile, 23)), cfg)
        }

        #[test]
        fn transient_failures_requeue_until_completion() {
            let d = flaky_daemon(
                FaultProfile {
                    task_failure_rate: 0.3,
                    ..FaultProfile::none()
                },
                DaemonConfig {
                    max_task_retries: 20,
                    ..DaemonConfig::default()
                },
            );
            let tok = d.open_session("alice", PriorityClass::Production).unwrap();
            let ids: Vec<u64> = (0..10)
                .map(|_| d.submit(&tok, ir(20), PatternHint::None).unwrap())
                .collect();
            d.pump();
            for id in &ids {
                assert_eq!(d.task_status(*id).unwrap(), DaemonTaskStatus::Completed);
                assert_eq!(d.task_result(*id).unwrap().shots, 20);
            }
            assert!(
                d.metrics_text()
                    .contains("daemon_task_requeues_total{class=\"production\"}"),
                "a 30%-failure resource must cost requeues"
            );
        }

        #[test]
        fn poison_cap_fails_task_permanently() {
            let d = flaky_daemon(
                FaultProfile {
                    task_failure_rate: 1.0,
                    ..FaultProfile::none()
                },
                DaemonConfig {
                    max_task_retries: 2,
                    ..DaemonConfig::default()
                },
            );
            let tok = d.open_session("bob", PriorityClass::Production).unwrap();
            let id = d.submit(&tok, ir(5), PatternHint::None).unwrap();
            assert_eq!(d.pump(), 3, "initial attempt + 2 requeues");
            assert!(matches!(
                d.task_status(id).unwrap(),
                DaemonTaskStatus::Failed(_)
            ));
            let text = d.metrics_text();
            assert!(text.contains("daemon_task_requeues_total{class=\"production\"} 2"));
            assert!(text.contains("daemon_tasks_poisoned_total{class=\"production\"} 1"));
        }

        #[test]
        fn requeued_task_moves_to_alternate_resource() {
            let dead = FaultProfile {
                task_failure_rate: 1.0,
                ..FaultProfile::none()
            };
            let d = flaky_daemon(dead, DaemonConfig::default()).with_alternate_resource(Arc::new(
                LocalEmulatorResource::new("emu-backup", Arc::new(SvBackend::default()), 2),
            ));
            let tok = d.open_session("carol", PriorityClass::Production).unwrap();
            let id = d.submit(&tok, ir(15), PatternHint::None).unwrap();
            d.pump();
            // the primary always fails, so completion proves the second
            // dispatch excluded it and ran on the backup emulator
            assert_eq!(d.task_status(id).unwrap(), DaemonTaskStatus::Completed);
            assert_eq!(d.task_result(id).unwrap().shots, 15);
            assert!(d.metrics_text().contains("daemon_task_requeues_total"));
        }

        #[test]
        fn exclusion_is_advisory_without_alternates() {
            // every resource (there is only one) has failed once: dispatch
            // must still try the primary instead of starving the task
            let d = flaky_daemon(
                FaultProfile {
                    task_failure_rate: 0.6,
                    ..FaultProfile::none()
                },
                DaemonConfig {
                    max_task_retries: 50,
                    ..DaemonConfig::default()
                },
            );
            let tok = d.open_session("dave", PriorityClass::Test).unwrap();
            let id = d.submit(&tok, ir(10), PatternHint::None).unwrap();
            d.pump();
            assert_eq!(d.task_status(id).unwrap(), DaemonTaskStatus::Completed);
        }
    }

    #[test]
    fn merge_results_accumulates_counts() {
        let a = SampleResult::from_shots(2, &[0b00, 0b01], "x");
        let b = SampleResult::from_shots(2, &[0b01, 0b11], "x");
        let m = merge_results(a, b);
        assert_eq!(m.shots, 4);
        assert_eq!(m.counts[&0b01], 2);
        assert_eq!(m.counts[&0b00], 1);
        assert_eq!(m.counts[&0b11], 1);
    }
}
