//! Co-simulation of the two-level scheduling architecture.
//!
//! The quantitative engine behind the Table-1 and Figure-2 experiments: a
//! discrete-event model of hybrid jobs flowing through (1) the batch layer —
//! node admission — and (2) the middleware daemon — QPU multiplexing with
//! priority classes, shot-boundary preemption and pattern-aware interleaving.
//!
//! A [`HybridJob`] alternates classical phases (on its allocated nodes) and
//! quantum phases (queued at the daemon for the single QPU). QPU idle time
//! appears whenever every admitted job is in a classical phase; wasted node
//! time appears whenever a job holds nodes while blocked on the QPU queue.
//! The admission policy decides how many hybrid jobs may hold nodes at once:
//!
//! * [`AdmissionPolicy::Sequential`] — one hybrid job at a time: the
//!   "sequential QPU queue" Table 1 prescribes for pattern A, and the
//!   baseline a site gets without a middleware layer (QPU as an exclusive
//!   batch resource).
//! * [`AdmissionPolicy::NodeLimited`] — admit greedily while nodes last
//!   (plain interleaving: "interleave jobs to kill QPU idle time").
//! * [`AdmissionPolicy::PatternAware`] — admit while the *projected QPU
//!   duty* (sum of per-job duty ratios estimated from their Table-1 hints)
//!   stays under a target: fills the QPU without drowning the node pool
//!   (the paper's §3.5 "fine-grained orchestration" with `--hint=`).

use crate::session::PriorityClass;
use hpcqc_scheduler::{EventQueue, PatternHint, WaitStats};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One phase of a hybrid job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Classical compute on the job's nodes, seconds.
    Classical(f64),
    /// Quantum execution on the shared QPU, device-seconds.
    Quantum(f64),
}

/// A hybrid quantum-classical job for the co-simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridJob {
    pub id: u64,
    pub class: PriorityClass,
    pub hint: PatternHint,
    /// Nodes held for the job's entire admitted lifetime.
    pub nodes: u32,
    /// Alternating phases, executed in order.
    pub phases: Vec<Phase>,
    /// Arrival time at the batch layer (s).
    pub arrival: f64,
}

impl HybridJob {
    /// Total quantum seconds across phases.
    pub fn qpu_secs(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Quantum(s) => *s,
                _ => 0.0,
            })
            .sum()
    }

    /// Total classical seconds across phases.
    pub fn classical_secs(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Classical(s) => *s,
                _ => 0.0,
            })
            .sum()
    }

    /// QPU duty ratio: quantum / (quantum + classical).
    pub fn duty(&self) -> f64 {
        let q = self.qpu_secs();
        let c = self.classical_secs();
        if q + c > 0.0 {
            q / (q + c)
        } else {
            0.0
        }
    }
}

/// Estimated duty ratio from a Table-1 hint (used by pattern-aware admission
/// when it must decide *before* running the job).
pub fn hint_duty(hint: PatternHint) -> f64 {
    match hint {
        PatternHint::QcHeavy => 0.9,
        PatternHint::CcHeavy => 0.1,
        PatternHint::QcBalanced => 0.5,
        PatternHint::None => 0.5, // no information: assume balanced
    }
}

/// QPU dispatch policy at the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QpuPolicy {
    /// Arrival order.
    Fifo,
    /// Priority classes; optionally preempting non-production tasks at
    /// chunk boundaries.
    Priority { preemption: bool },
    /// Shortest expected QPU duration first — exploits the richer `--hint`
    /// of §3.5 ("the expected time running on the QC hardware") to cut mean
    /// wait at the daemon. Ties broken by waiting time.
    ShortestFirst,
}

/// Batch-layer admission policy (how many hybrid jobs hold nodes at once).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// One hybrid job at a time (exclusive QPU — the no-middleware baseline).
    Sequential,
    /// Admit while nodes are available.
    NodeLimited,
    /// Admit while nodes are available AND projected QPU duty ≤ `target`.
    PatternAware { target_duty: f64 },
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CosimConfig {
    pub nodes: u32,
    pub admission: AdmissionPolicy,
    pub qpu_policy: QpuPolicy,
    /// Non-production quantum phases execute in slices of this many device
    /// seconds, with preemption checks between slices.
    pub chunk_secs: f64,
}

impl Default for CosimConfig {
    fn default() -> Self {
        CosimConfig {
            nodes: 32,
            admission: AdmissionPolicy::NodeLimited,
            qpu_policy: QpuPolicy::Priority { preemption: true },
            chunk_secs: 10.0,
        }
    }
}

/// Aggregated outcome of one co-simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CosimReport {
    /// Fraction of the makespan the QPU was executing.
    pub qpu_utilization: f64,
    /// Total device-busy seconds.
    pub qpu_busy_secs: f64,
    /// End of the last job.
    pub makespan_secs: f64,
    /// Node-seconds held by jobs blocked on the QPU queue, as a fraction of
    /// total held node-seconds (classical waste from QPU contention, §2.4).
    pub node_waste_frac: f64,
    /// Batch + QPU wait statistics per class (wait = arrival → first phase).
    pub wait_by_class: BTreeMap<String, WaitStats>,
    /// Mean turnaround (arrival → completion) per class.
    pub turnaround_by_class: BTreeMap<String, f64>,
    /// QPU-level preemption count.
    pub preemptions: u32,
    /// Jobs completed.
    pub completed: usize,
}

#[derive(Debug, Clone)]
enum Ev {
    Arrival(u64),
    /// A classical phase of job `id` finished.
    ClassicalDone(u64),
    /// The QPU finished a slice of job `id` (`secs` of quantum work done).
    QpuSliceDone {
        id: u64,
        secs: f64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum JobState {
    WaitingAdmission,
    RunningClassical,
    WaitingQpu { since: f64, remaining: f64 },
    OnQpu { remaining: f64 },
    Done,
}

struct JobRt {
    job: HybridJob,
    state: JobState,
    phase_idx: usize,
    started: Option<f64>,
    finished: Option<f64>,
    node_wait_secs: f64,
    qpu_wait_secs: f64,
}

/// The co-simulator.
pub struct Cosim {
    cfg: CosimConfig,
    jobs: BTreeMap<u64, JobRt>,
    events: EventQueue<Ev>,
    admit_queue: Vec<u64>,
    qpu_queue: Vec<u64>,
    qpu_busy_with: Option<u64>,
    free_nodes: u32,
    qpu_busy_secs: f64,
    node_held_secs: f64,
    node_wasted_secs: f64,
    last_t: f64,
    preemptions: u32,
}

impl Cosim {
    pub fn new(cfg: CosimConfig, jobs: Vec<HybridJob>) -> Self {
        let mut events = EventQueue::new();
        for j in &jobs {
            events.schedule_at(j.arrival, Ev::Arrival(j.id));
        }
        Cosim {
            free_nodes: cfg.nodes,
            cfg,
            jobs: jobs
                .into_iter()
                .map(|j| {
                    (
                        j.id,
                        JobRt {
                            job: j,
                            state: JobState::WaitingAdmission,
                            phase_idx: 0,
                            started: None,
                            finished: None,
                            node_wait_secs: 0.0,
                            qpu_wait_secs: 0.0,
                        },
                    )
                })
                .collect(),
            events,
            admit_queue: Vec::new(),
            qpu_queue: Vec::new(),
            qpu_busy_with: None,
            qpu_busy_secs: 0.0,
            node_held_secs: 0.0,
            node_wasted_secs: 0.0,
            last_t: 0.0,
            preemptions: 0,
        }
    }

    fn accumulate(&mut self, now: f64) {
        let dt = now - self.last_t;
        if dt > 0.0 {
            if self.qpu_busy_with.is_some() {
                self.qpu_busy_secs += dt;
            }
            for rt in self.jobs.values_mut() {
                match rt.state {
                    JobState::RunningClassical | JobState::OnQpu { .. } => {
                        self.node_held_secs += rt.job.nodes as f64 * dt;
                    }
                    JobState::WaitingQpu { .. } => {
                        self.node_held_secs += rt.job.nodes as f64 * dt;
                        self.node_wasted_secs += rt.job.nodes as f64 * dt;
                        rt.qpu_wait_secs += dt;
                    }
                    JobState::WaitingAdmission => {
                        if rt.started.is_none() && rt.job.arrival <= self.last_t {
                            rt.node_wait_secs += dt;
                        }
                    }
                    JobState::Done => {}
                }
            }
        }
        self.last_t = now;
    }

    /// Projected duty of currently admitted jobs (hint-based).
    fn admitted_duty(&self) -> f64 {
        self.jobs
            .values()
            .filter(|rt| {
                matches!(
                    rt.state,
                    JobState::RunningClassical
                        | JobState::WaitingQpu { .. }
                        | JobState::OnQpu { .. }
                )
            })
            .map(|rt| hint_duty(rt.job.hint))
            .sum()
    }

    fn admitted_count(&self) -> usize {
        self.jobs
            .values()
            .filter(|rt| {
                matches!(
                    rt.state,
                    JobState::RunningClassical
                        | JobState::WaitingQpu { .. }
                        | JobState::OnQpu { .. }
                )
            })
            .count()
    }

    /// Try to admit waiting jobs per the admission policy (class priority,
    /// then arrival order).
    fn admit_pass(&mut self, now: f64) {
        self.admit_queue.sort_by(|&a, &b| {
            let ja = &self.jobs[&a].job;
            let jb = &self.jobs[&b].job;
            ja.class
                .rank()
                .cmp(&jb.class.rank())
                .then(ja.arrival.partial_cmp(&jb.arrival).expect("finite"))
                .then(a.cmp(&b))
        });
        let mut admitted = Vec::new();
        for &id in &self.admit_queue {
            let job = &self.jobs[&id].job;
            if job.nodes > self.free_nodes {
                break; // FIFO head-blocking at the batch layer
            }
            let ok = match self.cfg.admission {
                AdmissionPolicy::Sequential => self.admitted_count() + admitted.len() == 0,
                AdmissionPolicy::NodeLimited => true,
                AdmissionPolicy::PatternAware { target_duty } => {
                    let projected: f64 = self.admitted_duty()
                        + admitted
                            .iter()
                            .map(|&i: &u64| hint_duty(self.jobs[&i].job.hint))
                            .sum::<f64>();
                    self.admitted_count() + admitted.len() == 0
                        || projected + hint_duty(job.hint) <= target_duty
                }
            };
            if !ok {
                break;
            }
            admitted.push(id);
            self.free_nodes -= job.nodes;
        }
        for id in admitted {
            self.admit_queue.retain(|&x| x != id);
            let rt = self.jobs.get_mut(&id).expect("job exists");
            rt.started = Some(now);
            self.start_phase(id, now);
        }
    }

    /// Begin the current phase of an admitted job.
    fn start_phase(&mut self, id: u64, now: f64) {
        let rt = self.jobs.get_mut(&id).expect("job exists");
        match rt.job.phases.get(rt.phase_idx).copied() {
            None => {
                rt.state = JobState::Done;
                rt.finished = Some(now);
                self.free_nodes += rt.job.nodes;
            }
            Some(Phase::Classical(secs)) => {
                rt.state = JobState::RunningClassical;
                self.events.schedule_at(now + secs, Ev::ClassicalDone(id));
            }
            Some(Phase::Quantum(secs)) => {
                rt.state = JobState::WaitingQpu {
                    since: now,
                    remaining: secs,
                };
                self.qpu_queue.push(id);
            }
        }
    }

    /// Dispatch the QPU if it's idle.
    fn qpu_pass(&mut self, now: f64) {
        if self.qpu_busy_with.is_some() || self.qpu_queue.is_empty() {
            return;
        }
        // order the queue per policy
        match self.cfg.qpu_policy {
            QpuPolicy::Fifo => {
                self.qpu_queue.sort_by(|&a, &b| {
                    let sa = waiting_since(&self.jobs[&a]);
                    let sb = waiting_since(&self.jobs[&b]);
                    sa.partial_cmp(&sb).expect("finite").then(a.cmp(&b))
                });
            }
            QpuPolicy::Priority { .. } => {
                self.qpu_queue.sort_by(|&a, &b| {
                    let ja = &self.jobs[&a];
                    let jb = &self.jobs[&b];
                    ja.job
                        .class
                        .rank()
                        .cmp(&jb.job.class.rank())
                        .then(
                            waiting_since(ja)
                                .partial_cmp(&waiting_since(jb))
                                .expect("finite"),
                        )
                        .then(a.cmp(&b))
                });
            }
            QpuPolicy::ShortestFirst => {
                self.qpu_queue.sort_by(|&a, &b| {
                    let ra = remaining_quantum(&self.jobs[&a]);
                    let rb = remaining_quantum(&self.jobs[&b]);
                    ra.partial_cmp(&rb)
                        .expect("finite")
                        .then(
                            waiting_since(&self.jobs[&a])
                                .partial_cmp(&waiting_since(&self.jobs[&b]))
                                .expect("finite"),
                        )
                        .then(a.cmp(&b))
                });
            }
        }
        let id = self.qpu_queue.remove(0);
        let preemptible = {
            let rt = &self.jobs[&id];
            !matches!(rt.job.class, PriorityClass::Production)
        };
        let rt = self.jobs.get_mut(&id).expect("job exists");
        let JobState::WaitingQpu { remaining, .. } = rt.state else {
            return; // stale entry
        };
        let slice = if preemptible
            && matches!(
                self.cfg.qpu_policy,
                QpuPolicy::Priority { preemption: true }
            ) {
            remaining.min(self.cfg.chunk_secs)
        } else {
            remaining
        };
        rt.state = JobState::OnQpu { remaining };
        self.qpu_busy_with = Some(id);
        self.events
            .schedule_at(now + slice, Ev::QpuSliceDone { id, secs: slice });
    }

    /// Run the whole simulation and report.
    pub fn run(mut self) -> CosimReport {
        while let Some((t, ev)) = self.events.pop() {
            self.accumulate(t);
            match ev {
                Ev::Arrival(id) => {
                    self.admit_queue.push(id);
                    self.admit_pass(t);
                }
                Ev::ClassicalDone(id) => {
                    let rt = self.jobs.get_mut(&id).expect("job exists");
                    rt.phase_idx += 1;
                    self.start_phase(id, t);
                    // phase end may free nodes → admit; may queue QPU → pass
                    self.admit_pass(t);
                }
                Ev::QpuSliceDone { id, secs } => {
                    self.qpu_busy_with = None;
                    let rt = self.jobs.get_mut(&id).expect("job exists");
                    let JobState::OnQpu { remaining } = rt.state else {
                        unreachable!("slice completion for a job not on the QPU");
                    };
                    let left = remaining - secs;
                    if left > 1e-9 {
                        // unfinished: preemption check — anyone more urgent?
                        rt.state = JobState::WaitingQpu {
                            since: t,
                            remaining: left,
                        };
                        self.qpu_queue.push(id);
                        let class = self.jobs[&id].job.class;
                        if let QpuPolicy::Priority { preemption: true } = self.cfg.qpu_policy {
                            let more_urgent = self
                                .qpu_queue
                                .iter()
                                .any(|&o| self.jobs[&o].job.class.rank() < class.rank());
                            if more_urgent {
                                self.preemptions += 1;
                            }
                        }
                    } else {
                        rt.phase_idx += 1;
                        self.start_phase(id, t);
                        self.admit_pass(t);
                    }
                }
            }
            self.qpu_pass(t);
        }
        self.report()
    }

    fn report(self) -> CosimReport {
        let makespan = self
            .jobs
            .values()
            .filter_map(|rt| rt.finished)
            .fold(0.0f64, f64::max);
        let mut wait_by_class: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let mut turnaround: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut completed = 0;
        for rt in self.jobs.values() {
            if let (Some(start), Some(end)) = (rt.started, rt.finished) {
                completed += 1;
                let class = rt.job.class.as_str().to_string();
                wait_by_class
                    .entry(class.clone())
                    .or_default()
                    .push((rt.job.arrival, start));
                turnaround
                    .entry(class)
                    .or_default()
                    .push(end - rt.job.arrival);
            }
        }
        // reuse WaitStats via synthetic jobs is clumsy; compute directly
        let wait_stats = |pairs: &[(f64, f64)]| {
            let mut waits: Vec<f64> = pairs.iter().map(|(a, s)| s - a).collect();
            waits.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let n = waits.len();
            if n == 0 {
                return WaitStats::default();
            }
            let p95 = waits[(((0.95 * n as f64).ceil() as usize).max(1) - 1).min(n - 1)];
            WaitStats {
                count: n,
                mean_wait_secs: waits.iter().sum::<f64>() / n as f64,
                p95_wait_secs: p95,
                max_wait_secs: *waits.last().expect("non-empty"),
                mean_turnaround_secs: 0.0,
            }
        };
        CosimReport {
            qpu_utilization: if makespan > 0.0 {
                self.qpu_busy_secs / makespan
            } else {
                0.0
            },
            qpu_busy_secs: self.qpu_busy_secs,
            makespan_secs: makespan,
            node_waste_frac: if self.node_held_secs > 0.0 {
                self.node_wasted_secs / self.node_held_secs
            } else {
                0.0
            },
            wait_by_class: wait_by_class
                .iter()
                .map(|(k, v)| (k.clone(), wait_stats(v)))
                .collect(),
            turnaround_by_class: turnaround
                .into_iter()
                .map(|(k, v)| {
                    let m = v.iter().sum::<f64>() / v.len() as f64;
                    (k, m)
                })
                .collect(),
            preemptions: self.preemptions,
            completed,
        }
    }
}

fn waiting_since(rt: &JobRt) -> f64 {
    match rt.state {
        JobState::WaitingQpu { since, .. } => since,
        _ => f64::INFINITY,
    }
}

fn remaining_quantum(rt: &JobRt) -> f64 {
    match rt.state {
        JobState::WaitingQpu { remaining, .. } => remaining,
        _ => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(
        id: u64,
        class: PriorityClass,
        hint: PatternHint,
        phases: Vec<Phase>,
        arrival: f64,
    ) -> HybridJob {
        HybridJob {
            id,
            class,
            hint,
            nodes: 1,
            phases,
            arrival,
        }
    }

    fn balanced(id: u64, arrival: f64) -> HybridJob {
        job(
            id,
            PriorityClass::Test,
            PatternHint::QcBalanced,
            vec![
                Phase::Classical(50.0),
                Phase::Quantum(50.0),
                Phase::Classical(50.0),
                Phase::Quantum(50.0),
            ],
            arrival,
        )
    }

    #[test]
    fn single_job_timing_exact() {
        let r = Cosim::new(
            CosimConfig {
                admission: AdmissionPolicy::Sequential,
                ..CosimConfig::default()
            },
            vec![balanced(1, 0.0)],
        )
        .run();
        assert_eq!(r.completed, 1);
        assert!((r.makespan_secs - 200.0).abs() < 1e-9);
        assert!((r.qpu_busy_secs - 100.0).abs() < 1e-9);
        assert!((r.qpu_utilization - 0.5).abs() < 1e-9);
        assert_eq!(r.preemptions, 0);
    }

    #[test]
    fn duty_and_hint_estimates() {
        let j = balanced(1, 0.0);
        assert!((j.duty() - 0.5).abs() < 1e-12);
        assert!(hint_duty(PatternHint::QcHeavy) > hint_duty(PatternHint::QcBalanced));
        assert!(hint_duty(PatternHint::QcBalanced) > hint_duty(PatternHint::CcHeavy));
    }

    #[test]
    fn interleaving_beats_sequential_on_balanced_mix() {
        let jobs: Vec<HybridJob> = (0..10).map(|i| balanced(i, 0.0)).collect();
        let seq = Cosim::new(
            CosimConfig {
                admission: AdmissionPolicy::Sequential,
                ..CosimConfig::default()
            },
            jobs.clone(),
        )
        .run();
        let inter = Cosim::new(
            CosimConfig {
                admission: AdmissionPolicy::NodeLimited,
                ..CosimConfig::default()
            },
            jobs,
        )
        .run();
        assert!(
            inter.qpu_utilization > seq.qpu_utilization + 0.2,
            "interleave {:.3} vs sequential {:.3}",
            inter.qpu_utilization,
            seq.qpu_utilization
        );
        assert!(inter.makespan_secs < seq.makespan_secs);
    }

    #[test]
    fn sequential_is_fine_for_qc_heavy_pattern_a() {
        // Pattern A: the QPU is the bottleneck either way; utilization gap
        // between sequential and interleaved is small.
        let mk = |id| {
            job(
                id,
                PriorityClass::Test,
                PatternHint::QcHeavy,
                vec![Phase::Classical(5.0), Phase::Quantum(95.0)],
                0.0,
            )
        };
        let jobs: Vec<HybridJob> = (0..8).map(mk).collect();
        let seq = Cosim::new(
            CosimConfig {
                admission: AdmissionPolicy::Sequential,
                ..CosimConfig::default()
            },
            jobs.clone(),
        )
        .run();
        let inter = Cosim::new(CosimConfig::default(), jobs).run();
        assert!(seq.qpu_utilization > 0.85);
        assert!(inter.qpu_utilization - seq.qpu_utilization < 0.12);
    }

    #[test]
    fn pattern_aware_reduces_node_waste_vs_greedy_on_qc_heavy() {
        // Many QC-heavy jobs: greedy admission parks them all on the QPU
        // queue, wasting node time; pattern-aware admits ~1-2 at a time.
        let mk = |id| {
            job(
                id,
                PriorityClass::Test,
                PatternHint::QcHeavy,
                vec![Phase::Classical(5.0), Phase::Quantum(95.0)],
                0.0,
            )
        };
        let jobs: Vec<HybridJob> = (0..8).map(mk).collect();
        let greedy = Cosim::new(
            CosimConfig {
                admission: AdmissionPolicy::NodeLimited,
                ..CosimConfig::default()
            },
            jobs.clone(),
        )
        .run();
        let aware = Cosim::new(
            CosimConfig {
                admission: AdmissionPolicy::PatternAware { target_duty: 1.2 },
                ..CosimConfig::default()
            },
            jobs,
        )
        .run();
        assert!(
            aware.node_waste_frac < greedy.node_waste_frac,
            "aware {:.3} vs greedy {:.3}",
            aware.node_waste_frac,
            greedy.node_waste_frac
        );
        // without sacrificing QPU utilization
        assert!(aware.qpu_utilization > greedy.qpu_utilization - 0.05);
    }

    #[test]
    fn production_wait_low_under_priority_policy() {
        let mut jobs: Vec<HybridJob> = (0..6)
            .map(|i| {
                job(
                    i,
                    PriorityClass::Development,
                    PatternHint::QcHeavy,
                    vec![Phase::Quantum(200.0)],
                    0.0,
                )
            })
            .collect();
        jobs.push(job(
            99,
            PriorityClass::Production,
            PatternHint::QcHeavy,
            vec![Phase::Quantum(50.0)],
            100.0,
        ));
        let prio = Cosim::new(
            CosimConfig {
                qpu_policy: QpuPolicy::Priority { preemption: true },
                chunk_secs: 10.0,
                ..CosimConfig::default()
            },
            jobs.clone(),
        )
        .run();
        let fifo = Cosim::new(
            CosimConfig {
                qpu_policy: QpuPolicy::Fifo,
                ..CosimConfig::default()
            },
            jobs,
        )
        .run();
        let p_prio = prio.turnaround_by_class["production"];
        let p_fifo = fifo.turnaround_by_class["production"];
        assert!(
            p_prio < p_fifo / 2.0,
            "priority {p_prio:.0}s vs fifo {p_fifo:.0}s"
        );
        assert!(prio.preemptions > 0, "dev chunks yielded to production");
    }

    #[test]
    fn node_waste_counted_while_blocked_on_qpu() {
        // two jobs, both want the QPU immediately: the loser holds a node.
        let mk = |id| {
            job(
                id,
                PriorityClass::Test,
                PatternHint::QcHeavy,
                vec![Phase::Quantum(100.0)],
                0.0,
            )
        };
        let r = Cosim::new(
            CosimConfig {
                admission: AdmissionPolicy::NodeLimited,
                ..CosimConfig::default()
            },
            vec![mk(1), mk(2)],
        )
        .run();
        assert!(r.node_waste_frac > 0.2, "waste {:.3}", r.node_waste_frac);
        assert!((r.qpu_utilization - 1.0).abs() < 1e-6);
    }

    #[test]
    fn shortest_first_cuts_mean_wait() {
        // a short blocker occupies the QPU while one long and several short
        // jobs queue behind it: SJF then runs the short ones first, cutting
        // aggregate turnaround vs FIFO.
        let mut jobs = vec![
            job(
                99,
                PriorityClass::Test,
                PatternHint::QcHeavy,
                vec![Phase::Quantum(5.0)],
                0.0,
            ),
            job(
                0,
                PriorityClass::Test,
                PatternHint::QcHeavy,
                vec![Phase::Quantum(500.0)],
                0.05,
            ),
        ];
        for i in 1..6 {
            jobs.push(job(
                i,
                PriorityClass::Test,
                PatternHint::QcHeavy,
                vec![Phase::Quantum(20.0)],
                0.1, // queued behind the blocker together with the long job
            ));
        }
        let fifo = Cosim::new(
            CosimConfig {
                qpu_policy: QpuPolicy::Fifo,
                ..CosimConfig::default()
            },
            jobs.clone(),
        )
        .run();
        let sjf = Cosim::new(
            CosimConfig {
                qpu_policy: QpuPolicy::ShortestFirst,
                ..CosimConfig::default()
            },
            jobs,
        )
        .run();
        let t_fifo = fifo.turnaround_by_class["test"];
        let t_sjf = sjf.turnaround_by_class["test"];
        assert!(
            t_sjf < t_fifo * 0.6,
            "SJF {t_sjf:.0}s should beat FIFO {t_fifo:.0}s"
        );
        // identical total work either way
        assert!((sjf.qpu_busy_secs - fifo.qpu_busy_secs).abs() < 1e-9);
    }

    #[test]
    fn report_contains_all_classes() {
        let jobs = vec![
            job(
                1,
                PriorityClass::Production,
                PatternHint::None,
                vec![Phase::Quantum(10.0)],
                0.0,
            ),
            job(
                2,
                PriorityClass::Development,
                PatternHint::None,
                vec![Phase::Quantum(10.0)],
                0.0,
            ),
        ];
        let r = Cosim::new(CosimConfig::default(), jobs).run();
        assert_eq!(r.completed, 2);
        assert!(r.wait_by_class.contains_key("production"));
        assert!(r.wait_by_class.contains_key("development"));
        assert!(r.turnaround_by_class["production"] <= r.turnaround_by_class["development"]);
    }
}
