//! Property-based tests on the middleware: HTTP-parser totality, queue
//! ordering invariants, and exact conservation laws in the co-simulation.

use hpcqc_middleware::http::parse_request;
use hpcqc_middleware::taskqueue::reference::ReferenceTaskQueue;
use hpcqc_middleware::{
    AdmissionPolicy, Cosim, CosimConfig, FairshareTracker, HybridJob, Phase, PriorityClass,
    QpuPolicy, QuantumTask, QueueConfig, TaskQueue,
};
use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder};
use hpcqc_scheduler::PatternHint;
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::Arc;

fn dummy_ir() -> Arc<ProgramIr> {
    let reg = Register::linear(2, 6.0).unwrap();
    let mut b = SequenceBuilder::new(reg);
    b.add_global_pulse(Pulse::constant(0.1, 1.0, 0.0, 0.0).unwrap());
    Arc::new(ProgramIr::new(b.build().unwrap(), 1, "prop"))
}

fn arb_class() -> impl Strategy<Value = PriorityClass> {
    prop_oneof![
        Just(PriorityClass::Production),
        Just(PriorityClass::Test),
        Just(PriorityClass::Development),
    ]
}

/// One step of the differential queue test.
#[derive(Debug, Clone)]
enum QueueOp {
    Push {
        class: PriorityClass,
        session: u8,
        user: u8,
        at: f64,
    },
    Pop {
        now: f64,
    },
    Cancel {
        pick: u8,
    },
    Charge {
        user: u8,
        secs: f64,
        now: f64,
    },
}

/// Submission timestamps: mostly plausible, sometimes non-finite (which
/// both queues must reject identically at push). The finite arm is repeated
/// for weight — the shim's `prop_oneof!` is an unweighted union.
fn arb_stamp() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0f64..1e6,
        0.0f64..1e6,
        0.0f64..1e6,
        0.0f64..1e6,
        0.0f64..1e6,
        0.0f64..1e6,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

/// Clock values for ordering queries, including corrupted ones.
fn arb_now() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e3f64..1e7,
        -1e3f64..1e7,
        -1e3f64..1e7,
        -1e3f64..1e7,
        -1e3f64..1e7,
        -1e3f64..1e7,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

fn arb_push_op() -> impl Strategy<Value = QueueOp> {
    (arb_class(), 0u8..4, 0u8..3, arb_stamp()).prop_map(|(class, session, user, at)| {
        QueueOp::Push {
            class,
            session,
            user,
            at,
        }
    })
}

fn arb_queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        arb_push_op(),
        arb_push_op(),
        arb_push_op(),
        arb_push_op(),
        arb_now().prop_map(|now| QueueOp::Pop { now }),
        arb_now().prop_map(|now| QueueOp::Pop { now }),
        any::<u8>().prop_map(|pick| QueueOp::Cancel { pick }),
        (0u8..3, 0.1f64..100.0, 0.0f64..1e6).prop_map(|(user, secs, now)| QueueOp::Charge {
            user,
            secs,
            now
        }),
    ]
}

fn arb_hybrid_job(id: u64) -> impl Strategy<Value = HybridJob> {
    (
        arb_class(),
        proptest::collection::vec((any::<bool>(), 1.0f64..200.0), 1..6),
        0.0f64..500.0,
        1u32..4,
    )
        .prop_map(move |(class, phases, arrival, nodes)| HybridJob {
            id,
            class,
            hint: PatternHint::None,
            nodes,
            phases: phases
                .into_iter()
                .map(|(q, secs)| {
                    if q {
                        Phase::Quantum(secs)
                    } else {
                        Phase::Classical(secs)
                    }
                })
                .collect(),
            arrival,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn http_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // totality: arbitrary byte soup must produce Ok or Err, never panic
        let _ = parse_request(&mut Cursor::new(bytes));
    }

    #[test]
    fn http_parser_accepts_what_it_should(
        path in "[a-z0-9/]{1,30}",
        body in "[ -~]{0,100}",
    ) {
        let raw = format!(
            "POST /{path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = parse_request(&mut Cursor::new(raw.into_bytes())).unwrap();
        prop_assert_eq!(req.method, "POST");
        prop_assert_eq!(req.body, body.into_bytes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn queue_pop_respects_class_order_without_aging(
        classes in proptest::collection::vec(arb_class(), 1..20),
    ) {
        let mut q = TaskQueue::new(QueueConfig { aging_secs: 0.0, max_tasks_per_session: 0, ..QueueConfig::default() });
        for (i, &class) in classes.iter().enumerate() {
            q.push(QuantumTask {
                id: i as u64,
                session: format!("s{i}"),
                user: "u".into(),
                class,
                ir: dummy_ir(),
                hint: PatternHint::None,
                submitted_at: i as f64,
            })
            .unwrap();
        }
        let mut last_rank = 0u8;
        let mut last_submit_within_rank = f64::NEG_INFINITY;
        while let Some(t) = q.pop(1e9) {
            let rank = t.class.rank();
            prop_assert!(rank >= last_rank, "rank regressed: {rank} after {last_rank}");
            if rank > last_rank {
                last_rank = rank;
                last_submit_within_rank = f64::NEG_INFINITY;
            }
            prop_assert!(
                t.submitted_at >= last_submit_within_rank,
                "FIFO violated within class"
            );
            last_submit_within_rank = t.submitted_at;
        }
    }

    #[test]
    fn queue_never_panics_for_arbitrary_timestamps(
        stamps in proptest::collection::vec(
            prop_oneof![
                any::<f64>(),                       // includes NaN and ±inf
                -1e12f64..1e12,                     // plausible clock values
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
            ],
            1..20,
        ),
        classes in proptest::collection::vec(arb_class(), 20),
        now in prop_oneof![any::<f64>(), Just(f64::NAN)],
    ) {
        let mut q = TaskQueue::new(QueueConfig::default());
        let mut admitted = 0usize;
        for (i, &at) in stamps.iter().enumerate() {
            let r = q.push(QuantumTask {
                id: i as u64,
                session: format!("s{i}"),
                user: "u".into(),
                class: classes[i],
                ir: dummy_ir(),
                hint: PatternHint::None,
                submitted_at: at,
            });
            // push admits exactly the finite timestamps
            prop_assert_eq!(r.is_ok(), at.is_finite());
            admitted += usize::from(at.is_finite());
        }
        prop_assert_eq!(q.len(), admitted);
        // ordering queries never panic, whatever "now" is
        prop_assert_eq!(q.snapshot(now).len(), admitted);
        let _ = q.should_preempt(PriorityClass::Development, now);
        let mut popped = 0usize;
        while q.pop(now).is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, admitted, "every admitted task pops exactly once");
    }

    #[test]
    fn indexed_queue_matches_reference_oracle(
        ops in proptest::collection::vec(arb_queue_op(), 1..60),
        quota in 0usize..4,
        aging in prop_oneof![Just(0.0f64), Just(50.0), Just(3600.0)],
        weight in prop_oneof![Just(0.0f64), Just(0.9)],
        check_now in arb_now(),
    ) {
        // Differential test: the indexed queue must be *bit-for-bit*
        // equivalent to the legacy linear-scan implementation — identical
        // pop order, quota errors, fair-share demotions, and preemption
        // answers over arbitrary interleavings and clocks (incl. NaN/±inf).
        let cfg = QueueConfig {
            aging_secs: aging,
            max_tasks_per_session: quota,
            fairshare_weight: weight,
            fairshare_scale_secs: 10.0,
        };
        // one shared tracker: both queues see the exact same usage state
        let tracker = FairshareTracker::new(100.0);
        let mut indexed = TaskQueue::new(cfg).with_fairshare(tracker.clone());
        let mut oracle = ReferenceTaskQueue::new(cfg).with_fairshare(tracker.clone());
        let ir = dummy_ir();
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                QueueOp::Push { class, session, user, at } => {
                    let t = QuantumTask {
                        id: next_id,
                        session: format!("s{session}"),
                        user: format!("u{user}"),
                        class,
                        ir: ir.clone(),
                        hint: PatternHint::None,
                        submitted_at: at,
                    };
                    next_id += 1;
                    let a = indexed.push(t.clone());
                    let b = oracle.push(t);
                    prop_assert_eq!(&a, &b, "push admission/error parity");
                    if a.is_ok() {
                        live.push(next_id - 1);
                    }
                }
                QueueOp::Pop { now } => {
                    let a = indexed.pop(now).map(|t| t.id);
                    let b = oracle.pop(now).map(|t| t.id);
                    prop_assert_eq!(a, b, "pop order parity");
                    if let Some(id) = a {
                        live.retain(|&x| x != id);
                    }
                }
                QueueOp::Cancel { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[pick as usize % live.len()];
                    let a = indexed.remove(id).map(|t| t.id);
                    let b = oracle.remove(id).map(|t| t.id);
                    prop_assert_eq!(a, b, "cancel parity");
                    live.retain(|&x| x != id);
                }
                QueueOp::Charge { user, secs, now } => {
                    tracker.charge(&format!("u{user}"), secs, now);
                }
            }
            prop_assert_eq!(indexed.len(), oracle.len());
            prop_assert_eq!(
                indexed.peek(check_now).map(|t| t.id),
                oracle.peek(check_now).map(|t| t.id),
                "peek parity after each op"
            );
            for class in [
                PriorityClass::Production,
                PriorityClass::Test,
                PriorityClass::Development,
            ] {
                prop_assert_eq!(
                    indexed.should_preempt(class, check_now),
                    oracle.should_preempt(class, check_now),
                    "preemption parity"
                );
            }
        }
        let a: Vec<u64> = indexed.snapshot(check_now).iter().map(|t| t.id).collect();
        let b: Vec<u64> = oracle.snapshot(check_now).iter().map(|t| t.id).collect();
        prop_assert_eq!(a, b, "snapshot (dispatch-order) parity");
        loop {
            let x = indexed.pop(check_now).map(|t| t.id);
            let y = oracle.pop(check_now).map(|t| t.id);
            prop_assert_eq!(x, y, "full-drain parity");
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn cosim_conservation_laws(
        raw_jobs in proptest::collection::vec((any::<bool>(), 1.0f64..200.0), 1..6)
            .prop_flat_map(|_| proptest::collection::vec(arb_hybrid_job(0), 1..15)),
        seq in any::<bool>(),
    ) {
        // re-id jobs uniquely
        let jobs: Vec<HybridJob> = raw_jobs
            .into_iter()
            .enumerate()
            .map(|(i, mut j)| {
                j.id = i as u64;
                j.nodes = j.nodes.min(4);
                j
            })
            .collect();
        let total_q: f64 = jobs.iter().map(|j| j.qpu_secs()).sum();
        let n = jobs.len();
        let admission = if seq { AdmissionPolicy::Sequential } else { AdmissionPolicy::NodeLimited };
        let report = Cosim::new(
            CosimConfig {
                nodes: 8,
                admission,
                qpu_policy: QpuPolicy::Priority { preemption: true },
                chunk_secs: 25.0,
            },
            jobs,
        )
        .run();
        // conservation: the QPU executed exactly the submitted quantum work
        prop_assert!(
            (report.qpu_busy_secs - total_q).abs() < 1e-6,
            "busy {} vs submitted {total_q}",
            report.qpu_busy_secs
        );
        prop_assert_eq!(report.completed, n, "no job lost or stuck");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&report.qpu_utilization));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&report.node_waste_frac));
        // turnaround = end − arrival ≤ end ≤ makespan for every class
        let longest: f64 = report
            .turnaround_by_class
            .values()
            .fold(0.0f64, |a, &b| a.max(b));
        prop_assert!(
            report.makespan_secs + 1e-6 >= longest,
            "makespan {} < mean turnaround {longest}",
            report.makespan_secs
        );
    }
}
