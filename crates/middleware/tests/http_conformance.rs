//! HTTP/1.1 transport conformance: keep-alive, pipelining, truncation,
//! slowloris deadlines and backpressure telemetry.
//!
//! These tests speak raw TCP at the event-loop server, exercising exactly
//! the segmentations and abuse patterns the readiness-driven front end
//! claims to handle. Handlers echo enough request detail to prove ordering.

use hpcqc_middleware::http::{Handler, Request, Response};
use hpcqc_middleware::server::{HttpServer, ServerConfig};
use hpcqc_telemetry::TransportMetrics;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn echo_handler() -> Handler {
    Arc::new(|req: Request| {
        Response::json(
            200,
            format!(r#"{{"path":{:?},"body_len":{}}}"#, req.path, req.body.len()),
        )
    })
}

fn server_with(cfg: ServerConfig) -> (HttpServer, TransportMetrics) {
    let metrics = TransportMetrics::default();
    let server = HttpServer::spawn_with(
        0,
        echo_handler(),
        ServerConfig {
            metrics: Some(metrics.clone()),
            ..cfg
        },
    )
    .unwrap();
    (server, metrics)
}

fn connect(server: &HttpServer) -> TcpStream {
    let s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// Read exactly one HTTP response off the stream; returns
/// `(status, headers, body)` and asserts nothing followed it. Tests that
/// expect a pipelined successor use [`read_one_of_many`] instead: TCP is
/// free to deliver both responses in one segment (the server's vectored
/// flush even makes that the common case), so bytes past the first
/// response are carry-over there, not garbage.
fn read_one_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut carry = Vec::new();
    let resp = read_one_of_many(stream, &mut carry);
    assert!(carry.is_empty(), "unexpected trailing bytes: {carry:?}");
    resp
}

/// Read one HTTP response, leaving any bytes of a pipelined successor that
/// arrived in the same segment in `carry` for the next call.
fn read_one_of_many(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, String) {
    let buf = carry;
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = find(buf, b"\r\n\r\n") {
            let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    l.to_ascii_lowercase()
                        .strip_prefix("content-length:")
                        .map(str::to_string)
                })
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
            let body_start = head_end + 4;
            while buf.len() < body_start + content_length {
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "EOF mid-body");
                buf.extend_from_slice(&chunk[..n]);
            }
            let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
            let body =
                String::from_utf8(buf[body_start..body_start + content_length].to_vec()).unwrap();
            buf.drain(..body_start + content_length);
            return (status, head, body);
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "EOF before response head");
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Block until the peer closes (EOF); panics if data arrives instead or the
/// read times out.
fn expect_eof(stream: &mut TcpStream, within: Duration) {
    stream.set_read_timeout(Some(within)).unwrap();
    let mut chunk = [0u8; 256];
    match stream.read(&mut chunk) {
        Ok(0) => {}
        Ok(n) => panic!("expected EOF, got {n} bytes"),
        Err(e) => panic!("expected EOF, got error {e}"),
    }
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let (server, metrics) = server_with(ServerConfig::default());
    let mut stream = connect(&server);
    for i in 0..5 {
        stream
            .write_all(format!("GET /seq/{i} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes())
            .unwrap();
        let (status, head, body) = read_one_response(&mut stream);
        assert_eq!(status, 200);
        assert!(head.contains("connection: keep-alive"), "{head}");
        assert!(body.contains(&format!("/seq/{i}")), "{body}");
    }
    // Give the event loop a beat to account the final completion.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        metrics.value("http_keepalive_reuse_total") >= 4.0,
        "5 requests on one connection = 4 reuses, got {}",
        metrics.value("http_keepalive_reuse_total")
    );
    assert_eq!(metrics.value("http_connections_accepted_total"), 1.0);
}

#[test]
fn pipelined_requests_in_one_segment_answer_in_order() {
    let (server, _metrics) = server_with(ServerConfig::default());
    let mut stream = connect(&server);
    // Two complete requests in a single write (one TCP segment with nodelay).
    stream
        .write_all(b"GET /first HTTP/1.1\r\nhost: x\r\n\r\nGET /second HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    let mut carry = Vec::new();
    let (st1, _, body1) = read_one_of_many(&mut stream, &mut carry);
    let (st2, _, body2) = read_one_of_many(&mut stream, &mut carry);
    assert!(carry.is_empty(), "unexpected trailing bytes: {carry:?}");
    assert_eq!((st1, st2), (200, 200));
    assert!(
        body1.contains("/first"),
        "responses must keep order: {body1}"
    );
    assert!(body2.contains("/second"), "{body2}");
}

#[test]
fn pipelined_request_split_across_segments() {
    let (server, _metrics) = server_with(ServerConfig::default());
    let mut stream = connect(&server);
    // A POST whose head+body straddle three writes, with the follow-up GET's
    // first bytes riding in the same segment as the POST's body tail.
    stream
        .write_all(b"POST /split HTTP/1.1\r\nhost: x\r\ncontent-le")
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    stream.write_all(b"ngth: 10\r\n\r\n12345").unwrap();
    std::thread::sleep(Duration::from_millis(30));
    stream
        .write_all(b"67890GET /tail HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    let mut carry = Vec::new();
    let (st1, _, body1) = read_one_of_many(&mut stream, &mut carry);
    assert_eq!(st1, 200);
    assert!(
        body1.contains("/split") && body1.contains("\"body_len\":10"),
        "{body1}"
    );
    let (st2, _, body2) = read_one_of_many(&mut stream, &mut carry);
    assert_eq!(st2, 200);
    assert!(body2.contains("/tail"), "{body2}");
    assert!(carry.is_empty(), "unexpected trailing bytes: {carry:?}");
}

#[test]
fn truncated_body_on_reused_connection_closes_without_response() {
    let (server, metrics) = server_with(ServerConfig {
        request_deadline: Duration::from_millis(200),
        ..Default::default()
    });
    let mut stream = connect(&server);
    // First request completes normally — the connection is now "reused".
    stream
        .write_all(b"GET /warm HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    // Second request declares 50 body bytes but delivers 5, then half-closes.
    stream
        .write_all(b"POST /trunc HTTP/1.1\r\nhost: x\r\ncontent-length: 50\r\n\r\nshort")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    // The server must close the connection without inventing a response.
    expect_eof(&mut stream, Duration::from_secs(5));
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        metrics
            .registry()
            .get_value(
                "http_requests_total",
                &hpcqc_telemetry::labels(&[("code", "2xx")])
            )
            .unwrap_or(0.0),
        1.0,
        "only the warm-up request may be counted; the truncated one got no response"
    );
}

#[test]
fn slowloris_partial_request_is_closed_by_deadline() {
    let (server, metrics) = server_with(ServerConfig {
        request_deadline: Duration::from_millis(200),
        idle_timeout: Duration::from_secs(30),
        ..Default::default()
    });
    let mut stream = connect(&server);
    // Dribble a request head one fragment at a time, never finishing it.
    stream.write_all(b"GET /slow HTTP/1.1\r\nhost").unwrap();
    let started = Instant::now();
    // The sweeper must cut the connection near the 200 ms deadline.
    expect_eof(&mut stream, Duration::from_secs(5));
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "slowloris connection must be closed promptly, took {elapsed:?}"
    );
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        metrics
            .registry()
            .get_value(
                "http_deadline_closes_total",
                &hpcqc_telemetry::labels(&[("kind", "read")])
            )
            .unwrap_or(0.0)
            >= 1.0,
        "read-deadline close must be counted"
    );
    assert!(metrics.value("http_connections_closed_total") >= 1.0);
}

#[test]
fn idle_keep_alive_connection_is_reaped() {
    let (server, metrics) = server_with(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..Default::default()
    });
    let mut stream = connect(&server);
    stream
        .write_all(b"GET /once HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    // Now go idle; the sweeper reaps the connection.
    expect_eof(&mut stream, Duration::from_secs(5));
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        metrics
            .registry()
            .get_value(
                "http_deadline_closes_total",
                &hpcqc_telemetry::labels(&[("kind", "idle")])
            )
            .unwrap_or(0.0)
            >= 1.0,
        "idle close must be counted"
    );
}

#[test]
fn client_connection_close_is_honored() {
    let (server, _metrics) = server_with(ServerConfig::default());
    let mut stream = connect(&server);
    stream
        .write_all(b"GET /bye HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(head.contains("connection: close"), "{head}");
    expect_eof(&mut stream, Duration::from_secs(5));
}

#[test]
fn http_1_0_defaults_to_close() {
    let (server, _metrics) = server_with(ServerConfig::default());
    let mut stream = connect(&server);
    stream
        .write_all(b"GET /old HTTP/1.0\r\nhost: x\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(head.contains("connection: close"), "{head}");
    expect_eof(&mut stream, Duration::from_secs(5));
}

/// Regression companion to the JSON-escaping fix: over the real socket,
/// hostile bytes in the request must still yield a parseable JSON 400 body.
#[test]
fn four_hundred_bodies_are_json_over_the_wire() {
    let (server, _metrics) = server_with(ServerConfig::default());
    for raw in [
        "GET /x \"SPDY\\\"}{\"\r\n\r\n".as_bytes().to_vec(),
        b"NONSENSE\r\n\r\n".to_vec(),
        b"GET /x HTTP/1.1\r\nbad\"header\\line\r\n\r\n".to_vec(),
    ] {
        let mut stream = connect(&server);
        stream.write_all(&raw).unwrap();
        let (status, _, body) = read_one_response(&mut stream);
        assert_eq!(status, 400, "raw={raw:?}");
        let parsed: Result<serde_json::Value, _> = serde_json::from_str(&body);
        assert!(
            parsed.is_ok() && parsed.unwrap().get("error").is_some(),
            "400 body must be JSON with an error field, got {body:?}"
        );
        expect_eof(&mut stream, Duration::from_secs(5));
    }
}

#[test]
fn oversized_head_gets_413_and_close() {
    let (server, _metrics) = server_with(ServerConfig::default());
    let mut stream = connect(&server);
    // Stream an endless header line; the server must answer 413 and close
    // rather than buffer forever.
    let chunk = vec![b'a'; 8192];
    stream.write_all(b"GET /x HTTP/1.1\r\npad: ").unwrap();
    let mut sent = 0usize;
    let result = loop {
        match stream.write(&chunk) {
            Ok(n) => {
                sent += n;
                if sent > (64 << 10) {
                    break Ok(());
                }
            }
            Err(e) => break Err(e),
        }
    };
    // Either the server already reset the stream mid-write, or it accepted
    // ≤ 64 KiB and now answers 413.
    if result.is_ok() {
        let mut buf = Vec::new();
        let mut tmp = [0u8; 4096];
        loop {
            match stream.read(&mut tmp) {
                Ok(0) | Err(_) => break,
                Ok(n) => buf.extend_from_slice(&tmp[..n]),
            }
        }
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("413"), "expected 413, got: {text:?}");
    }
}

#[test]
fn handler_offload_keeps_wire_responsive() {
    // With a worker pool, a slow handler on one connection must not stall
    // another connection's request.
    let handler: Handler = Arc::new(|req: Request| {
        if req.path == "/slow" {
            std::thread::sleep(Duration::from_millis(500));
        }
        Response::json(200, format!(r#"{{"path":{:?}}}"#, req.path))
    });
    let server = HttpServer::spawn_with(
        0,
        handler,
        ServerConfig {
            workers: Some(2),
            ..Default::default()
        },
    )
    .unwrap();
    let mut slow = TcpStream::connect(server.addr()).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    slow.write_all(b"GET /slow HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let mut fast = TcpStream::connect(server.addr()).unwrap();
    fast.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    fast.write_all(b"GET /fast HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    let (status, _, body) = read_one_response(&mut fast);
    let fast_latency = started.elapsed();
    assert_eq!(status, 200);
    assert!(body.contains("/fast"));
    assert!(
        fast_latency < Duration::from_millis(400),
        "fast request must not wait behind the slow handler: {fast_latency:?}"
    );
    let (status, _, _) = read_one_response(&mut slow);
    assert_eq!(status, 200);
}

#[test]
fn rejected_connection_read_error_does_not_poison_others() {
    // Fill a cap-1 table, shed one arrival, drain, and verify service
    // continues — the lifecycle counters must balance.
    let (server, metrics) = server_with(ServerConfig {
        max_connections: 1,
        ..Default::default()
    });
    let mut held = connect(&server);
    held.write_all(b"GET /a HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_one_response(&mut held);
    assert_eq!(status, 200);
    // Table is full (held is keep-alive): next arrival is shed with 503.
    let mut shed = connect(&server);
    let mut buf = [0u8; 1024];
    let n = shed.read(&mut buf).unwrap();
    assert!(
        String::from_utf8_lossy(&buf[..n]).contains("503"),
        "expected load-shed 503"
    );
    drop(shed);
    drop(held);
    // Once the held connection is gone, service resumes.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = TcpStream::connect(server.addr()).unwrap();
        retry
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        retry
            .write_all(b"GET /again HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut out = Vec::new();
        let _ = retry.read_to_end(&mut out);
        if String::from_utf8_lossy(&out).contains("200") {
            break;
        }
        assert!(Instant::now() < deadline, "service never resumed");
        std::thread::sleep(Duration::from_millis(50));
    }
    std::thread::sleep(Duration::from_millis(50));
    assert!(metrics.value("http_connections_rejected_total") >= 1.0);
    assert!(
        metrics.value("http_connections_accepted_total")
            >= metrics.value("http_connections_closed_total")
    );
}

/// `read_one_response` helper sanity: errors loudly rather than hanging on
/// a server that never answers (uses the read timeout set in `connect`).
#[test]
fn helper_times_out_rather_than_hanging() {
    let (server, _metrics) = server_with(ServerConfig::default());
    let mut stream = connect(&server);
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    // No request sent: reading must fail with a timeout error, not block.
    let mut chunk = [0u8; 16];
    let err = stream.read(&mut chunk).unwrap_err();
    assert!(
        matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
        "got {err:?}"
    );
}
